"""Micro-benchmarks of the serial control plane."""

from __future__ import annotations

import numpy as np

from repro.motes.serial import FrameDecoder, SerialTestbedController, encode_frame
from repro.motes.testbed import Testbed, TestbedConfig


def test_bench_frame_encode_decode(benchmark):
    """Round-trip 1000 mixed-content frames through the codec."""
    rng = np.random.default_rng(0)
    payloads = [
        bytes(rng.integers(0, 256, size=int(rng.integers(1, 64))).tolist())
        for _ in range(1000)
    ]

    def round_trip():
        out = []
        decoder = FrameDecoder(out.append)
        for p in payloads:
            decoder.feed(encode_frame(p))
        return out

    decoded = benchmark(round_trip)
    assert decoded == payloads


def test_bench_serial_query_lifecycle(benchmark):
    """configure + reboot + query, all over the wire, per session."""
    counter = {"i": 0}

    def session():
        counter["i"] += 1
        tb = Testbed(TestbedConfig(num_participants=12, seed=counter["i"]))
        laptop = SerialTestbedController(tb)
        laptop.configure_positives([0, 2, 4, 6])
        laptop.reboot()
        return laptop.query(3)

    response = benchmark(session)
    assert response.decision
