"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three ablations, each timed *and* scored on mean query cost (stored in
``benchmark.extra_info`` and asserted where the paper makes a claim):

1. **Exponential-increase variations** (Sec IV-B): the paper tried
   pause-and-continue and four-fold growth and found "no consistent
   improvement".  We measure all three across the sparse/critical/dense
   regimes and assert neither variation dominates plain doubling.
2. **ABNS bin policy**: Algorithm 3's ``b = p + 1`` (PAPER) vs the
   oracle-interpolating HYBRID alternative.
3. **Repeat-count bounds**: Eq 10 vs the textbook Hoeffding sizing for
   the probabilistic model.
"""

from __future__ import annotations

import numpy as np

from repro.analytic.bimodal import BimodalSpec, analyze_separation
from repro.analytic.chernoff import hoeffding_repeats
from repro.core import (
    Abns,
    AbnsBinPolicy,
    ExponentialIncrease,
    FourFoldIncrease,
    PauseAndContinue,
)
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population

N, T = 128, 16
RUNS = 150


def mean_cost(factory, x, runs=RUNS):
    costs = np.empty(runs)
    for s in range(runs):
        pop = Population.from_count(N, x, np.random.default_rng(s))
        model = OnePlusModel(pop, np.random.default_rng(s + 1))
        costs[s] = factory().decide(
            model, T, np.random.default_rng(s + 2)
        ).queries
    return float(costs.mean())


def test_bench_ablation_exp_variations(benchmark):
    """Sec IV-B's excluded variations: no consistent improvement."""

    def sweep():
        out = {}
        for name, factory in {
            "double": ExponentialIncrease,
            "pause": PauseAndContinue,
            "fourfold": FourFoldIncrease,
        }.items():
            out[name] = {
                x: mean_cost(factory, x, runs=60) for x in (0, 16, 96)
            }
        return out

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["mean_queries"] = table
    wins = {name: 0 for name in table}
    for x in (0, 16, 96):
        best = min(table, key=lambda name: table[name][x])
        wins[best] += 1
    # "Neither of them gave a consistent improvement": no variant may win
    # every regime against plain doubling.
    assert wins["pause"] < 3
    assert wins["fourfold"] < 3


def test_bench_ablation_abns_policy(benchmark):
    """PAPER vs HYBRID bin policy across the three regimes."""

    def sweep():
        out = {}
        for name, policy in {
            "paper": AbnsBinPolicy.PAPER,
            "hybrid": AbnsBinPolicy.HYBRID,
        }.items():
            out[name] = {
                x: mean_cost(
                    lambda: Abns(p0_multiple=1.0, policy=policy), x, runs=60
                )
                for x in (0, 16, 96)
            }
        return out

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["mean_queries"] = table
    # The PAPER policy must keep its left-edge advantage (it is the reason
    # Fig 5 shows ABNS(p0=t) beating 2tBins at x << t).
    assert table["paper"][0] <= table["hybrid"][0] + 2.0


def test_bench_ablation_kplus_channel(benchmark):
    """Channel-strength ablation: 2tBins cost vs the k+ resolution.

    Connects to the companion theory paper's k+ decision trees: richer
    per-bin counts help, with sharply diminishing returns -- most of the
    benefit of an infinitely-counting channel is already delivered by
    k = 4 at this operating point.
    """
    from repro.group_testing.model import KPlusModel

    def sweep():
        out = {}
        for k in (1, 2, 4, 8, 10_000):
            costs = []
            for s in range(80):
                pop = Population.from_count(N, 4 * T, np.random.default_rng(s))
                model = KPlusModel(pop, np.random.default_rng(s + 1), k=k)
                from repro.core import TwoTBins

                costs.append(
                    TwoTBins().decide(
                        model, T, np.random.default_rng(s + 2)
                    ).queries
                )
            out[k] = float(np.mean(costs))
        return out

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["mean_queries"] = table
    assert table[2] <= table[1]
    assert table[10_000] <= table[2]
    # Diminishing returns: k=4 captures most of the unbounded channel.
    assert table[4] - table[10_000] < (table[1] - table[10_000]) * 0.25


def test_bench_ablation_repeat_bounds(benchmark):
    """Eq 10 vs Hoeffding repeat sizing across separations."""

    def sweep():
        out = {}
        for d in (24, 32, 48, 64):
            spec = BimodalSpec.symmetric(n=128, d=float(d), sigma=8.0)
            analysis = analyze_separation(spec)
            out[d] = {
                "eq10": analysis.repeats(0.05),
                "hoeffding": hoeffding_repeats(0.05, analysis.eps),
            }
        return out

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["repeats"] = table
    for d, row in table.items():
        assert row["eq10"] >= 1 and row["hoeffding"] >= 1
