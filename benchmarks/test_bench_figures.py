"""Figure-regeneration benchmarks: one per table/figure in the paper.

Each benchmark times one full regeneration of the figure's series at a
reduced (but statistically meaningful) run count, records the series as a
text/CSV artefact under ``benchmarks/results/``, and asserts the figure's
headline shape so a regression in *correctness* fails the benchmark run,
not only a regression in speed.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    fig01_one_plus,
    fig02_two_plus,
    fig03_threshold_sweep,
    fig04_testbed,
    fig05_abns,
    fig06_prob_abns,
    fig07_prob_abns_vs_csma,
    fig09_accuracy,
    fig10_repeats,
    fig11_distributions,
)

#: Run counts tuned so the whole figure suite stays in benchmark budget.
RUNS_FAST = 80
RUNS_TESTBED = 12
RUNS_ACCURACY = 200


def _one(benchmark, fn):
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def test_bench_fig01_one_plus(benchmark, record_figure):
    result = _one(benchmark, lambda: fig01_one_plus.run(runs=RUNS_FAST, seed=1))
    record_figure(result)
    t, n = result.parameters["t"], result.parameters["n"]
    two, exp = result.get_series("2tBins"), result.get_series("ExpIncrease")
    csma = result.get_series("CSMA")
    assert exp.y_at(0) < two.y_at(0)
    assert exp.y_at(n) > two.y_at(n)
    assert csma.y_at(n) > 4 * two.y_at(n)


def test_bench_fig02_two_plus(benchmark, record_figure):
    result = _one(benchmark, lambda: fig02_two_plus.run(runs=RUNS_FAST, seed=2))
    record_figure(result)
    t = result.parameters["t"]
    one = result.get_series("2tBins 1+")
    two = result.get_series("2tBins 2+")
    assert two.y_at(t - 1) < one.y_at(t - 1)


def test_bench_fig03_threshold_sweep(benchmark, record_figure):
    result = _one(
        benchmark, lambda: fig03_threshold_sweep.run(runs=RUNS_FAST, seed=3)
    )
    record_figure(result)
    x = result.parameters["x"]
    s = result.get_series("2tBins 1+")
    peak_t = s.xs[int(np.argmax(s.ys))]
    assert x / 2 <= peak_t <= 4 * x


def test_bench_fig04_testbed(benchmark, record_figure):
    result = _one(benchmark, lambda: fig04_testbed.run(runs=RUNS_TESTBED, seed=4))
    record_figure(result)
    fp_note = next(n for n in result.notes if "false-positive" in n)
    assert "0" in fp_note.split(":")[1]


def test_bench_fig05_abns(benchmark, record_figure):
    result = _one(benchmark, lambda: fig05_abns.run(runs=RUNS_FAST, seed=5))
    record_figure(result)
    assert result.get_series("ABNS(p0=t)").y_at(0) < result.get_series(
        "2tBins"
    ).y_at(0)


def test_bench_fig06_prob_abns(benchmark, record_figure):
    result = _one(benchmark, lambda: fig06_prob_abns.run(runs=RUNS_FAST, seed=6))
    record_figure(result)
    assert result.get_series("ProbABNS").y_at(0) < result.get_series(
        "ABNS(p0=2t)"
    ).y_at(0)


def test_bench_fig07_prob_abns_vs_csma(benchmark, record_figure):
    result = _one(
        benchmark, lambda: fig07_prob_abns_vs_csma.run(runs=RUNS_FAST, seed=7)
    )
    record_figure(result)
    n = result.parameters["n"]
    assert result.get_series("ProbABNS").y_at(n) < result.get_series(
        "CSMA"
    ).y_at(n) / 2


def test_bench_fig09_accuracy(benchmark, record_figure):
    result = _one(
        benchmark, lambda: fig09_accuracy.run(runs=RUNS_ACCURACY, seed=9)
    )
    record_figure(result)
    r9 = result.get_series("r=9")
    assert r9.y_at(64.0) > 0.9


def test_bench_fig10_repeats(benchmark, record_figure):
    result = _one(benchmark, lambda: fig10_repeats.run(runs=150, seed=10))
    record_figure(result)
    s = result.get_series("Eq10 (delta=0.05)")
    assert s.ys[0] > s.ys[-1]


def test_bench_fig11_distributions(benchmark, record_figure):
    result = _one(
        benchmark, lambda: fig11_distributions.run(runs=20_000, seed=11)
    )
    record_figure(result)
    assert abs(sum(result.get_series("d=16").ys) - 1.0) < 1e-9


def test_bench_fig08_gap(benchmark, record_figure):
    from repro.experiments import fig08_gap

    result = _one(benchmark, lambda: fig08_gap.run())
    record_figure(result)
    eps = result.get_series("eps = (q2-q1)/2").ys
    assert all(a <= b for a, b in zip(eps, eps[1:]))
