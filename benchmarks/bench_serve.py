"""Service benchmark: latency percentiles and sustained queries/sec.

Standalone script (not collected by pytest) that stands up a real
:mod:`repro.serve` service in-process (background event loop, real TCP)
and measures it:

1. **Identity** -- answers served over the wire must be bit-identical
   to direct per-request scalar execution under fixed seeds, proving
   the service's coalescing changes no numbers end to end.
2. **Throughput** -- client threads pipeline single-run queries through
   the vectorized coalescing path for a fixed wall-clock window; the
   bench reports sustained queries/sec plus p50/p99 per-query latency,
   and **fails** (full mode) if throughput drops below
   :data:`QUERIES_PER_SECOND_FLOOR`.
3. **Degradation** -- the same window with ``reliable=krepeat``
   (scalar confirmation path) for the latency/throughput contrast, and
   a shed window against a tiny token bucket confirming load-shedding
   stays cheap (rejections are counted, not queued).
4. **Fault load** -- a :class:`~repro.serve.chaos.ChaosProxy` injecting
   ~10% connection faults between a
   :class:`~repro.serve.client.RetryingServeClient` and the service.
   Every query must still answer bit-identically; the leg **fails** on
   a blown p99 ratchet (:data:`FAULT_P99_CEILING_MS`), on a wall-clock
   hang (SIGALRM hard bound), or if the client's retry count stops
   reconciling with the proxy's injected-fault ground truth.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--seconds 4]
        [--clients 4] [--window 64] [--out BENCH_serve.json] [--quick]
        [--fault-only]

The JSON lands at the repo root as ``BENCH_serve.json`` by default so
CI can upload it as an artifact.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import pathlib
import signal
import sys
import threading
import time
from datetime import datetime, timezone

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.chaos import ChaosSpec, chaos_in_thread  # noqa: E402
from repro.serve.client import (  # noqa: E402
    ClientRetryPolicy,
    RetryingServeClient,
    ServeClient,
)
from repro.serve.executor import execute_group  # noqa: E402
from repro.serve.request import QueryRequest  # noqa: E402
from repro.serve.server import ServeConfig, serve_in_thread  # noqa: E402

#: Hard floor on sustained throughput over the vectorized coalescing
#: path, in queries (requests) per second.  The acceptance criterion is
#: >= 500 q/s; the floor sits there deliberately -- well under a
#: development machine's measured rate, far above a broken scheduler.
QUERIES_PER_SECOND_FLOOR = 500.0

#: The benchmark population: one coalesce family so every request may
#: share a batch.
BENCH_QUERY = {"n": 64, "x": 20, "threshold": 8, "runs": 1}

#: Per-chunk disconnect probability on each proxy pump direction.  A
#: query round trip crosses the proxy as roughly one chunk per
#: direction, so ~10% of queries lose their connection mid-flight.
FAULT_DISCONNECT_RATE = 0.05

#: p99 ratchet for the fault-load leg, in milliseconds: a retried query
#: pays one reconnect plus a small jittered backoff, never a storm.
FAULT_P99_CEILING_MS = 500.0

#: Hard wall-clock bound on the whole fault-load leg (the no-hang gate).
FAULT_WALL_CLOCK_LIMIT = 180


@contextlib.contextmanager
def _wall_clock_bound(seconds: int, label: str):
    """SIGALRM hard bound: a hang fails the bench instead of wedging CI."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _blow_up(signum, frame):
        raise AssertionError(
            f"{label}: exceeded the {seconds}s wall-clock bound (hang)"
        )

    previous = signal.signal(signal.SIGALRM, _blow_up)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def bench_fault_load(port: int, *, queries: int, enforce_gate: bool) -> dict:
    """Queries through ~10% connection faults: correct, bounded, reconciled."""
    spec = ChaosSpec(p_disconnect=FAULT_DISCONNECT_RATE, seed=29)
    latencies: list = []
    with _wall_clock_bound(FAULT_WALL_CLOCK_LIMIT, "fault_load"):
        with chaos_in_thread("127.0.0.1", port, spec) as chaos:
            client = RetryingServeClient(
                "127.0.0.1",
                chaos.port,
                policy=ClientRetryPolicy(
                    max_attempts=8,
                    base_delay=0.01,
                    max_delay=0.1,
                    breaker_threshold=0,  # faults are the point
                ),
                timeout=10.0,
            )
            for i in range(queries):
                wire = {
                    "op": "query",
                    "id": f"fault-{i}",
                    "tenant": "fault",
                    "seed": i,
                    **BENCH_QUERY,
                    "runs": 2,
                }
                t0 = time.perf_counter()
                reply = client.query(wire, deadline_ms=30_000)
                t1 = time.perf_counter()
                if not reply.get("ok"):
                    raise AssertionError(f"fault-load query failed: {reply}")
                [expected] = execute_group(
                    [QueryRequest.from_wire(wire)], vectorize=False
                )
                if tuple(reply["decisions"]) != expected.decisions:
                    raise AssertionError(
                        f"fault-load answer diverged at seed={i}: "
                        f"{reply} vs {expected}"
                    )
                latencies.append(t1 - t0)
            attempts = client.attempts_made
            client.close()
            injected = chaos.injected
    retries = attempts - queries
    disconnects = injected["disconnects"]
    # Ground-truth reconciliation: every injected disconnect aborts
    # exactly one in-flight attempt, and (absent pathological timeouts)
    # nothing else makes the client retry.
    if retries != disconnects:
        raise AssertionError(
            f"fault-load retries do not reconcile with injected faults: "
            f"{retries} retries vs {disconnects} injected disconnects"
        )
    lat = sorted(latencies)
    p99_ms = _percentile(lat, 0.99) * 1e3
    result = {
        "queries": queries,
        "attempts": attempts,
        "retries": retries,
        "injected_disconnects": disconnects,
        "injected_connections": injected["connections"],
        "latency_p50_ms": round(_percentile(lat, 0.50) * 1e3, 3),
        "latency_p99_ms": round(p99_ms, 3),
        "latency_max_ms": round((lat[-1] if lat else 0.0) * 1e3, 3),
        "p99_ceiling_ms": FAULT_P99_CEILING_MS,
        "gate_enforced": enforce_gate,
        "reconciled": True,
    }
    if enforce_gate and p99_ms > FAULT_P99_CEILING_MS:
        raise AssertionError(
            f"fault_load: p99 {p99_ms:.1f}ms blew the "
            f"{FAULT_P99_CEILING_MS:.0f}ms ratchet under "
            f"{FAULT_DISCONNECT_RATE:.0%}/chunk injected disconnects"
        )
    return result


def _percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def check_identity(port: int) -> dict:
    """Served answers == direct scalar execution, bit for bit."""
    checked = 0
    with ServeClient("127.0.0.1", port) as client:
        for seed in range(20):
            wire = {
                "op": "query",
                "id": f"id-{seed}",
                "tenant": "bench",
                "seed": seed,
                **BENCH_QUERY,
                "runs": 4,
            }
            reply = client.request(wire)
            if not reply.get("ok"):
                raise AssertionError(f"identity query failed: {reply}")
            [expected] = execute_group(
                [QueryRequest.from_wire(wire)], vectorize=False
            )
            if (
                tuple(reply["decisions"]) != expected.decisions
                or tuple(reply["queries"]) != expected.queries
            ):
                raise AssertionError(
                    f"served answer diverged from scalar execution at "
                    f"seed={seed}: {reply} vs {expected}"
                )
            checked += 1
    return {"requests_checked": checked, "identical": True}


def _pump(
    port: int,
    seconds: float,
    window: int,
    tenant: str,
    extra: dict,
    latencies: list,
    errors: list,
) -> None:
    """One client thread: keep ``window`` requests in flight until time.

    Correlates responses by id to time each request individually even
    though the service may answer out of order.
    """
    sent: dict = {}
    counter = 0
    deadline = time.perf_counter() + seconds
    try:
        with ServeClient("127.0.0.1", port, timeout=60.0) as client:
            def send_one() -> None:
                nonlocal counter
                rid = f"{tenant}-{counter}"
                counter += 1
                sent[rid] = time.perf_counter()
                client.send(
                    {
                        "op": "query",
                        "id": rid,
                        "tenant": tenant,
                        "seed": counter,
                        **BENCH_QUERY,
                        **extra,
                    }
                )

            for _ in range(window):
                send_one()
            while time.perf_counter() < deadline:
                reply = client.recv()
                t1 = time.perf_counter()
                t0 = sent.pop(reply["id"], None)
                if not reply.get("ok"):
                    errors.append(reply)
                elif t0 is not None:
                    latencies.append(t1 - t0)
                send_one()
            # Drain what is still in flight (counted, not timed against
            # the window).
            while sent:
                reply = client.recv()
                t1 = time.perf_counter()
                t0 = sent.pop(reply["id"], None)
                if reply.get("ok") and t0 is not None:
                    latencies.append(t1 - t0)
    except (ConnectionError, OSError) as exc:
        errors.append({"error": {"code": "transport", "message": repr(exc)}})


def bench_throughput(
    port: int,
    *,
    seconds: float,
    clients: int,
    window: int,
    label: str,
    extra: dict,
    enforce_gate: bool,
) -> dict:
    """Sustained pipelined load from ``clients`` threads for ``seconds``."""
    latencies: list = []
    errors: list = []
    threads = [
        threading.Thread(
            target=_pump,
            args=(
                port, seconds, window, f"{label}{i}", extra, latencies, errors
            ),
            daemon=True,
        )
        for i in range(clients)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise AssertionError(
            f"{label}: {len(errors)} failed requests, first: {errors[0]}"
        )
    answered = len(latencies)
    qps = answered / elapsed if elapsed > 0 else 0.0
    lat = sorted(latencies)
    result = {
        "clients": clients,
        "window": window,
        "seconds": round(elapsed, 3),
        "queries_answered": answered,
        "queries_per_second": round(qps, 1),
        "latency_p50_ms": round(_percentile(lat, 0.50) * 1e3, 3),
        "latency_p99_ms": round(_percentile(lat, 0.99) * 1e3, 3),
        "latency_max_ms": round((lat[-1] if lat else 0.0) * 1e3, 3),
        "gate_enforced": enforce_gate,
    }
    if enforce_gate and qps < QUERIES_PER_SECOND_FLOOR:
        raise AssertionError(
            f"{label}: sustained throughput {qps:.0f} q/s is below the "
            f"{QUERIES_PER_SECOND_FLOOR:.0f} q/s floor "
            f"({answered} queries in {elapsed:.1f}s)"
        )
    return result


def bench_shedding(seconds: float) -> dict:
    """Load shedding against a tiny token bucket: rejections stay cheap."""
    config = ServeConfig(
        port=0, workers=1, tenant_rate=10.0, tenant_burst=10.0
    )
    with serve_in_thread(config) as handle:
        sent = 0
        shed = 0
        served = 0
        deadline = time.perf_counter() + seconds
        with ServeClient("127.0.0.1", handle.port, timeout=60.0) as client:
            while time.perf_counter() < deadline:
                reply = client.request(
                    {
                        "op": "query",
                        "id": f"s-{sent}",
                        "tenant": "shed",
                        "seed": sent,
                        **BENCH_QUERY,
                    }
                )
                sent += 1
                if reply.get("ok"):
                    served += 1
                elif reply.get("error", {}).get("code") == "rate_limited":
                    shed += 1
                else:
                    raise AssertionError(f"unexpected rejection: {reply}")
            metrics = client.request({"op": "metrics"})["metrics"]
    counters = metrics["counters"]
    if counters.get("serve.rejected.rate_limited", 0) != shed:
        raise AssertionError(
            "shed count disagrees with the service's own counter: "
            f"client saw {shed}, service counted "
            f"{counters.get('serve.rejected.rate_limited', 0)}"
        )
    return {
        "seconds": seconds,
        "sent": sent,
        "served": served,
        "shed": shed,
        "shed_fraction": round(shed / sent, 3) if sent else 0.0,
        "counters_consistent": True,
    }


def main(argv=None) -> int:
    """Run every section and write the JSON summary."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seconds", type=float, default=4.0,
        help="wall-clock window per throughput section",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent client threads for the throughput sections",
    )
    parser.add_argument(
        "--window", type=int, default=64,
        help="pipelined requests each client keeps in flight",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=REPO_ROOT / "BENCH_serve.json",
        help="where to write the JSON summary",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink every leg and skip the throughput gate (CI smoke)",
    )
    parser.add_argument(
        "--fault-only", action="store_true",
        help="run only the identity check and the fault-load leg "
        "(the serve-chaos CI job)",
    )
    args = parser.parse_args(argv)

    seconds = 1.0 if args.quick else args.seconds
    clients = min(2, args.clients) if args.quick else args.clients
    print(
        f"[bench_serve] cpu_count={os.cpu_count()} clients={clients} "
        f"window={args.window} seconds={seconds}"
    )

    config = ServeConfig(port=0, workers=max(2, clients // 2))
    with serve_in_thread(config) as handle:
        print(f"[bench_serve] service on port {handle.port}")

        print("[bench_serve] identity: served vs scalar execution ...")
        identity = check_identity(handle.port)
        print(
            f"[bench_serve]   {identity['requests_checked']} requests "
            "bit-identical: OK"
        )

        throughput = None
        reliable = None
        if not args.fault_only:
            throughput, reliable = _healthy_legs(
                handle.port, args, seconds, clients
            )

        fault_queries = 40 if args.quick else 200
        print(
            f"[bench_serve] fault load: {FAULT_DISCONNECT_RATE:.0%}/chunk "
            f"disconnects, {fault_queries} queries ..."
        )
        fault_load = bench_fault_load(
            handle.port,
            queries=fault_queries,
            enforce_gate=not args.quick,
        )
        print(
            f"[bench_serve]   {fault_load['retries']} retries for "
            f"{fault_load['injected_disconnects']} injected disconnects "
            f"(reconciled), p99 {fault_load['latency_p99_ms']}ms "
            f"(ceiling {FAULT_P99_CEILING_MS:.0f}ms"
            f"{'' if fault_load['gate_enforced'] else ', gate skipped'})"
        )

        with ServeClient("127.0.0.1", handle.port) as client:
            counters = client.request({"op": "metrics"})["metrics"]["counters"]

    if args.fault_only:
        shedding = None
    else:
        print("[bench_serve] shedding: tiny token bucket ...")
        shedding = bench_shedding(min(seconds, 2.0))
        print(
            f"[bench_serve]   {shedding['served']} served, "
            f"{shedding['shed']} shed of {shedding['sent']} "
            f"({shedding['shed_fraction']:.0%} shed)"
        )

    payload = {
        "benchmark": "serve",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count(),
        "quick": args.quick,
        "fault_only": args.fault_only,
        "queries_per_second_floor": QUERIES_PER_SECOND_FLOOR,
        "identity": identity,
        "throughput": throughput,
        "reliable": reliable,
        "shedding": shedding,
        "fault_load": fault_load,
        "serve_counters": {
            k: v for k, v in sorted(counters.items())
            if k.startswith("serve.")
        },
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_serve] wrote {args.out}")
    return 0


def _healthy_legs(port, args, seconds, clients):
    """The throughput and degradation sections (skipped by --fault-only)."""
    print("[bench_serve] throughput: vectorized coalescing path ...")
    throughput = bench_throughput(
        port,
        seconds=seconds,
        clients=clients,
        window=args.window,
        label="vec",
        extra={},
        enforce_gate=not args.quick,
    )
    gate_note = (
        f"floor {QUERIES_PER_SECOND_FLOOR:.0f} q/s"
        if throughput["gate_enforced"]
        else "gate skipped: quick mode"
    )
    print(
        f"[bench_serve]   {throughput['queries_per_second']} q/s, "
        f"p50 {throughput['latency_p50_ms']}ms, "
        f"p99 {throughput['latency_p99_ms']}ms ({gate_note})"
    )

    print("[bench_serve] degradation: reliable (scalar) path ...")
    reliable = bench_throughput(
        port,
        seconds=seconds,
        clients=clients,
        window=min(args.window, 16),
        label="rel",
        extra={"reliable": "krepeat"},
        enforce_gate=False,
    )
    print(
        f"[bench_serve]   {reliable['queries_per_second']} q/s, "
        f"p50 {reliable['latency_p50_ms']}ms, "
        f"p99 {reliable['latency_p99_ms']}ms (no gate: scalar path)"
    )
    return throughput, reliable


if __name__ == "__main__":
    raise SystemExit(main())
