"""Sweep-throughput benchmark: serial vs parallel fig01, plus cache.

Standalone script (not collected by pytest) that exercises the three
throughput features of the sweep engine and emits a machine-readable
summary:

1. **Parity** -- runs fig01 at a reduced trial count with ``jobs=1`` and
   ``jobs=N`` and asserts the resulting :class:`ExperimentResult` series
   (and their CSV rendering) are byte-identical.  Parallelism must never
   change the numbers.
2. **Throughput** -- times the full fig01 sweep (default 1000 trials per
   grid point, the paper's count) serial and parallel and reports
   wall-clock, trials/sec and the speedup factor.
3. **Cache** -- times a cold ``run_experiment`` against a fresh
   :class:`ResultCache` directory, then a warm one, and reports the hit
   rate and warm/cold ratio.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweeps.py [--runs 1000]
        [--jobs 0] [--out BENCH_sweeps.json] [--quick]

The JSON lands at the repo root as ``BENCH_sweeps.json`` by default so
CI can upload it as an artifact.  ``cpu_count`` is recorded alongside
the timings: on a single-core box the parallel path degenerates to one
worker and no speedup is expected (or claimed).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time
from datetime import datetime, timezone

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.cache import ResultCache  # noqa: E402
from repro.experiments.common import resolve_jobs, shutdown_executors  # noqa: E402
from repro.experiments.fig01_one_plus import run as run_fig01  # noqa: E402
from repro.experiments.registry import run_experiment  # noqa: E402

#: fig01's grid has 31 x-points and four curves; every (x, run) pair of
#: every curve is one trial (one full threshold-query session).
FIG01_CURVES = 4
FIG01_GRID = 31


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def check_parity(runs: int, jobs: int) -> dict:
    """fig01 serial vs parallel must agree bit for bit."""
    serial, serial_s = _time(lambda: run_fig01(runs=runs, jobs=1))
    parallel, parallel_s = _time(lambda: run_fig01(runs=runs, jobs=jobs))
    series_equal = serial.series == parallel.series
    csv_equal = serial.to_csv() == parallel.to_csv()
    if not (series_equal and csv_equal):
        raise AssertionError(
            f"fig01 parallel (jobs={jobs}) diverged from serial: "
            f"series_equal={series_equal} csv_equal={csv_equal}"
        )
    return {
        "runs": runs,
        "jobs": jobs,
        "series_identical": series_equal,
        "csv_identical": csv_equal,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
    }


def bench_throughput(runs: int, jobs: int) -> dict:
    """Time the full fig01 sweep serial and parallel."""
    trials = FIG01_CURVES * FIG01_GRID * runs
    _, serial_s = _time(lambda: run_fig01(runs=runs, jobs=1))
    _, parallel_s = _time(lambda: run_fig01(runs=runs, jobs=jobs))
    return {
        "experiment": "fig01",
        "runs": runs,
        "jobs": jobs,
        "trials": trials,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "trials_per_second_serial": round(trials / serial_s, 1),
        "trials_per_second_parallel": round(trials / parallel_s, 1),
        "speedup": round(serial_s / parallel_s, 2),
    }


def bench_cache(runs: int) -> dict:
    """Cold vs warm run_experiment through the on-disk result cache."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(pathlib.Path(tmp))
        (cold_result, cold_hit), cold_s = _time(
            lambda: run_experiment("fig01", cache=cache, runs=runs)
        )
        (warm_result, warm_hit), warm_s = _time(
            lambda: run_experiment("fig01", cache=cache, runs=runs)
        )
        if cold_hit or not warm_hit:
            raise AssertionError(
                f"cache misbehaved: cold hit={cold_hit} warm hit={warm_hit}"
            )
        if cold_result.series != warm_result.series:
            raise AssertionError("cached result differs from computed result")
        return {
            "runs": runs,
            "cold_seconds": round(cold_s, 3),
            "warm_seconds": round(warm_s, 3),
            "warm_over_cold": round(warm_s / cold_s, 4),
            "hit_rate": cache.hit_rate,
            "hits": cache.hits,
            "misses": cache.misses,
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--runs", type=int, default=1000,
        help="trials per grid point for the throughput sweep (paper: 1000)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for the parallel legs (0 = all CPUs)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=REPO_ROOT / "BENCH_sweeps.json",
        help="where to write the JSON summary",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink every leg (CI smoke / local sanity)",
    )
    args = parser.parse_args(argv)

    # At least two workers, even on a single-core box: the point is to
    # exercise the process-pool path; speedup is only expected when
    # cpu_count allows it (and the JSON records cpu_count for context).
    jobs = max(2, resolve_jobs(args.jobs if args.jobs else None))
    parity_runs = 20 if args.quick else 60
    sweep_runs = 60 if args.quick else args.runs
    cache_runs = 20 if args.quick else 60

    print(f"[bench_sweeps] cpu_count={os.cpu_count()} jobs={jobs}")

    print(f"[bench_sweeps] parity: fig01 runs={parity_runs} ...")
    parity = check_parity(parity_runs, jobs)
    print(f"[bench_sweeps]   serial=={jobs}-way parallel: OK")

    print(f"[bench_sweeps] throughput: fig01 runs={sweep_runs} ...")
    throughput = bench_throughput(sweep_runs, jobs)
    print(
        f"[bench_sweeps]   serial {throughput['serial_seconds']}s, "
        f"parallel {throughput['parallel_seconds']}s "
        f"(speedup {throughput['speedup']}x, "
        f"{throughput['trials_per_second_parallel']} trials/s)"
    )

    print(f"[bench_sweeps] cache: fig01 runs={cache_runs} ...")
    cache = bench_cache(cache_runs)
    print(
        f"[bench_sweeps]   cold {cache['cold_seconds']}s, "
        f"warm {cache['warm_seconds']}s, hit rate {cache['hit_rate']:.2f}"
    )

    payload = {
        "benchmark": "sweeps",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "quick": args.quick,
        "parity": parity,
        "throughput": throughput,
        "cache": cache,
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_sweeps] wrote {args.out}")
    shutdown_executors()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
