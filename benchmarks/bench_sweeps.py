"""Sweep-throughput benchmark: serial vs parallel fig01, plus cache.

Standalone script (not collected by pytest) that exercises the three
throughput features of the sweep engine and emits a machine-readable
summary:

1. **Parity** -- runs fig01 at a reduced trial count with ``jobs=1`` and
   ``jobs=N`` and asserts the resulting :class:`ExperimentResult` series
   (and their CSV rendering) are byte-identical.  Parallelism must never
   change the numbers.
2. **Throughput** -- times the full fig01 sweep (default 1000 trials per
   grid point, the paper's count) serial and parallel and reports
   wall-clock, trials/sec and the speedup factor.
3. **Cache** -- times a cold ``run_experiment`` against a fresh
   :class:`ResultCache` directory, then a warm one, and reports the hit
   rate and warm/cold ratio.
4. **Metrics** -- runs fig01 with the observability registry disabled
   and enabled, checks the CSVs are byte-identical, reports the enabled
   overhead and the measured disabled per-call cost, and **fails** if
   the estimated disabled-path overhead exceeds 2% -- the "near-zero
   disabled cost" contract of :mod:`repro.obs`.
5. **Supervision** -- runs fig01 under an active
   :class:`~repro.experiments.resilience.RunContext` (journalling +
   supervised pool, the crash-safe CLI path) and plain, checks the CSVs
   are byte-identical, and **fails** if the measured journal-write cost
   (the ``resilience.journal_write`` timer: CRC framing, flush, fsync)
   exceeds 2% of the supervised run's wall time on this fault-free path.
6. **Farm** -- runs fig01 through a real
   :class:`~repro.farm.FarmCoordinator` with subprocess workers (the
   ``--backend farm`` path: spool, leases, content-addressed store),
   checks the CSV is byte-identical to the serial run, checks the lease
   accounting balances, and **fails** if the farm's wall time exceeds
   :data:`FARM_OVERHEAD_FACTOR` times the serial run on a multi-core
   host -- the spool/lease machinery must never dominate the compute.
7. **Vectorized** -- times the two fig01 tcast query curves through
   ``SweepEngine(vectorize=False)`` and ``vectorize=True``, interleaved
   and compared best-of-N so both legs face the same noise environment,
   asserts the series are identical and the ``model.*`` counters agree,
   and **fails** (full mode) if the vectorized kernel's speedup drops
   below :data:`VECTORIZED_SPEEDUP_FLOOR` or its absolute throughput
   below :data:`VECTORIZED_TRIALS_PER_SECOND_FLOOR` trials/sec.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweeps.py [--runs 1000]
        [--jobs 0] [--out BENCH_sweeps.json] [--quick]

The JSON lands at the repo root as ``BENCH_sweeps.json`` by default so
CI can upload it as an artifact.  ``cpu_count`` is recorded alongside
the timings: on a single-core box ``resolve_jobs`` clamps every request
to one worker, so the serial-vs-parallel timing comparison is flagged as
skipped rather than reported as a (meaningless) speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time
from datetime import datetime, timezone

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import algorithm_factory  # noqa: E402
from repro.experiments import resilience  # noqa: E402
from repro.experiments.cache import ResultCache  # noqa: E402
from repro.experiments.common import (  # noqa: E402
    SweepEngine,
    resolve_jobs,
    shutdown_executors,
)
from repro.experiments.fig01_one_plus import run as run_fig01  # noqa: E402
from repro.experiments.registry import run_experiment  # noqa: E402
from repro.group_testing.model import ModelSpec  # noqa: E402
from repro.obs import get_registry  # noqa: E402
from repro.workloads.scenarios import x_sweep  # noqa: E402

#: Hard budget for the estimated cost of *disabled* instruments, as a
#: fraction of a metrics-off fig01 run.  CI fails the bench above this.
DISABLED_OVERHEAD_BUDGET = 0.02

#: Hard budget for the measured journal/supervision cost on a
#: fault-free supervised run, as a fraction of its wall time.
SUPERVISION_OVERHEAD_BUDGET = 0.02

#: Hard ceiling on farm wall time as a multiple of the serial run at the
#: same trial count.  The farm pays for worker spawn, descriptor
#: pickling, lease polling, and store round-trips; at bench scale that
#: overhead is real but must stay within a small constant factor.
FARM_OVERHEAD_FACTOR = 3.0

#: Hard floor on the vectorized kernel's speedup over the scalar
#: interpreter on the fig01 query curves (best-of-N interleaved legs).
VECTORIZED_SPEEDUP_FLOOR = 10.0

#: Ratchet on the vectorized leg's absolute throughput on the same
#: workload, in trials/second.  Deliberately conservative (~1/4 of the
#: development machine) so it catches order-of-magnitude regressions,
#: not host-to-host variance.
VECTORIZED_TRIALS_PER_SECOND_FLOOR = 6000.0

#: fig01's grid has 31 x-points and four curves; every (x, run) pair of
#: every curve is one trial (one full threshold-query session).
FIG01_CURVES = 4
FIG01_GRID = 31


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def check_parity(runs: int, jobs: int) -> dict:
    """fig01 serial vs parallel must agree bit for bit."""
    serial, serial_s = _time(lambda: run_fig01(runs=runs, jobs=1))
    parallel, parallel_s = _time(lambda: run_fig01(runs=runs, jobs=jobs))
    series_equal = serial.series == parallel.series
    csv_equal = serial.to_csv() == parallel.to_csv()
    if not (series_equal and csv_equal):
        raise AssertionError(
            f"fig01 parallel (jobs={jobs}) diverged from serial: "
            f"series_equal={series_equal} csv_equal={csv_equal}"
        )
    return {
        "runs": runs,
        "jobs": jobs,
        "series_identical": series_equal,
        "csv_identical": csv_equal,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
    }


def bench_throughput(runs: int, jobs: int) -> dict:
    """Time the full fig01 sweep serial and parallel."""
    trials = FIG01_CURVES * FIG01_GRID * runs
    _, serial_s = _time(lambda: run_fig01(runs=runs, jobs=1))
    _, parallel_s = _time(lambda: run_fig01(runs=runs, jobs=jobs))
    return {
        "experiment": "fig01",
        "runs": runs,
        "jobs": jobs,
        "trials": trials,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "trials_per_second_serial": round(trials / serial_s, 1),
        "trials_per_second_parallel": round(trials / parallel_s, 1),
        "speedup": round(serial_s / parallel_s, 2),
    }


def bench_cache(runs: int) -> dict:
    """Cold vs warm run_experiment through the on-disk result cache."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(pathlib.Path(tmp))
        (cold_result, cold_hit), cold_s = _time(
            lambda: run_experiment("fig01", cache=cache, runs=runs)
        )
        (warm_result, warm_hit), warm_s = _time(
            lambda: run_experiment("fig01", cache=cache, runs=runs)
        )
        if cold_hit or not warm_hit:
            raise AssertionError(
                f"cache misbehaved: cold hit={cold_hit} warm hit={warm_hit}"
            )
        if cold_result.series != warm_result.series:
            raise AssertionError("cached result differs from computed result")
        return {
            "runs": runs,
            "cold_seconds": round(cold_s, 3),
            "warm_seconds": round(warm_s, 3),
            "warm_over_cold": round(warm_s / cold_s, 4),
            "hit_rate": cache.hit_rate,
            "hits": cache.hits,
            "misses": cache.misses,
        }


def bench_metrics(runs: int, jobs: int) -> dict:
    """Metrics-off vs metrics-on fig01: identical bytes, bounded cost.

    Enforces the :mod:`repro.obs` contract two ways: the enabled run's
    CSV must match the disabled run's byte for byte, and the *disabled*
    path must stay effectively free.  The disabled cost is estimated as
    (measured per-call cost of a disabled counter) x (instrument events
    the enabled run recorded), expressed as a fraction of the disabled
    run's wall time; above :data:`DISABLED_OVERHEAD_BUDGET` the bench
    raises.
    """
    registry = get_registry()
    registry.disable()
    registry.reset()
    disabled_result, disabled_s = _time(lambda: run_fig01(runs=runs, jobs=jobs))
    registry.reset()
    registry.enable()
    enabled_result, enabled_s = _time(lambda: run_fig01(runs=runs, jobs=jobs))
    snapshot = registry.snapshot()
    registry.disable()
    registry.reset()

    if disabled_result.to_csv() != enabled_result.to_csv():
        raise AssertionError("enabling metrics changed the fig01 CSV")

    # Direct measurement of one disabled instrument call (the registry
    # is disabled again at this point, so inc() takes the guard branch).
    probe = registry.counter("bench.disabled_probe")
    calls = 1_000_000
    t0 = time.perf_counter()
    for _ in range(calls):
        probe.inc()
    per_call_s = (time.perf_counter() - t0) / calls

    events = sum(snapshot.counters.values()) + sum(
        h.total for h in snapshot.histograms.values()
    )
    disabled_overhead = (
        per_call_s * events / disabled_s if disabled_s > 0 else 0.0
    )
    if disabled_overhead > DISABLED_OVERHEAD_BUDGET:
        raise AssertionError(
            f"disabled-path metrics overhead {disabled_overhead:.2%} exceeds "
            f"the {DISABLED_OVERHEAD_BUDGET:.0%} budget"
        )
    return {
        "runs": runs,
        "jobs": jobs,
        "csv_identical": True,
        "disabled_seconds": round(disabled_s, 3),
        "enabled_seconds": round(enabled_s, 3),
        "enabled_overhead_fraction": round(
            (enabled_s - disabled_s) / disabled_s if disabled_s > 0 else 0.0, 4
        ),
        "disabled_ns_per_call": round(per_call_s * 1e9, 2),
        "instrument_events": events,
        "disabled_overhead_fraction": round(disabled_overhead, 6),
        "disabled_overhead_budget": DISABLED_OVERHEAD_BUDGET,
        "counters": dict(sorted(snapshot.counters.items())),
    }


def bench_supervision(runs: int, jobs: int) -> dict:
    """Fault-free supervised run vs plain run: identical bytes, bounded cost.

    The crash-safe path adds journalling (CRC framing + flush + fsync
    per shard) and the supervised submit/poll loop on top of the plain
    pool.  The gate is measured, not A/B-timed (wall-clock deltas at
    this scale are noise): the ``resilience.journal_write`` timer records
    exactly the seconds the supervised run spent on durable journal
    appends, and that total must stay under
    :data:`SUPERVISION_OVERHEAD_BUDGET` of the supervised wall time.
    """
    plain_result, plain_s = _time(lambda: run_fig01(runs=runs, jobs=jobs))
    registry = get_registry()
    registry.reset()
    registry.enable()
    with tempfile.TemporaryDirectory() as tmp:
        journal = resilience.ShardJournal(
            pathlib.Path(tmp) / "bench.journal",
            exp_id="fig01",
            key="bench-supervision",
        )
        ctx = resilience.RunContext(journal=journal)
        with resilience.activate(ctx):
            supervised_result, supervised_s = _time(
                lambda: run_fig01(runs=runs, jobs=jobs)
            )
    snapshot = registry.snapshot()
    registry.disable()
    registry.reset()

    if supervised_result.to_csv() != plain_result.to_csv():
        raise AssertionError("supervised execution changed the fig01 CSV")
    if ctx.degraded:
        raise AssertionError(f"fault-free run degraded: {ctx.degraded}")

    journal_timer = snapshot.timers.get("resilience.journal_write")
    journal_seconds = journal_timer.total_seconds if journal_timer else 0.0
    records = snapshot.counters.get("resilience.journal_records", 0)
    overhead = journal_seconds / supervised_s if supervised_s > 0 else 0.0
    if overhead > SUPERVISION_OVERHEAD_BUDGET:
        raise AssertionError(
            f"supervision/journal overhead {overhead:.2%} exceeds the "
            f"{SUPERVISION_OVERHEAD_BUDGET:.0%} budget "
            f"({journal_seconds:.3f}s over {records} records)"
        )
    return {
        "runs": runs,
        "jobs": jobs,
        "csv_identical": True,
        "plain_seconds": round(plain_s, 3),
        "supervised_seconds": round(supervised_s, 3),
        "journal_records": records,
        "journal_seconds": round(journal_seconds, 4),
        "journal_us_per_record": round(
            journal_seconds / records * 1e6, 1
        ) if records else 0.0,
        "supervision_overhead_fraction": round(overhead, 6),
        "supervision_overhead_budget": SUPERVISION_OVERHEAD_BUDGET,
        "resilience_counters": {
            k: v
            for k, v in sorted(snapshot.counters.items())
            if k.startswith("resilience.")
        },
    }


def bench_farm(runs: int, jobs: int, enforce_gate: bool) -> dict:
    """Serial backend vs farm backend: identical bytes, bounded overhead.

    Spins up a real :class:`~repro.farm.FarmCoordinator` (subprocess
    workers, spool on disk, content-addressed store -- exactly the
    ``--backend farm`` CLI path) and routes fig01 through it.  Three
    gates: the CSV must match the serial run byte for byte, the lease
    accounting must balance (granted = completed + expired +
    quarantined), and on a multi-core host the farm's wall time must
    stay under :data:`FARM_OVERHEAD_FACTOR` times the serial run's.
    """
    from repro.farm import FarmCoordinator, FarmPolicy

    plain_result, plain_s = _time(lambda: run_fig01(runs=runs, jobs=1))
    registry = get_registry()
    registry.reset()
    registry.enable()
    with tempfile.TemporaryDirectory() as tmp:
        journal = resilience.ShardJournal(
            pathlib.Path(tmp) / "bench.journal",
            exp_id="fig01",
            key="bench-farm",
        )
        # Tight polling: the bench measures the protocol's work (spool,
        # leases, store round-trips), not the default sleep granularity,
        # which would dominate at bench-sized shards.
        farm = FarmCoordinator(
            pathlib.Path(tmp) / "spool",
            exp_id="fig01",
            run_key="bench-farm",
            workers=jobs,
            policy=FarmPolicy(poll_interval=0.01, heartbeat_interval=0.1),
            supervision=resilience.SupervisionPolicy(),
        )
        ctx = resilience.RunContext(journal=journal, farm=farm)
        with farm, resilience.activate(ctx):
            farm_result, farm_s = _time(
                lambda: run_fig01(runs=runs, jobs=jobs)
            )
    snapshot = registry.snapshot()
    registry.disable()
    registry.reset()

    if farm_result.to_csv() != plain_result.to_csv():
        raise AssertionError("farm execution changed the fig01 CSV")
    if ctx.degraded:
        raise AssertionError(f"fault-free farm run degraded: {ctx.degraded}")
    granted = snapshot.counters.get("farm.leases_granted", 0)
    resolved = (
        snapshot.counters.get("farm.leases_completed", 0)
        + snapshot.counters.get("farm.leases_expired", 0)
        + snapshot.counters.get("farm.leases_quarantined", 0)
    )
    if granted == 0 or granted != resolved:
        raise AssertionError(
            f"farm lease accounting off: granted={granted} resolved={resolved}"
        )
    overhead_factor = farm_s / plain_s if plain_s > 0 else 0.0
    if enforce_gate and overhead_factor > FARM_OVERHEAD_FACTOR:
        raise AssertionError(
            f"farm overhead factor {overhead_factor:.2f}x exceeds the "
            f"{FARM_OVERHEAD_FACTOR:.1f}x budget "
            f"({farm_s:.1f}s vs {plain_s:.1f}s serial)"
        )
    return {
        "runs": runs,
        "workers": jobs,
        "csv_identical": True,
        "serial_seconds": round(plain_s, 3),
        "farm_seconds": round(farm_s, 3),
        "overhead_factor": round(overhead_factor, 3),
        "overhead_budget_factor": FARM_OVERHEAD_FACTOR,
        "gate_enforced": enforce_gate,
        "farm_counters": {
            k: v
            for k, v in sorted(snapshot.counters.items())
            if k.startswith("farm.")
        },
    }


def bench_vectorized(runs: int, *, reps: int, enforce_gate: bool) -> dict:
    """Scalar vs vectorized query curves: identical numbers, >=10x faster.

    Runs the two fig01 tcast query curves (2tBins and Exponential
    Increase; the MAC baselines never touch the kernel) through
    ``SweepEngine`` with ``vectorize=False`` and ``vectorize=True``.
    The legs are interleaved ``reps`` times and compared best-of-reps
    so both face the same noise environment -- a single back-to-back
    pair can easily swing 30% on a loaded host.

    Three checks: the two legs' series must be identical, a
    metrics-enabled pass of each leg must produce the same ``model.*``
    counters (the kernel replays every query into the same instruments
    the scalar model uses), and -- when ``enforce_gate`` -- the
    vectorized leg must clear :data:`VECTORIZED_SPEEDUP_FLOOR` and
    :data:`VECTORIZED_TRIALS_PER_SECOND_FLOOR`.
    """
    n, threshold, seed = 128, 16, 2011
    xs = x_sweep(n)
    one_plus = ModelSpec(kind="1+", max_queries=50 * n)
    curves = (("2tBins", "2tbins"), ("ExpIncrease", "exponential"))
    trials = len(curves) * len(xs) * runs

    def leg(leg_runs: int, vectorize: bool):
        engine = SweepEngine(
            n, threshold, runs=leg_runs, seed=seed, jobs=1,
            vectorize=vectorize,
        )
        return tuple(
            engine.query_curve(label, xs, algorithm_factory(name), one_plus)
            for label, name in curves
        )

    scalar_times, vector_times = [], []
    scalar_series = vector_series = None
    for _ in range(reps):
        scalar_series, t = _time(lambda: leg(runs, False))
        scalar_times.append(t)
        vector_series, t = _time(lambda: leg(runs, True))
        vector_times.append(t)
    if scalar_series != vector_series:
        raise AssertionError(
            "vectorized kernel diverged from the scalar path"
        )

    # Counter parity at a reduced trial count: every query the kernel
    # executes must land on the same model.* instruments.
    def model_counters(vectorize: bool) -> dict:
        registry = get_registry()
        registry.reset()
        registry.enable()
        try:
            leg(min(runs, 60), vectorize)
            snapshot = registry.snapshot()
        finally:
            registry.disable()
            registry.reset()
        return {
            k: v
            for k, v in sorted(snapshot.counters.items())
            if k.startswith("model.")
        }

    scalar_counters = model_counters(False)
    vector_counters = model_counters(True)
    if scalar_counters != vector_counters:
        raise AssertionError(
            "vectorized kernel changed the model.* counters: "
            f"scalar={scalar_counters} vectorized={vector_counters}"
        )

    scalar_s, vector_s = min(scalar_times), min(vector_times)
    speedup = scalar_s / vector_s if vector_s > 0 else 0.0
    trials_per_second = trials / vector_s if vector_s > 0 else 0.0
    if enforce_gate:
        if speedup < VECTORIZED_SPEEDUP_FLOOR:
            raise AssertionError(
                f"vectorized speedup {speedup:.2f}x is below the "
                f"{VECTORIZED_SPEEDUP_FLOOR:.0f}x floor "
                f"({vector_s:.2f}s vs {scalar_s:.2f}s scalar, "
                f"best of {reps})"
            )
        if trials_per_second < VECTORIZED_TRIALS_PER_SECOND_FLOOR:
            raise AssertionError(
                f"vectorized throughput {trials_per_second:.0f} trials/s "
                f"is below the {VECTORIZED_TRIALS_PER_SECOND_FLOOR:.0f} "
                "floor"
            )
    return {
        "runs": runs,
        "reps": reps,
        "trials": trials,
        "series_identical": True,
        "model_counters_identical": True,
        "scalar_seconds": round(scalar_s, 3),
        "vectorized_seconds": round(vector_s, 3),
        "speedup": round(speedup, 2),
        "speedup_floor": VECTORIZED_SPEEDUP_FLOOR,
        "trials_per_second": round(trials_per_second, 1),
        "trials_per_second_floor": VECTORIZED_TRIALS_PER_SECOND_FLOOR,
        "gate_enforced": enforce_gate,
        "model_counters": vector_counters,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--runs", type=int, default=1000,
        help="trials per grid point for the throughput sweep (paper: 1000)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for the parallel legs (0 = all CPUs)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=REPO_ROOT / "BENCH_sweeps.json",
        help="where to write the JSON summary",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink every leg (CI smoke / local sanity)",
    )
    args = parser.parse_args(argv)

    # resolve_jobs clamps to the CPU budget, so on a single-core box
    # every "parallel" leg degenerates to the serial path; run it anyway
    # as a smoke test but flag the timing comparison as meaningless.
    single_core = (os.cpu_count() or 1) < 2
    jobs = 1 if single_core else max(2, resolve_jobs(args.jobs if args.jobs else None))
    parity_runs = 20 if args.quick else 60
    sweep_runs = 60 if args.quick else args.runs
    cache_runs = 20 if args.quick else 60

    print(f"[bench_sweeps] cpu_count={os.cpu_count()} jobs={jobs}")

    print(f"[bench_sweeps] parity: fig01 runs={parity_runs} ...")
    parity = check_parity(parity_runs, jobs)
    parity["timing_comparison"] = (
        "skipped: single-core host" if single_core else "serial vs parallel"
    )
    print(f"[bench_sweeps]   serial=={jobs}-way parallel: OK")

    print(f"[bench_sweeps] throughput: fig01 runs={sweep_runs} ...")
    throughput = bench_throughput(sweep_runs, jobs)
    if single_core:
        throughput["speedup"] = None
        throughput["note"] = "single-core host: no parallel speedup expected"
        print(
            f"[bench_sweeps]   serial {throughput['serial_seconds']}s "
            "(single-core host: speedup comparison skipped)"
        )
    else:
        print(
            f"[bench_sweeps]   serial {throughput['serial_seconds']}s, "
            f"parallel {throughput['parallel_seconds']}s "
            f"(speedup {throughput['speedup']}x, "
            f"{throughput['trials_per_second_parallel']} trials/s)"
        )

    print(f"[bench_sweeps] cache: fig01 runs={cache_runs} ...")
    cache = bench_cache(cache_runs)
    print(
        f"[bench_sweeps]   cold {cache['cold_seconds']}s, "
        f"warm {cache['warm_seconds']}s, hit rate {cache['hit_rate']:.2f}"
    )

    print(f"[bench_sweeps] metrics: fig01 runs={cache_runs} off/on ...")
    metrics = bench_metrics(cache_runs, jobs)
    print(
        f"[bench_sweeps]   enabled overhead "
        f"{metrics['enabled_overhead_fraction']:+.1%}, disabled "
        f"{metrics['disabled_ns_per_call']}ns/call "
        f"(est. {metrics['disabled_overhead_fraction']:.3%} of run, "
        f"budget {metrics['disabled_overhead_budget']:.0%})"
    )

    supervision_runs = 40 if args.quick else 60
    print(
        f"[bench_sweeps] supervision: fig01 runs={supervision_runs} "
        "plain vs journalled ..."
    )
    supervision = bench_supervision(supervision_runs, jobs)
    print(
        f"[bench_sweeps]   journal {supervision['journal_records']} records "
        f"in {supervision['journal_seconds']}s "
        f"({supervision['supervision_overhead_fraction']:.3%} of run, "
        f"budget {supervision['supervision_overhead_budget']:.0%})"
    )

    farm_runs = 20 if args.quick else 60
    print(
        f"[bench_sweeps] farm: fig01 runs={farm_runs} serial vs "
        f"{jobs}-worker farm ..."
    )
    farm = bench_farm(farm_runs, jobs, enforce_gate=not single_core)
    gate_note = (
        f"budget {farm['overhead_budget_factor']:.1f}x"
        if farm["gate_enforced"]
        else "gate skipped: single-core host"
    )
    print(
        f"[bench_sweeps]   serial {farm['serial_seconds']}s, farm "
        f"{farm['farm_seconds']}s ({farm['overhead_factor']}x, {gate_note})"
    )

    # The speedup floor only holds once per-cell setup is amortised, so
    # quick mode reports the ratio without enforcing it.
    vector_runs = 60 if args.quick else args.runs
    vector_reps = 1 if args.quick else 3
    print(
        f"[bench_sweeps] vectorized: query curves runs={vector_runs} "
        f"scalar vs kernel, best of {vector_reps} ..."
    )
    vectorized = bench_vectorized(
        vector_runs, reps=vector_reps, enforce_gate=not args.quick
    )
    vec_gate_note = (
        f"floor {vectorized['speedup_floor']:.0f}x"
        if vectorized["gate_enforced"]
        else "gate skipped: quick mode"
    )
    print(
        f"[bench_sweeps]   scalar {vectorized['scalar_seconds']}s, "
        f"vectorized {vectorized['vectorized_seconds']}s "
        f"({vectorized['speedup']}x, "
        f"{vectorized['trials_per_second']} trials/s, {vec_gate_note})"
    )

    payload = {
        "benchmark": "sweeps",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "single_core": single_core,
        "quick": args.quick,
        "parity": parity,
        "throughput": throughput,
        "cache": cache,
        "metrics": metrics,
        "supervision": supervision,
        "farm": farm,
        "vectorized": vectorized,
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_sweeps] wrote {args.out}")
    shutdown_executors()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
