"""Substrate micro-benchmarks: DES kernel, channel, backcast exchange.

These isolate the packet-level emulation's hot paths.  A full backcast
bin query is ~15 simulator events; the Fig 4 suite issues hundreds of
thousands of them, so the per-exchange cost matters.
"""

from __future__ import annotations

import numpy as np

from repro.core import TwoTBins
from repro.motes.testbed import Testbed, TestbedConfig
from repro.sim.kernel import Simulator


def test_bench_kernel_event_throughput(benchmark):
    """Schedule+fire 10k chained events."""

    def run():
        sim = Simulator()
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return state["n"]

    assert benchmark(run) == 10_000


def test_bench_backcast_exchange(benchmark):
    """One full announce/poll/HACK exchange on a 12-mote testbed."""
    tb = Testbed(TestbedConfig(num_participants=12, seed=0))
    tb.configure_positives([0, 3, 7])
    members = list(range(12))

    def exchange():
        return tb.initiator_app.query_bin(members)

    obs = benchmark(exchange)
    assert not obs.silent


def test_bench_full_testbed_session(benchmark):
    """A complete 2tBins session (build + configure + run) on 12 motes."""
    counter = {"i": 0}

    def session():
        counter["i"] += 1
        tb = Testbed(TestbedConfig(num_participants=12, seed=counter["i"]))
        tb.configure_positives([1, 4, 6, 9])
        return tb.run_threshold_query(TwoTBins(), 4)

    run = benchmark(session)
    assert run.result.decision


def test_bench_pollcast_session(benchmark):
    """A complete 2tBins session over pollcast (CCA-based RCD)."""
    counter = {"i": 0}

    def session():
        counter["i"] += 1
        tb = Testbed(
            TestbedConfig(
                num_participants=12, seed=counter["i"], primitive="pollcast"
            )
        )
        tb.configure_positives([1, 4, 6, 9])
        return tb.run_threshold_query(TwoTBins(), 4)

    run = benchmark(session)
    assert run.result.decision
