"""Micro-benchmarks of individual threshold-querying sessions.

These time single ``decide`` calls at the paper's canonical operating
points (sparse ``x << t``, hard ``x ~ t``, dense ``x >> t``) so
performance regressions in the algorithm kernels are visible
independently of the figure sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Abns,
    ExponentialIncrease,
    OracleBins,
    ProbabilisticAbns,
    TwoTBins,
)
from repro.group_testing.model import OnePlusModel, TwoPlusModel
from repro.group_testing.population import Population
from repro.mac import CsmaBaseline, SequentialOrdering

N, T = 256, 24
OPERATING_POINTS = {"sparse": 2, "critical": 24, "dense": 200}

ALGOS = {
    "2tBins": lambda x: TwoTBins(),
    "ExpIncrease": lambda x: ExponentialIncrease(),
    "ABNS2t": lambda x: Abns(p0_multiple=2.0),
    "ProbABNS": lambda x: ProbabilisticAbns(),
    "Oracle": lambda x: OracleBins(x),
}


@pytest.mark.parametrize("regime", sorted(OPERATING_POINTS))
@pytest.mark.parametrize("algo_name", sorted(ALGOS))
def test_bench_decide(benchmark, algo_name, regime):
    x = OPERATING_POINTS[regime]
    pop = Population.from_count(N, x, np.random.default_rng(0))
    factory = ALGOS[algo_name]
    counter = {"i": 0}

    def session():
        counter["i"] += 1
        model = OnePlusModel(pop, np.random.default_rng(counter["i"]))
        return factory(x).decide(
            model, T, np.random.default_rng(counter["i"] + 1)
        )

    result = benchmark(session)
    assert result.decision == pop.truth(T)


@pytest.mark.parametrize("regime", sorted(OPERATING_POINTS))
def test_bench_decide_two_plus(benchmark, regime):
    x = OPERATING_POINTS[regime]
    pop = Population.from_count(N, x, np.random.default_rng(0))
    counter = {"i": 0}

    def session():
        counter["i"] += 1
        model = TwoPlusModel(pop, np.random.default_rng(counter["i"]))
        return TwoTBins().decide(
            model, T, np.random.default_rng(counter["i"] + 1)
        )

    result = benchmark(session)
    assert result.decision == pop.truth(T)


@pytest.mark.parametrize("baseline_name", ["CSMA", "Sequential"])
def test_bench_baselines(benchmark, baseline_name):
    pop = Population.from_count(N, 64, np.random.default_rng(0))
    baseline = (
        CsmaBaseline() if baseline_name == "CSMA" else SequentialOrdering()
    )
    counter = {"i": 0}

    def session():
        counter["i"] += 1
        return baseline.decide(pop, T, np.random.default_rng(counter["i"]))

    result = benchmark(session)
    assert result.decision
