"""Benchmarks for the extension experiments and the counting baseline.

* ``ext_latency`` / ``ext_interference`` -- the future-work experiments,
  regenerated and persisted like the paper figures.
* counting-vs-threshold -- the quantitative version of the paper's
  motivation (Sec III): answering ``x >= t`` directly is much cheaper
  than identifying positives until the answer is known.
"""

from __future__ import annotations

import numpy as np

from repro.core.counting import AdaptiveSplittingCounter
from repro.core.two_t_bins import TwoTBins
from repro.experiments import ext_interference, ext_latency
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population


def _one(benchmark, fn):
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def test_bench_ext_latency(benchmark, record_figure):
    result = _one(benchmark, lambda: ext_latency.run(runs=20, seed=1))
    record_figure(result)
    tcast = result.get_series("tcast/backcast")
    seq = result.get_series("Sequential")
    csma = result.get_series("CSMA")
    assert tcast.y_at(0) < seq.y_at(0)
    n = result.parameters["participants"]
    assert tcast.y_at(n) < csma.y_at(n) * 1.5


def test_bench_ext_interference(benchmark, record_figure):
    result = _one(
        benchmark,
        lambda: ext_interference.run(runs=25, seed=2, rates=(0.0, 2.0, 6.0)),
    )
    record_figure(result)
    note = next(n for n in result.notes if "false positives" in n)
    assert note.split(":")[1].strip().split()[0] == "0"


def test_bench_counting_vs_threshold(benchmark):
    """Mean cost of full counting vs tcast threshold querying."""
    n, t, x = 256, 24, 20

    def sweep():
        count_costs, tcast_costs = [], []
        for s in range(40):
            pop = Population.from_count(n, x, np.random.default_rng(s))
            model = OnePlusModel(pop, np.random.default_rng(s + 1))
            AdaptiveSplittingCounter().count(model, np.random.default_rng(s + 2))
            count_costs.append(model.queries_used)
            model2 = OnePlusModel(pop, np.random.default_rng(s + 1))
            TwoTBins().decide(model2, t, np.random.default_rng(s + 2))
            tcast_costs.append(model2.queries_used)
        return float(np.mean(count_costs)), float(np.mean(tcast_costs))

    counting, tcast = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["mean_queries"] = {
        "counting": counting,
        "tcast": tcast,
    }
    assert tcast < counting


def test_bench_ext_faults(benchmark, record_figure):
    """The ISSUE acceptance gate for the reliability layer: unwrapped
    2tBins degrades with fault severity; the Chernoff-confirmed wrapper
    holds accuracy >= 99% at <= 2x query cost for p_single <= 0.1."""
    from repro.experiments import ext_faults

    result = _one(benchmark, lambda: ext_faults.run(runs=300, seed=7))
    record_figure(result)
    plain = result.get_series("2tBins FN rate")
    rel = result.get_series("reliable FN rate")
    qp = result.get_series("2tBins mean queries")
    qr = result.get_series("reliable mean queries")
    # (a) the unwrapped algorithm's FN rate grows with severity.
    assert plain.y_at(0.0) == 0.0
    assert plain.y_at(0.05) > 0.0
    assert plain.y_at(0.2) > plain.y_at(0.05)
    # (b) the retry-wrapped variant holds the reliability contract.
    for p in (0.0, 0.02, 0.05, 0.1):
        assert rel.y_at(p) <= 0.01, f"accuracy < 99% at p_single={p}"
        assert qr.y_at(p) <= 2.0 * qp.y_at(p), f"cost > 2x at p_single={p}"


def test_bench_ext_scaling(benchmark, record_figure):
    from repro.experiments import ext_scaling

    result = _one(
        benchmark, lambda: ext_scaling.run(runs=60, seed=1, ns=(32, 128, 512))
    )
    record_figure(result)
    two = result.get_series("2tBins")
    seq = result.get_series("Sequential")
    assert two.y_at(512) < seq.y_at(512)
