"""Shared helpers for the benchmark harness.

Every ``test_bench_figNN`` regenerates one paper figure inside the timed
region, then writes the figure's chart + data table to
``benchmarks/results/<figid>.txt`` (and ``.csv``) so the series the paper
reports are preserved as artefacts of the benchmark run, not just timing
numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_figure():
    """Persist an :class:`ExperimentResult` under ``benchmarks/results``."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.exp_id}.txt").write_text(result.report() + "\n")
        (RESULTS_DIR / f"{result.exp_id}.csv").write_text(result.to_csv() + "\n")
        return result

    return _record
