#!/usr/bin/env python3
"""Driving the testbed over its serial control plane (Sec IV-D).

The paper's laptop talks to every mote over a serial port: configure the
predicate, reboot, stimulate a query on the initiator, read the verdict
back.  This script runs that exact lifecycle through the byte-level
protocol (SLIP framing + checksum + command codes) rather than the
Python API -- every verb below crosses the emulated wire twice.

Run:  python examples/serial_harness.py
"""

import numpy as np

from repro.motes.serial import SerialTestbedController, encode_frame
from repro.motes.testbed import Testbed, TestbedConfig


def main() -> None:
    participants = 12
    tb = Testbed(TestbedConfig(num_participants=participants, seed=21))
    laptop = SerialTestbedController(tb)

    # A peek at the wire format itself.
    frame = encode_frame(bytes([0x03, 4, 0, 0]))  # QUERY t=4, 2tBins, pred 0
    print(f"a QUERY command on the wire: {frame.hex(' ')}  "
          f"({len(frame)} bytes incl. framing + checksum)\n")

    rng = np.random.default_rng(3)
    print(f"{participants}-mote testbed; running the paper's lifecycle "
          "(configure -> reboot -> query -> collect) over serial:\n")
    print(f"{'x':>3} {'t':>3} {'verdict':>10} {'queries':>8}")
    for trial in range(6):
        x = int(rng.integers(0, participants + 1))
        t = int(rng.integers(1, 7))
        positives = (
            [int(p) for p in rng.choice(participants, size=x, replace=False)]
            if x
            else []
        )
        laptop.configure_positives(positives)
        laptop.reboot()
        response = laptop.query(t)
        verdict = "x >= t" if response.decision else "x < t"
        check = "ok" if response.decision == (x >= t) else "WRONG"
        print(f"{x:>3} {t:>3} {verdict:>10} {response.queries:>8}   [{check}]")

    print("\nall verdicts round-tripped through SLIP frames with additive "
          "checksums -- the same control plane the paper's TinyOS motes "
          "expose to the laptop.")


if __name__ == "__main__":
    main()
