#!/usr/bin/env python3
"""Intruder classification by per-class threshold queries (Sec II-C).

The paper names classification as a prime tcast use case: "querying of
the neighborhood for classification of an intruder (say as a soldier,
car, or tank) by counting the detections in the neighborhood."  Each
class is a separate predicate with its own detection signature --
heavier intruders trip more sensors -- and the initiator runs one
threshold query per class on the *same* deployment, over the emulated
mote testbed.

Run:  python examples/intruder_classification.py
"""

import numpy as np

from repro import Testbed, TestbedConfig, TwoTBins

#: Class signature: (predicate id, detection probability per neighbour,
#: confirmation threshold).  A tank shakes many geophones; a soldier few.
CLASSES = {
    "soldier": (0, 0.25, 3),
    "car": (1, 0.55, 7),
    "tank": (2, 0.90, 12),
}


def deploy_event(tb: Testbed, actual: str, rng: np.random.Generator) -> None:
    """Configure per-class detections for one intrusion event.

    Every class predicate gets configured: the actual intruder's class
    signature fires at its own rate, the other classes only via confusion
    (a tank also trips the 'car' detectors, etc. -- modelled by scaling
    the detection rate by signature similarity).
    """
    n = tb.num_participants
    rates = {name: sig[1] for name, sig in CLASSES.items()}
    actual_rate = rates[actual]
    for name, (pred_id, rate, _t) in CLASSES.items():
        # Confusion: a class detector fires at most at its own rate, and
        # only to the extent the actual intruder matches the signature.
        effective = min(rate, actual_rate) if name != actual else rate
        detections = [i for i in range(n) if rng.random() < effective]
        tb.configure_positives(detections, predicate_id=pred_id)


def classify(tb: Testbed) -> tuple[str, int]:
    """Run one threshold query per class, heaviest first; the first class
    whose threshold confirms wins (heavier classes need more detections,
    so they are the most specific test)."""
    total_queries = 0
    for name in ("tank", "car", "soldier"):
        pred_id, _rate, t = CLASSES[name]
        run = tb.run_threshold_query(TwoTBins(), t, predicate_id=pred_id)
        total_queries += run.result.queries
        if run.result.decision:
            return name, total_queries
    return "false alarm", total_queries


def main() -> None:
    participants = 16
    rng = np.random.default_rng(7)
    print(
        f"deployment: {participants} motes; classes and confirmation "
        "thresholds:"
    )
    for name, (pred, rate, t) in CLASSES.items():
        print(f"  {name:<8} predicate={pred} detection rate={rate:.0%} t={t}")
    print()

    events = 30
    confusion: dict[str, dict[str, int]] = {
        c: {k: 0 for k in [*CLASSES, "false alarm"]} for c in CLASSES
    }
    total_queries = 0
    for i in range(events):
        actual = list(CLASSES)[i % len(CLASSES)]
        tb = Testbed(TestbedConfig(num_participants=participants, seed=100 + i))
        deploy_event(tb, actual, rng)
        verdict, queries = classify(tb)
        confusion[actual][verdict] += 1
        total_queries += queries

    print(f"{events} events classified in {total_queries} on-air queries "
          f"({total_queries / events:.1f}/event)")
    print("\nconfusion matrix (rows = actual, columns = classified):")
    cols = [*CLASSES, "false alarm"]
    print("  " + " ".join(f"{c:>12}" for c in ["actual\\out", *cols]))
    for actual, row in confusion.items():
        cells = " ".join(f"{row[c]:>12}" for c in cols)
        print("  " + f"{actual:>12} " + cells)
    correct = sum(confusion[c][c] for c in CLASSES)
    print(f"\naccuracy: {correct}/{events} "
          f"({correct / events:.0%}) -- confusions stay within adjacent "
          "classes because signatures overlap (a tank also trips car "
          "detectors), exactly the count-based classification the paper "
          "describes.")


if __name__ == "__main__":
    main()
