#!/usr/bin/env python3
"""tcast under interfering traffic: the paper's multihop claim (Sec III-B).

The paper argues that backcast-based tcast survives in multihop networks
because interference from neighbouring regions can only *suppress* a
hardware acknowledgement (a false negative), never *fabricate* one (no
false positives).  This script attaches an interference source to the
emulated testbed, sweeps its traffic rate, and measures the error
asymmetry directly -- the experiment the paper deferred to the Kansei
testbed.

Run:  python examples/multihop_tolerance.py
"""

from repro.ext.multihop import InterferenceStudy
from repro.viz.ascii import render_table


def main() -> None:
    participants, threshold = 12, 4
    study = InterferenceStudy(
        participants=participants, threshold=threshold, seed=11
    )
    rates = [0.0, 0.02, 0.05, 0.1, 0.25, 0.5]
    print(
        f"testbed: {participants} participants, t={threshold}, 2tBins over "
        "backcast; a neighbouring-region interferer injects data frames "
        "at increasing rates\n"
    )

    rows = []
    runs = 60
    for rate in rates:
        result = study.run_rate(rate, runs=runs)
        rows.append(
            [
                rate,
                result.frames_injected,
                f"{result.false_negative_rate:.1%}",
                result.false_positives,
                result.mean_queries,
            ]
        )
    print(
        render_table(
            [
                "frames/ms",
                "injected",
                "false-neg rate",
                "false-pos",
                "mean queries",
            ],
            rows,
        )
    )
    print(
        "\nthe asymmetry the paper predicts: false negatives rise with the "
        "interference rate (a collided HACK fails to latch), while false "
        "positives stay at zero at every rate -- only a decoded hardware "
        "ACK with the poll's sequence number counts as 'non-empty', and "
        "interference cannot forge one."
    )


if __name__ == "__main__":
    main()
