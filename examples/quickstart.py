#!/usr/bin/env python3
"""Quickstart: answer a threshold query with tcast.

Builds a 128-node singlehop neighbourhood with 20 predicate-positive
nodes, then asks "are at least 16 nodes positive?" with every algorithm
in the family, comparing their query costs against the traditional
baselines and the theoretical bounds.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Abns,
    CsmaBaseline,
    ExponentialIncrease,
    OnePlusModel,
    OracleBins,
    Population,
    ProbabilisticAbns,
    SequentialOrdering,
    TwoPlusModel,
    TwoTBins,
    lower_bound_queries,
    upper_bound_queries,
)


def main() -> None:
    n, x, t = 128, 20, 16
    rng = np.random.default_rng(7)
    population = Population.from_count(size=n, x=x, rng=rng)
    print(f"population: N={n}, hidden positives x={x}, threshold t={t}")
    print(f"ground truth: x >= t is {population.truth(t)}")
    print(
        f"bounds: <= {upper_bound_queries(n, t)} queries (2tBins worst case), "
        f">= {lower_bound_queries(n, t):.0f} (information-theoretic floor)\n"
    )

    algorithms = [
        TwoTBins(),
        ExponentialIncrease(),
        Abns(p0_multiple=2.0),
        ProbabilisticAbns(),
        OracleBins(x),
    ]
    print("RCD (tcast) algorithms, 1+ collision model:")
    for algo in algorithms:
        model = OnePlusModel(population, np.random.default_rng(1))
        result = algo.decide(model, t, np.random.default_rng(2))
        print(f"  {result.summary()}")

    print("\nsame, 2+ collision model (capture effect enabled):")
    for algo in [TwoTBins(), ExponentialIncrease()]:
        model = TwoPlusModel(population, np.random.default_rng(1))
        result = algo.decide(model, t, np.random.default_rng(2))
        extra = (
            f", {result.confirmed_positives} positives identified via capture"
        )
        print(f"  {result.summary()}{extra}")

    print("\ntraditional baselines (cost in reply slots):")
    for baseline in [CsmaBaseline(), SequentialOrdering()]:
        result = baseline.decide(population, t, np.random.default_rng(3))
        flag = ""
        if result.decision != population.truth(t):
            flag = "   <-- WRONG: CSMA cannot certify its verdict (Sec I)"
        print(f"  {result.summary()}{flag}")


if __name__ == "__main__":
    main()
