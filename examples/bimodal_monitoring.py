#!/usr/bin/env python3
"""Constant-cost monitoring with the Sec VI probabilistic model.

A perimeter-surveillance deployment knows from history that the number
of detecting nodes is bimodal: either a few false positives (quiet mode)
or a mass detection (activity mode).  The probabilistic scheme answers
the threshold question in O(1) queries -- independent of n, x and t --
by sizing a repeated sampled probe from the Chernoff bound (Eq 10).

The script reproduces the paper's worked example (n=128, mu1=16,
mu2=96: 19 repeats at delta=1%, 12 at delta=5%) and then streams a day
of events through the scheme, reporting measured accuracy vs the bound.

Run:  python examples/bimodal_monitoring.py
"""

import numpy as np

from repro import BimodalSpec, OnePlusModel, ProbabilisticThreshold, analyze_separation
from repro.workloads.bimodal import BimodalWorkload


def main() -> None:
    n = 128
    spec = BimodalSpec(n=n, mu1=16.0, sigma1=0.0, mu2=96.0, sigma2=0.0)
    analysis = analyze_separation(spec)
    print("paper's worked example (n=128, mu1=16, mu2=96):")
    print(f"  gap-optimal sampling bins b = {analysis.bins:.1f}")
    print(f"  mode non-empty probabilities q1={analysis.q1:.3f}, "
          f"q2={analysis.q2:.3f}, eps={analysis.eps:.3f}")
    for delta in (0.01, 0.05):
        print(f"  delta={delta:.0%}: Eq 10 gives r = {analysis.repeats(delta)} "
              "repeats")
    print("  (paper: 19 and 12)\n")

    # A realistic monitored deployment with mode spread.
    spec = BimodalSpec(
        n=n, mu1=4.0, sigma1=3.0, mu2=80.0, sigma2=10.0, weight1=0.9
    )
    delta = 0.05
    scheme = ProbabilisticThreshold(spec, delta=delta)
    print(
        f"deployment model: quiet ~ N({spec.mu1:g},{spec.sigma1:g}^2), "
        f"activity ~ N({spec.mu2:g},{spec.sigma2:g}^2), 90% quiet"
    )
    print(
        f"scheme: r = {scheme.repeats} probes per event "
        f"(target failure {delta:.0%}), cost independent of n/x/t\n"
    )

    workload = BimodalWorkload(spec)
    events = 2000
    correct = 0
    queries = 0
    rng = np.random.default_rng(5)
    for _ in range(events):
        population, draw = workload.draw_population(rng)
        model = OnePlusModel(population, rng)
        decision = scheme.decide_detailed(model, threshold=n // 2, rng=rng)
        queries += decision.result.queries
        if decision.result.decision == draw.activity:
            correct += 1
    print(f"streamed {events} events: accuracy {correct / events:.1%} "
          f"(bound: >= {1 - delta:.0%}), "
          f"mean cost {queries / events:.1f} queries/event")
    print("an exact algorithm would pay its full cost on *every* event; "
          "the probabilistic scheme's cost never grows.")


if __name__ == "__main__":
    main()
