#!/usr/bin/env python3
"""Packet-level mote testbed: the Sec IV-D experiment, end to end.

Builds the emulated TelosB testbed (initiator + 12 participants on a
CC2420-like radio stack), runs 2tBins over backcast with the calibrated
radio-irregularity model, and reports what the paper reports: query
counts, error profile (false negatives concentrated on single-HACK
bins, zero false positives), plus the latency and energy figures the
emulation adds for free.

Run:  python examples/mote_testbed.py
"""

import numpy as np

from repro import Testbed, TestbedConfig, TwoTBins
from repro.radio.irregularity import HackMissModel


def main() -> None:
    participants = 12
    miss_model = HackMissModel(p_single=0.05, decay=0.1)
    print(
        f"testbed: 1 initiator + {participants} TelosB-like participants, "
        "backcast primitive, 802.15.4 timing\n"
    )

    # One fully traced run for a close look.
    tb = Testbed(
        TestbedConfig(
            num_participants=participants,
            seed=3,
            hack_miss=miss_model,
            trace=True,
        )
    )
    tb.configure_positives([1, 4, 7, 9])
    tb.reboot_all()
    run = tb.run_threshold_query(TwoTBins(), threshold=4)
    print("single traced run (x=4, t=4):")
    print(f"  verdict:   {run.result.summary()}")
    print(f"  truth:     x >= t is {run.truth}")
    print(f"  air time:  {run.elapsed_us / 1000.0:.2f} ms")
    print(f"  energy:    {run.initiator_energy_uj / 1000.0:.2f} mJ (initiator)")
    print(f"  frames:    {tb.channel.frames_sent} on air")
    print("  trace excerpt (first 8 protocol events):")
    protocol = [r for r in tb.tracer if r.category.startswith("backcast")]
    for record in protocol[:8]:
        print(f"    t={record.time:9.1f}us {record.category:<20} {dict(record.detail)}")

    # The paper's error-profile suite: t in {2,4,6}, 100 reps each.
    print("\nerror-profile suite (as in Fig 4):")
    total = fn = fp = 0
    rng = np.random.default_rng(99)
    for t in (2, 4, 6):
        for rep in range(100):
            tb = Testbed(
                TestbedConfig(
                    num_participants=participants,
                    seed=10_000 + 100 * t + rep,
                    hack_miss=miss_model,
                )
            )
            x = int(rng.integers(0, participants + 1))
            positives = rng.choice(participants, size=x, replace=False) if x else []
            tb.configure_positives(int(p) for p in positives)
            tb.reboot_all()
            run = tb.run_threshold_query(TwoTBins(), t)
            total += 1
            fn += run.false_negative
            fp += run.false_positive
    print(f"  runs: {total}, false negatives: {fn} ({fn / total:.1%}), "
          f"false positives: {fp}")
    print("  (paper: 102/7200 = 1.4% false negatives, 0 false positives)")


if __name__ == "__main__":
    main()
