#!/usr/bin/env python3
"""Intrusion detection: the paper's motivating application (Sec I).

A field of sensor nodes watches for intruders.  When a node detects
something, it becomes the *initiator* and runs a threshold query over
its singlehop neighbourhood: at least ``t`` corroborating detections
mean a real event (notify the basestation); fewer mean a false alarm
(log and move on).  The script simulates both event kinds and shows why
tcast fits: real events (many positives) and false alarms (almost none)
are both resolved in a handful of queries, while the hard x ~ t middle
is rare.

Run:  python examples/intrusion_detection.py
"""

import numpy as np

from repro import OnePlusModel, ProbabilisticAbns, TwoTBins
from repro.group_testing.population import Population
from repro.mac import CsmaBaseline, SequentialOrdering
from repro.workloads.scenarios import IntrusionField


def confirm_event(population: Population, threshold: int, seed: int) -> dict:
    """Run the confirmation protocols an initiator could choose from."""
    out = {}
    for name, make in {
        "tcast/2tBins": lambda: TwoTBins(),
        "tcast/ProbABNS": lambda: ProbabilisticAbns(),
    }.items():
        model = OnePlusModel(population, np.random.default_rng(seed))
        result = make().decide(model, threshold, np.random.default_rng(seed + 1))
        out[name] = (result.decision, result.queries)
    for name, baseline in {
        "CSMA": CsmaBaseline(),
        "Sequential": SequentialOrdering(),
    }.items():
        result = baseline.decide(
            population, threshold, np.random.default_rng(seed + 2)
        )
        out[name] = (result.decision, result.queries)
    return out


def main() -> None:
    rng = np.random.default_rng(42)
    field = IntrusionField(
        num_nodes=150,
        field_size=100.0,
        sensing_range=22.0,
        false_positive_rate=0.015,
        rng=rng,
    )
    threshold = 6
    print(
        f"deployment: {field.num_nodes} nodes over 100x100 m, "
        f"sensing range 22 m, confirmation threshold t={threshold}\n"
    )

    for label, has_intruder in [("REAL INTRUSION", True), ("FALSE ALARM", False)]:
        scenario = field.event(rng, intruder=has_intruder)
        print(
            f"--- {label}: x={scenario.x} detections "
            f"({len(scenario.true_detections)} true, "
            f"{len(scenario.false_detections)} spurious) ---"
        )
        costs = confirm_event(scenario.population, threshold, seed=100)
        truth = scenario.population.truth(threshold)
        for name, (decision, queries) in costs.items():
            verdict = "CONFIRMED" if decision else "dismissed"
            ok = "" if decision == truth else "  <-- WRONG"
            print(f"  {name:<16} {verdict:<10} in {queries:4d} slots{ok}")
        print()

    # Aggregate cost over a day of mostly-false alarms.
    events = 200
    tcast_total = csma_total = seq_total = 0
    for i in range(events):
        scenario = field.event(rng, intruder=(rng.random() < 0.05))
        costs = confirm_event(scenario.population, threshold, seed=1000 + i)
        tcast_total += costs["tcast/ProbABNS"][1]
        csma_total += costs["CSMA"][1]
        seq_total += costs["Sequential"][1]
    print(
        f"over {events} events (5% real): "
        f"tcast={tcast_total} slots, CSMA={csma_total}, "
        f"sequential={seq_total}"
    )
    print(f"tcast saves {1 - tcast_total / seq_total:.0%} vs sequential")
    if tcast_total <= csma_total:
        print(f"tcast saves {1 - tcast_total / csma_total:.0%} vs CSMA")
    else:
        print(
            f"CSMA is {tcast_total / csma_total - 1:.0%} cheaper here -- "
            "expected: with mostly-quiet events x << t, which is CSMA's "
            "good regime (Sec IV-C); unlike CSMA, tcast's verdicts are "
            "certified, and its advantage reverses sharply once x > t."
        )


if __name__ == "__main__":
    main()
