#!/usr/bin/env python3
"""RFID inventory threshold queries (the paper's Sec I/VII application).

A warehouse dock reader must decide whether at least ``t`` tags of a
given product class are present on a pallet -- it does not need the full
inventory.  Traditional readers answer by singulating every matching tag
(framed slotted ALOHA); tcast answers with select-mask group tests.

Run:  python examples/rfid_inventory.py
"""

import numpy as np

from repro.core import ExponentialIncrease, TwoTBins
from repro.ext.rfid import (
    Gen2InventoryBaseline,
    RfidThresholdReader,
    TagPopulation,
)
from repro.viz.ascii import render_table


def main() -> None:
    size, threshold = 512, 25
    print(
        f"dock scenario: up to {size} tags in range; ship the pallet only "
        f"if >= {threshold} tags of class C are present\n"
    )

    rows = []
    rng_master = np.random.default_rng(11)
    for x in [0, 5, 20, 25, 60, 200, 512]:
        tags = TagPopulation.random(size, x, rng_master)
        truth = tags.x >= threshold

        cell = [x, truth]
        for label, engine in [
            ("tcast/2tBins", RfidThresholdReader(TwoTBins())),
            ("tcast/ExpInc", RfidThresholdReader(ExponentialIncrease())),
        ]:
            result = engine.threshold_query(
                tags, threshold, np.random.default_rng(1000 + x)
            )
            assert result.decision == truth, label
            cell.append(result.queries)
        baseline = Gen2InventoryBaseline()
        result = baseline.threshold_query(
            tags, threshold, np.random.default_rng(2000 + x)
        )
        assert result.decision == truth
        cell.append(result.queries)
        rows.append(cell)

    print(
        render_table(
            ["matching x", "truth", "2tBins slots", "ExpInc slots",
             "Gen2 inventory slots"],
            rows,
        )
    )
    print(
        "\ntakeaway: the inventory baseline pays per *tag* (and must drain "
        "every tag to certify a negative); tcast pays per *group test* and "
        "gets cheaper as matching tags become abundant."
    )


if __name__ == "__main__":
    main()
