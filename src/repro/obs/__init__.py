"""Observability: process-safe metrics for sweeps and query models.

``repro.obs`` is the measurement layer the evaluation harness reports
through: lightweight always-on-capable counters, fixed-bucket histograms
and monotonic timers, owned by one :class:`MetricsRegistry` per process
and merged across sweep worker processes via immutable
:class:`MetricsSnapshot` values.  Collection is **off by default** and
costs one boolean check per instrument call while disabled; enabling it
never touches an RNG stream, so metrics-on runs are bit-identical to
metrics-off runs.

Enable from the CLI with ``tcast-experiments run fig01 --metrics m.json``
or programmatically::

    from repro.obs import enable_metrics, snapshot_metrics

    enable_metrics()
    ...  # run experiments
    print(snapshot_metrics().to_json())

See DESIGN.md section "Observability" for the registry design, the
cross-process merge semantics, and the disabled-cost contract.
"""

from repro.obs.registry import (
    Counter,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    Timer,
    TimerSnapshot,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    reset_metrics,
    snapshot_metrics,
)

__all__ = [
    "Counter",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Timer",
    "TimerSnapshot",
    "disable_metrics",
    "enable_metrics",
    "get_registry",
    "metrics_enabled",
    "reset_metrics",
    "snapshot_metrics",
]
