"""The metrics registry: counters, histograms, and monotonic timers.

Design constraints (see DESIGN.md "Observability"):

* **Near-zero disabled cost.**  Every instrument holds a reference to its
  owning registry and checks one boolean before doing any work, so a
  disabled instrument costs one attribute load and a branch per call --
  the same contract as :class:`repro.sim.trace.Tracer`.  Instruments are
  created once at module import (name lookups never happen on hot paths).
* **Process-safety by merge, not by sharing.**  Each process owns its own
  registry; nothing is shared across process boundaries.  A worker
  serialises its registry into an immutable, picklable
  :class:`MetricsSnapshot` which travels back with the shard results and
  is summed into the parent's registry via :meth:`MetricsRegistry.absorb`.
  Counter merges are exact integer sums; histogram merges sum per-bucket
  counts (bucket edges are fixed at creation and must match).
* **Bit-exactness neutrality.**  No instrument draws randomness or
  perturbs any RNG stream: enabling metrics can never change a result.

Timers read the host's monotonic clock (``time.perf_counter``), which is
exactly what they are for -- profiling real elapsed time of the harness,
never simulated time.  This module therefore lives *outside* the
``tcast-lint`` TCL002 simulation scope.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from types import TracebackType
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Type


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable state of one histogram.

    Attributes:
        edges: The fixed, sorted bucket edges.  Bucket ``i`` counts values
            ``<= edges[i]`` (and above the previous edge); one overflow
            bucket beyond the last edge makes ``len(counts) ==
            len(edges) + 1``.
        counts: Per-bucket observation counts.
        total: Total observations (sum of ``counts``).
        sum: Sum of all observed values.
        min: Smallest observed value (``None`` when empty).
        max: Largest observed value (``None`` when empty).
    """

    edges: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: int
    sum: float
    min: Optional[float]
    max: Optional[float]

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Exact sum of two histogram states.

        Raises:
            ValueError: If the bucket edges differ (merging would be
                meaningless).
        """
        if self.edges != other.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        return HistogramSnapshot(
            edges=self.edges,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            sum=self.sum + other.sum,
            min=min(mins) if mins else None,
            max=max(maxs) if maxs else None,
        )


@dataclass(frozen=True)
class TimerSnapshot:
    """Immutable state of one timer.

    Attributes:
        calls: Completed timing spans.
        total_seconds: Summed span durations (wall clock).
        max_seconds: Longest single span (0.0 when no calls).
    """

    calls: int
    total_seconds: float
    max_seconds: float

    def merge(self, other: "TimerSnapshot") -> "TimerSnapshot":
        """Sum of two timer states (max of the maxima)."""
        return TimerSnapshot(
            calls=self.calls + other.calls,
            total_seconds=self.total_seconds + other.total_seconds,
            max_seconds=max(self.max_seconds, other.max_seconds),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, picklable view of a registry's instruments.

    Snapshots are what crosses process boundaries: a sweep worker returns
    one alongside its shard costs, and the parent merges them.  All merge
    operations are exact -- counters are integer sums, histogram buckets
    are integer sums -- so merging the per-worker snapshots of a parallel
    sweep reproduces the serial run's totals bit for bit.

    Attributes:
        counters: Counter name -> value.
        histograms: Histogram name -> state.
        timers: Timer name -> state.
    """

    counters: Mapping[str, int] = field(default_factory=dict)
    histograms: Mapping[str, HistogramSnapshot] = field(default_factory=dict)
    timers: Mapping[str, TimerSnapshot] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Exact element-wise sum of two snapshots."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        histograms = dict(self.histograms)
        for name, hist in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = hist if mine is None else mine.merge(hist)
        timers = dict(self.timers)
        for name, timer in other.timers.items():
            mine_t = timers.get(name)
            timers[name] = timer if mine_t is None else mine_t.merge(timer)
        return MetricsSnapshot(
            counters=counters, histograms=histograms, timers=timers
        )

    @staticmethod
    def merge_all(snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Fold :meth:`merge` over any number of snapshots."""
        merged = MetricsSnapshot()
        for snap in snapshots:
            merged = merged.merge(snap)
        return merged

    def counter(self, name: str) -> int:
        """A counter's value (0 when the counter never fired)."""
        return int(self.counters.get(name, 0))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable rendering (see :meth:`from_dict`)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "histograms": {
                k: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "total": h.total,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                }
                for k, h in sorted(self.histograms.items())
            },
            "timers": {
                k: {
                    "calls": t.calls,
                    "total_seconds": t.total_seconds,
                    "max_seconds": t.max_seconds,
                }
                for k, t in sorted(self.timers.items())
            },
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "MetricsSnapshot":
        """Inverse of :meth:`to_dict`.

        Raises:
            KeyError: On a malformed payload.
        """
        counters_raw = data.get("counters", {})
        hists_raw = data.get("histograms", {})
        timers_raw = data.get("timers", {})
        assert isinstance(counters_raw, Mapping)
        assert isinstance(hists_raw, Mapping)
        assert isinstance(timers_raw, Mapping)
        return MetricsSnapshot(
            counters={k: int(v) for k, v in counters_raw.items()},
            histograms={
                k: HistogramSnapshot(
                    edges=tuple(float(e) for e in h["edges"]),
                    counts=tuple(int(c) for c in h["counts"]),
                    total=int(h["total"]),
                    sum=float(h["sum"]),
                    min=None if h["min"] is None else float(h["min"]),
                    max=None if h["max"] is None else float(h["max"]),
                )
                for k, h in hists_raw.items()
            },
            timers={
                k: TimerSnapshot(
                    calls=int(t["calls"]),
                    total_seconds=float(t["total_seconds"]),
                    max_seconds=float(t["max_seconds"]),
                )
                for k, t in timers_raw.items()
            },
        )

    def to_json(self, *, indent: int = 2) -> str:
        """The :meth:`to_dict` payload as pretty-printed JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class Counter:
    """A monotonically increasing integer counter.

    Create via :meth:`MetricsRegistry.counter`; hold the returned object
    at module level so hot paths pay no name lookup.
    """

    __slots__ = ("name", "_registry", "value")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (no-op while the registry is disabled)."""
        if self._registry.enabled:
            self.value += n

    def _reset(self) -> None:
        self.value = 0


class Histogram:
    """A fixed-bucket histogram of numeric observations.

    Bucket ``i`` counts observations ``<= edges[i]`` (above the previous
    edge); one extra overflow bucket catches everything beyond the last
    edge.  Edges are fixed at creation so snapshots from different
    processes merge by exact per-bucket summation.
    """

    __slots__ = (
        "name", "_registry", "edges", "counts", "total", "sum", "min", "max"
    )

    def __init__(
        self,
        name: str,
        edges: Sequence[float],
        registry: "MetricsRegistry",
    ) -> None:
        if not edges:
            raise ValueError(f"histogram {name!r}: edges must be non-empty")
        ordered = tuple(float(e) for e in edges)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError(
                f"histogram {name!r}: edges must be strictly increasing, "
                f"got {ordered}"
            )
        self.name = name
        self._registry = registry
        self.edges = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation (no-op while the registry is disabled)."""
        if not self._registry.enabled:
            return
        value = float(value)
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def _snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            edges=self.edges,
            counts=tuple(self.counts),
            total=self.total,
            sum=self.sum,
            min=self.min,
            max=self.max,
        )

    def _reset(self) -> None:
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def _absorb(self, snap: HistogramSnapshot) -> None:
        if snap.edges != self.edges:
            raise ValueError(
                f"histogram {self.name!r}: cannot absorb snapshot with "
                f"edges {snap.edges} into instrument with {self.edges}"
            )
        for i, count in enumerate(snap.counts):
            self.counts[i] += count
        self.total += snap.total
        self.sum += snap.sum
        if snap.min is not None and (self.min is None or snap.min < self.min):
            self.min = snap.min
        if snap.max is not None and (self.max is None or snap.max > self.max):
            self.max = snap.max


class _Span:
    """One in-flight timing span (the context manager a timer hands out)."""

    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer
        self._t0: Optional[float] = None

    def __enter__(self) -> "_Span":
        """Start the span (reads the clock only when metrics are on).

        Always re-arms the start mark, so re-entering a span object
        begins a fresh measurement and a disabled re-entry can never
        replay a stale start time.
        """
        self._t0 = (
            time.perf_counter() if self._timer._registry.enabled else None
        )
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        """Stop the span and record its duration exactly once.

        A span that unwinds via an exception still records (timed work
        happened either way); clearing the start mark afterwards makes a
        stray second ``__exit__`` a no-op instead of a double-record,
        while a full re-entry through :meth:`__enter__` starts a fresh
        measurement.
        """
        if self._t0 is not None:
            self._timer.add_seconds(time.perf_counter() - self._t0)
            self._t0 = None


class Timer:
    """Accumulates wall-clock durations of code spans.

    Use ``with timer.time(): ...`` around the span, or
    :meth:`add_seconds` for durations measured externally.  Reads the
    host's monotonic clock -- this is harness profiling, never simulated
    time.
    """

    __slots__ = ("name", "_registry", "calls", "total_seconds", "max_seconds")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self.calls = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def time(self) -> _Span:
        """A context manager timing the enclosed block."""
        return _Span(self)

    def add_seconds(self, seconds: float) -> None:
        """Record one externally measured span (no-op while disabled)."""
        if not self._registry.enabled:
            return
        self.calls += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def _snapshot(self) -> TimerSnapshot:
        return TimerSnapshot(
            calls=self.calls,
            total_seconds=self.total_seconds,
            max_seconds=self.max_seconds,
        )

    def _reset(self) -> None:
        self.calls = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def _absorb(self, snap: TimerSnapshot) -> None:
        self.calls += snap.calls
        self.total_seconds += snap.total_seconds
        if snap.max_seconds > self.max_seconds:
            self.max_seconds = snap.max_seconds


class MetricsRegistry:
    """A per-process home for named instruments.

    Instruments are created lazily and cached by name, so a module-level
    ``REGISTRY.counter("model.queries")`` executed at import time returns
    the same object in every importer.  The registry starts **disabled**:
    all instruments are inert until :meth:`enable` (the ``--metrics``
    CLI flag, a worker task's ``collect_metrics`` bit, or a test) flips
    the shared flag.

    Registries are process-local by design; see :class:`MetricsSnapshot`
    for how state crosses process boundaries.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}

    # -- instrument creation ------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, self)
        return inst

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        """Get or create the histogram called ``name``.

        Raises:
            ValueError: If ``name`` exists with different bucket edges.
        """
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, edges, self)
        elif inst.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already exists with edges "
                f"{inst.edges}, requested {tuple(edges)}"
            )
        return inst

    def timer(self, name: str) -> Timer:
        """Get or create the timer called ``name``."""
        inst = self._timers.get(name)
        if inst is None:
            inst = self._timers[name] = Timer(name, self)
        return inst

    # -- lifecycle ----------------------------------------------------------

    def set_enabled(self, enabled: bool) -> None:
        """Flip the shared collection flag all instruments check."""
        self.enabled = bool(enabled)

    def enable(self) -> None:
        """Start collecting (instruments keep any prior state)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting (instrument state is retained, not cleared)."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every instrument (the enabled flag is untouched)."""
        for counter in self._counters.values():
            counter._reset()
        for hist in self._histograms.values():
            hist._reset()
        for timer in self._timers.values():
            timer._reset()

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of the current instrument state.

        Instruments that never fired are omitted, so snapshots stay
        small on the wire.
        """
        return MetricsSnapshot(
            counters={
                name: c.value
                for name, c in self._counters.items()
                if c.value
            },
            histograms={
                name: h._snapshot()
                for name, h in self._histograms.items()
                if h.total
            },
            timers={
                name: t._snapshot()
                for name, t in self._timers.items()
                if t.calls
            },
        )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Sum a snapshot (e.g. from a worker process) into this registry.

        Absorption is merge machinery, not a hot path: it applies even
        while collection is disabled, so a parent can aggregate worker
        snapshots without racing its own enabled flag.

        Raises:
            ValueError: If a histogram's edges disagree with the local
                instrument of the same name.
        """
        for name, value in snapshot.counters.items():
            self.counter(name).value += value
        for name, hist in snapshot.histograms.items():
            self.histogram(name, hist.edges)._absorb(hist)
        for name, timer in snapshot.timers.items():
            self.timer(name)._absorb(timer)


#: The process-wide default registry every instrumented module shares.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """This process's shared default registry."""
    return _DEFAULT


def metrics_enabled() -> bool:
    """Whether the default registry is currently collecting."""
    return _DEFAULT.enabled


def enable_metrics() -> None:
    """Start collection on the default registry."""
    _DEFAULT.enable()


def disable_metrics() -> None:
    """Stop collection on the default registry."""
    _DEFAULT.disable()


def reset_metrics() -> None:
    """Zero every instrument on the default registry."""
    _DEFAULT.reset()


def snapshot_metrics() -> MetricsSnapshot:
    """Snapshot the default registry."""
    return _DEFAULT.snapshot()
