"""Output formats for ``tcast-lint`` findings.

Two reporters: a per-line human format (``path:line:col: RULE message``,
grep- and editor-friendly) and a JSON document CI uploads as an artifact
so a failing lint job carries its evidence.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.engine import Finding

#: Schema version stamped into the JSON report.
JSON_SCHEMA_VERSION = 1


def render_human(findings: Sequence[Finding]) -> str:
    """One line per finding plus a trailing count summary."""
    lines = [f.render() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"tcast-lint: {len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """The findings as a stable, pretty-printed JSON document.

    Layout::

        {
          "schema": 1,
          "findings": [{"path", "line", "col", "rule", "message"}, ...],
          "counts": {"TCL001": 2, ...},
          "total": 3
        }
    """
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
    doc = {
        "schema": JSON_SCHEMA_VERSION,
        "findings": [f.to_dict() for f in findings],
        "counts": dict(sorted(counts.items())),
        "total": len(findings),
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def parse_json_report(text: str) -> List[Finding]:
    """Inverse of :func:`render_json` (used by tooling and tests)."""
    doc = json.loads(text)
    return [
        Finding(
            path=item["path"],
            line=item["line"],
            col=item["col"],
            rule_id=item["rule"],
            message=item["message"],
        )
        for item in doc["findings"]
    ]
