"""The ``tcast-lint`` command-line interface.

Usage::

    tcast-lint [paths ...] [--format human|json] [--output FILE]
               [--select TCL001,TCL003] [--list-rules] [--explain TCL008]

Paths default to ``src/repro tests`` (the acceptance surface).  Exit
status: 0 when clean, 1 when findings were reported, 2 on usage or I/O
errors (unreadable path, unknown rule id, syntax error in a checked
file).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import textwrap
from typing import List, Optional, Sequence

from repro.lint.engine import (
    Finding,
    Rule,
    examples_from_docstring,
    lint_paths,
)
from repro.lint.reporters import render_human, render_json
from repro.lint.rules import all_rules, rules_by_id

#: Default lint surface when no paths are given.
DEFAULT_PATHS = ("src/repro", "tests")


def _select_rules(spec: Optional[str]) -> List[Rule]:
    """Resolve ``--select`` into rule instances (all rules when unset)."""
    if spec is None:
        return all_rules()
    table = rules_by_id()
    chosen: List[Rule] = []
    for token in spec.split(","):
        rule_id = token.strip().upper()
        if not rule_id:
            continue
        if rule_id not in table:
            raise KeyError(rule_id)
        chosen.append(table[rule_id])
    if not chosen:
        raise KeyError(spec)
    return chosen


def _list_rules() -> str:
    """Tabulate rule id, name and summary for ``--list-rules``."""
    rows = [
        f"{rule.rule_id}  {rule.name:<20} {rule.summary}"
        for rule in all_rules()
    ]
    return "\n".join(rows)


def _explain_rule(rule_id: str) -> str:
    """Render one rule's full docstring plus its Bad/Good examples.

    The examples come from the same ``Bad::``/``Good::`` blocks the test
    suite lints both ways, so what this prints is guaranteed to fire
    (respectively pass) the rule it documents.
    """
    rule = rules_by_id()[rule_id]
    bad, good = examples_from_docstring(rule)
    doc = inspect.cleandoc(rule.__doc__ or "")
    header = f"{rule.rule_id} {rule.name} -- {rule.summary}"
    body = doc.split("Bad::", 1)[0].rstrip()
    return "\n".join(
        [
            header,
            "=" * len(header),
            "",
            body,
            "",
            "Bad (fires the rule):",
            textwrap.indent(bad, "    "),
            "",
            "Good (lints clean):",
            textwrap.indent(good, "    "),
        ]
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        prog="tcast-lint",
        description=(
            "AST-based determinism and parallel-safety linter for the "
            "tcast reproduction (rules TCL001-TCL012)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format printed to stdout (default: human)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write a JSON report to FILE (regardless of --format)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-pragmas",
        action="store_true",
        help="ignore suppression pragmas (audit mode)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help=(
            "print a rule's rationale plus its executable Bad/Good "
            "examples and exit"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.explain:
        rule_id = args.explain.strip().upper()
        if rule_id not in rules_by_id():
            print(f"tcast-lint: unknown rule {rule_id!r}", file=sys.stderr)
            return 2
        print(_explain_rule(rule_id))
        return 0

    try:
        rules = _select_rules(args.select)
    except KeyError as exc:
        print(f"tcast-lint: unknown rule {exc.args[0]!r}", file=sys.stderr)
        return 2

    try:
        findings: List[Finding] = lint_paths(
            args.paths, rules=rules, respect_pragmas=not args.no_pragmas
        )
    except FileNotFoundError as exc:
        print(f"tcast-lint: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"tcast-lint: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_human(findings))
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(render_json(findings) + "\n")
        except OSError as exc:
            print(f"tcast-lint: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
