"""Guard the mypy ratchet: full coverage, monotone shrinkage.

The typing story in ``pyproject.toml`` is a two-list ratchet: every
``repro.*`` module is either on the ignore-errors ratchet list or in
the strict typed core, and the ratchet only ever shrinks.  Both halves
of that invariant have failed silently before -- ``repro.farm.*``
shipped matching *neither* override, so mypy checked it with the
permissive global defaults and nobody noticed.  This guard makes both
failure modes loud:

* **Coverage** -- every module under ``src/repro`` must match at least
  one of the two override lists (mypy pattern semantics:
  ``pkg.*`` matches ``pkg`` and everything below it).
* **Monotonicity** -- the ratchet list must be a subset of the frozen
  baseline below.  Promoting a module (deleting its ratchet entry) is
  always allowed; adding one fails CI.  When you promote, also delete
  the entry from :data:`FROZEN_RATCHET` so the baseline keeps shrinking.

Run it as ``python -m repro.lint.ratchet_guard`` (the CI lint job
does); exit status 0 when the invariants hold, 1 otherwise, 2 on
usage/parse errors.
"""

from __future__ import annotations

import argparse
import sys
import tomllib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: The ratchet as of this guard's introduction.  Entries may only ever
#: be *removed* (module promoted to the typed core); additions fail CI.
FROZEN_RATCHET: frozenset[str] = frozenset(
    {
        "repro.api",
        "repro.core.abns",
        "repro.core.counting",
        "repro.core.estimator",
        "repro.core.exponential",
        "repro.core.interval",
        "repro.core.oracle",
        "repro.core.probabilistic",
        "repro.core.two_t_bins",
        "repro.core.variations",
        "repro.experiments.*",
        "repro.ext.*",
        "repro.mac.*",
        "repro.motes.*",
        "repro.primitives.*",
        "repro.radio.*",
        "repro.viz.*",
        "repro.workloads.*",
    }
)


def discover_modules(src: Path) -> List[str]:
    """Dotted names of every module under ``src`` (``repro.farm.lease``).

    Packages contribute their package name (via ``__init__.py``) as
    well as one entry per submodule, matching what mypy type-checks.
    """
    modules: Set[str] = set()
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(src.parent)
        parts = list(rel.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if parts:
            modules.add(".".join(parts))
    return sorted(modules)


def pattern_matches(pattern: str, module: str) -> bool:
    """mypy override semantics: ``pkg.*`` matches ``pkg`` and below."""
    if pattern.endswith(".*"):
        base = pattern[:-2]
        return module == base or module.startswith(base + ".")
    return module == pattern


def matches_any(patterns: Iterable[str], module: str) -> bool:
    """Whether ``module`` matches any of the override ``patterns``."""
    return any(pattern_matches(p, module) for p in patterns)


def load_override_lists(pyproject: Path) -> Tuple[List[str], List[str]]:
    """The (ratchet, typed-core) module lists from ``pyproject.toml``.

    The ratchet is the override with ``ignore_errors = true``; every
    other override contributes to the typed core.

    Raises:
        ValueError: If the mypy overrides are missing or malformed.
    """
    with pyproject.open("rb") as fh:
        doc = tomllib.load(fh)
    overrides = doc.get("tool", {}).get("mypy", {}).get("overrides")
    if not overrides:
        raise ValueError(f"{pyproject}: no [[tool.mypy.overrides]] tables")
    ratchet: List[str] = []
    core: List[str] = []
    for table in overrides:
        modules = table.get("module", [])
        if isinstance(modules, str):
            modules = [modules]
        if table.get("ignore_errors", False):
            ratchet.extend(modules)
        else:
            core.extend(modules)
    if not ratchet or not core:
        raise ValueError(
            f"{pyproject}: expected both a ratchet (ignore_errors=true) "
            "and a typed-core override"
        )
    return ratchet, core


def check(pyproject: Path, src: Path) -> List[str]:
    """All ratchet-invariant violations (empty when the config is sound)."""
    ratchet, core = load_override_lists(pyproject)
    problems: List[str] = []

    grown = sorted(set(ratchet) - FROZEN_RATCHET)
    for entry in grown:
        problems.append(
            f"ratchet grew: {entry!r} is not in the frozen baseline -- "
            "the ignore_errors list only shrinks; type the module "
            "instead of ratcheting it"
        )

    counts: Dict[str, int] = {"ratchet": 0, "core": 0}
    for module in discover_modules(src):
        in_ratchet = matches_any(ratchet, module)
        in_core = matches_any(core, module)
        if in_core:
            counts["core"] += 1
        elif in_ratchet:
            counts["ratchet"] += 1
        else:
            problems.append(
                f"unlisted module: {module} matches neither the ratchet "
                "nor the typed-core override -- mypy silently checks it "
                "with permissive defaults; add it to the typed core (or, "
                "never preferred, an existing ratchet pattern)"
            )
    if not problems:
        problems_or_ok = (
            f"ratchet-guard: ok ({counts['core']} typed-core, "
            f"{counts['ratchet']} ratcheted modules)"
        )
        print(problems_or_ok)
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="ratchet-guard",
        description=(
            "verify that every repro.* module is covered by exactly "
            "the intended mypy override and that the ignore_errors "
            "ratchet never grows"
        ),
    )
    parser.add_argument(
        "--pyproject",
        type=Path,
        default=Path("pyproject.toml"),
        help="path to pyproject.toml (default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--src",
        type=Path,
        default=Path("src/repro"),
        help="package root to enumerate (default: ./src/repro)",
    )
    args = parser.parse_args(argv)
    if not args.pyproject.is_file():
        print(f"ratchet-guard: no such file: {args.pyproject}", file=sys.stderr)
        return 2
    if not args.src.is_dir():
        print(f"ratchet-guard: no such directory: {args.src}", file=sys.stderr)
        return 2
    try:
        problems = check(args.pyproject, args.src)
    except ValueError as exc:
        print(f"ratchet-guard: {exc}", file=sys.stderr)
        return 2
    for problem in problems:
        print(f"ratchet-guard: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
