"""``tcast-lint``: static determinism & parallel-safety analysis.

A custom AST linter that mechanically enforces the invariants the whole
reproduction rests on -- seeded :class:`repro.sim.rng.RngRegistry`
streams, simulated time inside the emulation, picklable sweep
factories, tolerance-based float comparisons in the analytic package,
and explicit seed plumbing through experiment entry points.

Run it from the repo root (``tcast-lint`` console script or ``python -m
repro.lint.cli``), or import :func:`lint_paths` / :func:`lint_source`
directly from tests.  Rules are documented in DESIGN.md ("Static
analysis") and in each rule class's docstring, which carries an
executable Bad/Good example pair.
"""

from repro.lint.engine import (
    Finding,
    LintContext,
    Rule,
    examples_from_docstring,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.reporters import render_human, render_json
from repro.lint.rules import RULE_CLASSES, all_rules, rules_by_id

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "RULE_CLASSES",
    "all_rules",
    "examples_from_docstring",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_human",
    "render_json",
    "rules_by_id",
]
