"""TCL007: no silently swallowed exceptions in the execution layers."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.lint.engine import Finding, LintContext, Rule

#: Package dirs where swallowing an exception hides real failures: the
#: sweep/supervision harness and the protocol core.
_SCOPE_DIRS = ("experiments", "core")

#: Exception names that catch (close to) everything.
_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(node: Optional[ast.expr]) -> bool:
    """Whether an ``except`` clause type catches Exception-or-wider."""
    if node is None:  # bare ``except:``
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Attribute):  # builtins.Exception
        return node.attr in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_is_broad(elt) for elt in node.elts)
    return False


def _is_noop_body(body: List[ast.stmt]) -> bool:
    """Whether a handler body does nothing with the caught exception."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ``...``
        return False
    return True


class SwallowedException(Rule):
    """TCL007 swallowed-exception: broad handlers must act, not discard.

    Inside ``experiments/`` (the sweep and supervision harness) and
    ``core/`` (the protocol primitives), a broad handler with a no-op
    body turns a worker crash, a corrupt cache entry or a protocol bug
    into silent data loss -- exactly the failures the resilience layer
    exists to surface.  A broad catch must *do* something: count it,
    log it, quarantine the input, requeue the work, or re-raise.  Bare
    ``except:`` is worse still -- it also swallows ``GracefulExit`` and
    ``KeyboardInterrupt``, so a Ctrl-C can no longer stop the run.
    Narrow handlers (``except KeyError: pass``) are out of scope: they
    document an expected, specific condition.

    Bad::

        def load_shard(path):
            try:
                return parse(path)
            except Exception:
                pass

    Good::

        def load_shard(path):
            try:
                return parse(path)
            except Exception:
                _C_CORRUPT.inc()
                quarantine(path)
                return None
    """

    rule_id = "TCL007"
    name = "swallowed-exception"
    summary = (
        "no bare 'except:' and no no-op 'except Exception:' bodies "
        "inside experiments/, core/"
    )
    example_path = "repro/experiments/example.py"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag exception handlers that silently discard failures."""
        if ctx.is_test_file or not ctx.in_scope(*_SCOPE_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' also catches GracefulExit and "
                    "KeyboardInterrupt; name the exceptions (and handle "
                    "them)",
                )
            elif _is_broad(node.type) and _is_noop_body(node.body):
                yield self.finding(
                    ctx,
                    node,
                    "broad exception handler silently discards the "
                    "failure; count/log/quarantine/requeue it or "
                    "re-raise",
                )
