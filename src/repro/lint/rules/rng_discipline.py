"""TCL001: all randomness flows through seeded, named streams."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, LintContext, Rule

#: Members of :mod:`numpy.random` that are part of the seeded
#: generator-object API and therefore allowed everywhere.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Generator-API entry points that fall back to OS entropy when called
#: with no arguments (``Generator`` itself always needs a bit generator,
#: so it cannot be constructed unseeded).
_NP_ENTROPY_WHEN_UNSEEDED = {
    "default_rng",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


class RngDiscipline(Rule):
    """TCL001 rng-discipline: no ambient or legacy randomness sources.

    Every stochastic draw in the reproduction must come from an
    :class:`repro.sim.rng.RngRegistry` stream or a ``Generator`` passed
    in by the caller.  The stdlib :mod:`random` module and numpy's
    legacy global-state API (``np.random.seed`` / ``rand`` / ``randint``
    / ``choice`` ...) are process-global and order-dependent, and an
    unseeded ``np.random.default_rng()`` -- or an unseeded
    ``SeedSequence`` / bit-generator construction -- draws OS entropy;
    any of them silently breaks bit-exact repeats and the
    parallel/serial identity of the sweep engine.  Streams *derived*
    from a seeded source are fine wherever they come from: seeded
    constructions and ``Generator.spawn`` children inherit their
    parent's determinism and are never flagged.  Only ``sim/rng.py``
    (the stream factory itself) is exempt.

    Bad::

        import random
        import numpy as np

        def jitter():
            np.random.seed(4)
            unseeded = np.random.default_rng()
            entropy = np.random.SeedSequence()
            return random.random() + np.random.rand() + unseeded.random()

    Good::

        import numpy as np

        def jitter(rng: np.random.Generator) -> float:
            children = rng.spawn(2)
            return float(sum(c.random() for c in children))
    """

    rule_id = "TCL001"
    name = "rng-discipline"
    summary = (
        "no stdlib random, numpy legacy global randomness, or unseeded "
        "default_rng() outside sim/rng.py"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag stdlib-random imports, legacy numpy.random members and
        unseeded ``default_rng()`` calls."""
        if ctx.is_module("sim", "rng.py"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib 'random' is process-global and "
                            "unseeded; draw from an RngRegistry stream "
                            "or a passed-in numpy Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib 'random' is process-global and unseeded; "
                        "draw from an RngRegistry stream or a passed-in "
                        "numpy Generator instead",
                    )
            elif isinstance(node, ast.Attribute):
                dotted = ctx.aliases.resolve(node)
                if (
                    dotted is not None
                    and dotted.startswith("numpy.random.")
                    and dotted.count(".") == 2
                ):
                    member = dotted.rsplit(".", 1)[1]
                    if member not in _NP_RANDOM_ALLOWED:
                        yield self.finding(
                            ctx,
                            node,
                            f"numpy legacy global randomness "
                            f"'np.random.{member}' mutates shared state; "
                            "use a named RngRegistry stream or a seeded "
                            "Generator",
                        )
            elif isinstance(node, ast.Call):
                dotted = ctx.aliases.resolve(node.func)
                if dotted is None:
                    continue
                # ``from numpy.random import randint`` style: the
                # attribute branch never sees a Name call, so ban the
                # legacy members here too (guarded to Name funcs to
                # avoid double-reporting attribute calls).
                if (
                    isinstance(node.func, ast.Name)
                    and dotted.startswith("numpy.random.")
                    and dotted.count(".") == 2
                    and dotted.rsplit(".", 1)[1] not in _NP_RANDOM_ALLOWED
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"numpy legacy global randomness "
                        f"'{dotted}' mutates shared state; use a named "
                        "RngRegistry stream or a seeded Generator",
                    )
                if (
                    dotted.startswith("numpy.random.")
                    and dotted.count(".") == 2
                    and dotted.rsplit(".", 1)[1] in _NP_ENTROPY_WHEN_UNSEEDED
                    and not node.args
                    and not node.keywords
                ):
                    member = dotted.rsplit(".", 1)[1]
                    yield self.finding(
                        ctx,
                        node,
                        f"unseeded np.random.{member}() draws OS "
                        "entropy; pass a seed (derive_seed), spawn from "
                        "an already-seeded Generator, or accept a "
                        "Generator from the caller",
                    )
