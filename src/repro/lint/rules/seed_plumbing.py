"""TCL006: experiment entry points must expose their seed."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.engine import Finding, LintContext, Rule

#: Parameter names that count as explicit seed/rng plumbing.
_SEED_PARAMS = {"seed", "rng", "root_seed", "cell_seed", "registry", "rngs"}


def _draws_randomness(func: ast.AST, ctx: LintContext) -> bool:
    """Whether a function body creates its own randomness source.

    Besides ``default_rng`` and ``RngRegistry``, stream *derivation* via
    ``SeedSequence`` or ``Generator.spawn`` counts: a runner that spawns
    its own child streams is just as much a randomness producer and needs
    the same seed plumbing so the spawn tree is replayable.
    """
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr == "spawn":
            return True
        dotted = ctx.aliases.resolve(node.func)
        if dotted == "numpy.random.default_rng":
            return True
        terminal = dotted.rsplit(".", 1)[-1] if dotted else None
        if terminal in ("RngRegistry", "SeedSequence"):
            return True
    return False


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
    """All parameter names of a function, positional and keyword-only."""
    args = func.args
    return {
        a.arg
        for a in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        )
    }


class SeedPlumbing(Rule):
    """TCL006 seed-plumbing: randomness in ``experiments/`` is caller-seeded.

    A public experiment runner that builds its own generators,
    registries or spawn-derived stream trees (``SeedSequence``,
    ``Generator.spawn``) but offers no ``seed=`` / ``rng=`` parameter
    cannot be replayed, cached by the result cache (which keys on the
    seed), or swept with common random numbers.  Any module-level public
    function in ``experiments/`` that draws randomness must accept one
    of ``seed`` / ``rng`` / ``root_seed`` / ``cell_seed`` / ``registry``
    / ``rngs``; spawning children from such a parameter is then fine.
    Private helpers (``_``-prefixed) are exempt -- they inherit their
    caller's plumbing.

    Bad::

        import numpy as np

        def run(runs=100):
            rng = np.random.default_rng(2011)
            return [rng.random() for _ in range(runs)]

    Good::

        import numpy as np

        def run(runs=100, *, seed=2011):
            rng = np.random.default_rng(seed)
            return [rng.random() for _ in range(runs)]
    """

    rule_id = "TCL006"
    name = "seed-plumbing"
    summary = (
        "public experiment functions that draw randomness must take an "
        "explicit seed/rng parameter"
    )
    example_path = "repro/experiments/example.py"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag public module-level experiment functions lacking a seed."""
        if ctx.is_test_file or not ctx.in_scope("experiments"):
            return
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if not _draws_randomness(node, ctx):
                continue
            if _param_names(node) & _SEED_PARAMS:
                continue
            yield self.finding(
                ctx,
                node,
                f"public experiment function '{node.name}' draws "
                "randomness but has no seed/rng parameter; thread an "
                "explicit seed so runs are replayable and cacheable",
            )
