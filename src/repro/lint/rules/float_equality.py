"""TCL004: exact equality on floats is meaningless in analytic code."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, LintContext, Rule

#: ``math`` members that return ints (comparing those with ``==`` is fine).
_MATH_INT_RETURNS = {
    "ceil",
    "comb",
    "factorial",
    "floor",
    "gcd",
    "isqrt",
    "lcm",
    "perm",
    "trunc",
}


def _is_floatish(node: ast.expr, ctx: LintContext) -> bool:
    """Heuristic: does this expression obviously produce a float?

    Float literals, true division, ``float(...)`` casts and calls into
    :mod:`math` (minus its integer-returning members) count; everything
    else is assumed exact to keep the rule low-noise.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand, ctx)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left, ctx) or _is_floatish(node.right, ctx)
    if isinstance(node, ast.Call):
        dotted = ctx.aliases.resolve(node.func)
        if dotted == "float":
            return True
        if dotted is not None and dotted.startswith("math."):
            return dotted.rsplit(".", 1)[1] not in _MATH_INT_RETURNS
    if isinstance(node, ast.Attribute):
        dotted = ctx.aliases.resolve(node)
        return dotted in {"math.pi", "math.e", "math.tau", "math.inf", "math.nan"}
    return False


class FloatEquality(Rule):
    """TCL004 float-equality: use tolerances in ``analytic/``.

    The analytic package implements the paper's closed forms (Eqs 2-10)
    in floating point; ``==`` / ``!=`` between float-valued expressions
    there is either vacuously true/false or rounding-dependent, and the
    failure mode is a bound that silently stops guarding anything.
    Compare with :func:`math.isclose` (or an explicit tolerance)
    instead.  Orderings (``<``, ``>=``) and comparisons of ints are
    untouched, as are test files (which assert exact known values on
    purpose).

    Bad::

        import math

        def is_unbiased(b, p):
            return math.log(1.0 - 1.0 / b) * p == -1.0

    Good::

        import math

        def is_unbiased(b, p):
            return math.isclose(math.log(1.0 - 1.0 / b) * p, -1.0)
    """

    rule_id = "TCL004"
    name = "float-equality"
    summary = "no ==/!= on float expressions in analytic/ (use math.isclose)"
    example_path = "repro/analytic/example.py"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag Eq/NotEq comparisons with a float-valued side."""
        if ctx.is_test_file or not ctx.in_scope("analytic"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left, ctx) or _is_floatish(right, ctx):
                    yield self.finding(
                        ctx,
                        node,
                        "exact ==/!= on a float expression is rounding-"
                        "dependent; use math.isclose or an explicit "
                        "tolerance",
                    )
                    break
