"""TCL002: simulated components must not read the host's wall clock."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, LintContext, Rule, SIM_SCOPE_DIRS

#: TCL002 scope: the simulation packages plus the serve stack, whose
#: deadline/CoDel/retry timing must flow through injectable clock
#: objects (``clock: Callable[[], float] = time.monotonic`` default
#: *references* are fine -- only calls are banned) so the resilience
#: machinery stays deterministic under test.  Wall-clock *calls* belong
#: only at CLI boundaries.
_SCOPE_DIRS = SIM_SCOPE_DIRS + ("serve",)

#: Wall-clock callables banned inside simulation-scoped packages.
_BANNED_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallclockInSim(Rule):
    """TCL002 wallclock-in-sim: simulated time only inside sim scope.

    Everything under ``sim/``, ``core/``, ``group_testing/`` and
    ``experiments/`` runs inside the discrete-event emulation, where the
    only admissible clock is the simulator's (``sim.now``).  Reading the
    host clock there makes behaviour depend on machine load -- results
    stop being reproducible and the parallel sweep backend stops being
    bit-identical to the serial one.  ``serve/`` is scoped for the same
    reason one layer up: its deadline, CoDel and retry machinery takes
    injectable clock callables (default-argument *references* to
    ``time.monotonic`` are allowed; only calls are flagged), so the
    resilience tests can drive time deterministically.  Test files are
    exempt (they time and profile legitimately); genuinely wall-clock
    reporting code (the CLI's elapsed-time banner) carries a justified
    pragma.

    Bad::

        import time

        def round_latency(events):
            start = time.perf_counter()
            for event in events:
                event.fire()
            return time.perf_counter() - start

    Good::

        def round_latency(sim, events):
            start = sim.now
            for event in events:
                event.fire()
            return sim.now - start
    """

    rule_id = "TCL002"
    name = "wallclock-in-sim"
    summary = (
        "no time.time()/perf_counter()/datetime.now() inside sim/, "
        "core/, group_testing/, experiments/, serve/"
    )
    example_path = "repro/sim/example.py"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag wall-clock calls in simulation-scoped, non-test files."""
        if ctx.is_test_file or not ctx.in_scope(*_SCOPE_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.aliases.resolve(node.func)
            if dotted in _BANNED_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call '{dotted}' inside simulation scope; "
                    "use the simulator clock (sim.now) so results stay "
                    "machine-independent",
                )
