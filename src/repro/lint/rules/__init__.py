"""The ``tcast-lint`` rule registry.

One module per rule; :func:`all_rules` instantiates them in rule-id
order.  Every rule documents a minimal ``Bad::`` / ``Good::`` pair in its
class docstring, which the test suite lints both ways.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lint.engine import Rule
from repro.lint.rules.rng_discipline import RngDiscipline
from repro.lint.rules.wallclock import WallclockInSim
from repro.lint.rules.pickle_safety import PickleSafety
from repro.lint.rules.float_equality import FloatEquality
from repro.lint.rules.mutable_defaults import MutableDefaultArg
from repro.lint.rules.seed_plumbing import SeedPlumbing
from repro.lint.rules.swallowed import SwallowedException
from repro.lint.rules.rng_aliasing import RngStreamAliasing
from repro.lint.rules.nondet_iteration import NondeterministicIteration
from repro.lint.rules.fork_safety import ForkUnsafeGlobal
from repro.lint.rules.atomic_write import NonAtomicWrite
from repro.lint.rules.lease_protocol import LeaseProtocol

#: Rule classes in rule-id order.
RULE_CLASSES = (
    RngDiscipline,
    WallclockInSim,
    PickleSafety,
    FloatEquality,
    MutableDefaultArg,
    SeedPlumbing,
    SwallowedException,
    RngStreamAliasing,
    NondeterministicIteration,
    ForkUnsafeGlobal,
    NonAtomicWrite,
    LeaseProtocol,
)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in rule-id order."""
    return [cls() for cls in RULE_CLASSES]


def rules_by_id() -> Dict[str, Rule]:
    """Map ``TCLxxx`` -> rule instance for lookup-style access."""
    return {rule.rule_id: rule for rule in all_rules()}
