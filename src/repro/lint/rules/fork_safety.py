"""TCL010: code a worker process may run must not write module globals."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.dataflow import CallGraph, terminal_name
from repro.lint.engine import Finding, LintContext, Rule

#: Functions whose bodies execute inside worker processes.  Everything
#: reachable from one of these (intra-module call graph) inherits the
#: constraint.  ``farm/worker.py`` is worker-side in its entirety.
_ENTRY_NAMES = {"_run_cell_vectorized", "_run_sweep_cell", "_serve"}

#: In-place mutation methods of the builtin collections (+ deque).
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

#: :mod:`repro.obs` registry methods that rewrite registry state (the
#: counters' ``inc``/``observe`` are process-safe by design and allowed).
_REGISTRY_MUTATORS = {"clear", "merge", "reset", "set_enabled"}

#: Constructor calls whose result is module-level mutable state.
_MUTABLE_CONSTRUCTORS = {
    "Counter",
    "OrderedDict",
    "defaultdict",
    "deque",
    "dict",
    "list",
    "set",
}


def _root_name(expr: ast.expr) -> Optional[str]:
    """The base ``Name`` of a ``Subscript``/``Attribute`` chain."""
    while isinstance(expr, (ast.Subscript, ast.Attribute)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """All nodes of a function body, not descending into nested defs.

    Nested named functions are separate call-graph nodes and get their
    own walk when reachable; lambdas are not, so they stay included.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class ForkUnsafeGlobal(Rule):
    """TCL010 fork-unsafe-global: workers may not mutate module state.

    The sweep pool and the farm fork (or spawn) worker processes; a
    write to module-level mutable state inside worker-side code mutates
    a *copy* that the parent never sees -- or, under ``fork``, state
    whose visibility depends on fork timing.  Either way the result
    depends on the execution backend, which is exactly what the
    serial/parallel identity gate forbids.  The rule builds the
    module's call graph, closes over the worker entry points
    (``_run_sweep_cell``, ``_run_cell_vectorized``, ``FarmWorker._serve``,
    and every function in ``farm/worker.py``), and inside that region
    flags ``global`` rebindings, subscript/attribute stores and mutator
    method calls on module-level collections, and :mod:`repro.obs`
    registry rewrites (``set_enabled``/``reset``/``clear``/``merge``).
    Counter ``inc``/``observe`` calls are process-safe by design and
    never flagged.  Worker-side registry *synchronisation* is the one
    legitimate pattern; such sites carry an allowlisting pragma with a
    justification, audited in DESIGN.md section 15.

    Bad::

        _SEEN = {}

        def _run_sweep_cell(task):
            _SEEN[task.cell] = task.seed
            return task.seed

    Good::

        def _run_sweep_cell(task):
            seen = {}
            seen[task.cell] = task.seed
            return task.seed
    """

    rule_id = "TCL010"
    name = "fork-unsafe-global"
    summary = (
        "no module-level mutable state written in code reachable from "
        "worker entry points"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Close over worker entry points and police their writes."""
        if ctx.is_test_file:
            return
        graph = CallGraph.build(ctx.tree)
        if ctx.is_module("farm", "worker.py"):
            entries: Set[str] = set(graph.functions)
        else:
            entries = _ENTRY_NAMES
        reachable = graph.reachable(entries)
        if not reachable:
            return
        mutables, registries = self._module_state(ctx.tree)
        for name, func in graph.nodes_of(sorted(reachable)):
            yield from self._check_function(ctx, name, func, mutables, registries)

    @staticmethod
    def _module_state(tree: ast.Module) -> tuple[Set[str], Set[str]]:
        """Names of module-level mutable collections and obs registries."""
        mutables: Set[str] = set()
        registries: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            names = {t.id for t in targets if isinstance(t, ast.Name)}
            if not names:
                continue
            if isinstance(value, (ast.Dict, ast.DictComp, ast.List,
                                  ast.ListComp, ast.Set, ast.SetComp)):
                mutables |= names
            elif isinstance(value, ast.Call):
                terminal = terminal_name(value.func)
                if terminal in _MUTABLE_CONSTRUCTORS:
                    mutables |= names
                elif terminal == "get_registry":
                    registries |= names
        return mutables, registries

    def _check_function(
        self,
        ctx: LintContext,
        name: str,
        func: ast.AST,
        mutables: Set[str],
        registries: Set[str],
    ) -> Iterator[Finding]:
        """Flag module-state writes in one worker-reachable function."""
        nodes = list(_own_nodes(func))
        local_registries = set(registries)
        stored: Set[str] = set()
        for node in nodes:
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                stored.add(node.id)
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and terminal_name(node.value.func) == "get_registry"
            ):
                local_registries |= {
                    t.id for t in node.targets if isinstance(t, ast.Name)
                }
        for node in nodes:
            if isinstance(node, ast.Global):
                hot = [n for n in node.names if n in stored]
                if hot:
                    yield self.finding(
                        ctx,
                        node,
                        f"'{name}' is reachable from a worker entry point "
                        f"and rebinds module global(s) {', '.join(hot)}; "
                        "the write lands in the worker's copy of the "
                        "module and the result depends on the execution "
                        "backend -- return the value instead",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _root_name(target)
                        if root in mutables:
                            yield self._mutation(ctx, name, root, node)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, (ast.Subscript, ast.Attribute)):
                    root = _root_name(node.target)
                    if root in mutables:
                        yield self._mutation(ctx, name, root, node)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                if not isinstance(receiver, ast.Name):
                    continue
                if receiver.id in mutables and node.func.attr in _MUTATORS:
                    yield self._mutation(ctx, name, receiver.id, node)
                elif (
                    receiver.id in local_registries
                    and node.func.attr in _REGISTRY_MUTATORS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"'{name}' is reachable from a worker entry point "
                        f"and rewrites obs registry state via "
                        f"'{receiver.id}.{node.func.attr}()'; registry "
                        "rewrites in worker processes diverge from the "
                        "parent's view -- if this is deliberate worker-"
                        "side sync, allowlist it with a justified pragma",
                    )

    def _mutation(
        self, ctx: LintContext, func_name: str, root: str, node: ast.AST
    ) -> Finding:
        return self.finding(
            ctx,
            node,
            f"'{func_name}' is reachable from a worker entry point and "
            f"mutates module-level '{root}'; the mutation is invisible "
            "to the parent process (or fork-timing dependent), so "
            "results differ across backends -- pass state in and return "
            "it instead",
        )
