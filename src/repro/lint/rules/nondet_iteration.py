"""TCL009: order every unordered scan before it feeds an output."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.lint.dataflow import FlowVisitor, terminal_name
from repro.lint.engine import Finding, LintContext, Rule

#: Stdlib calls that yield directory entries in filesystem order.
_UNORDERED_DOTTED = {
    "glob.glob",
    "glob.iglob",
    "os.listdir",
    "os.scandir",
}

#: ``pathlib.Path`` methods with the same filesystem-order caveat.
_UNORDERED_METHODS = {"glob", "iterdir", "rglob"}

#: Constructors whose result iterates in hash order.
_SET_CONSTRUCTORS = {"set", "frozenset"}

#: Calls that materialise their argument's iteration order.
_ORDER_SINKS = {"enumerate", "list", "tuple"}

#: Packages whose outputs are replayed byte-for-byte (CSVs, journals,
#: lease grants, cache manifests); unordered iteration there turns into
#: row order, grant order, or journal order.
_SCOPE_DIRS = (
    "core",
    "experiments",
    "farm",
    "group_testing",
    "sim",
    "workloads",
)


def _is_wildcard_target(target: ast.expr) -> bool:
    """Whether a loop target is ``_`` (value unbound, order irrelevant)."""
    return isinstance(target, ast.Name) and target.id == "_"


class _IterFlow(FlowVisitor):
    """Tag unordered producers and flag the places they get iterated."""

    def __init__(self, rule: "NondeterministicIteration", ctx: LintContext) -> None:
        super().__init__(ctx)
        self.rule = rule
        self.findings: List[Finding] = []

    def classify(self, value: ast.expr) -> Optional[str]:
        """Directory scans and set constructions tag ``"unordered"``."""
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "unordered"
        if isinstance(value, ast.Call):
            dotted = self.ctx.aliases.resolve(value.func)
            if dotted in _UNORDERED_DOTTED or dotted in _SET_CONSTRUCTORS:
                return "unordered"
            if (
                isinstance(value.func, ast.Attribute)
                and value.func.attr in _UNORDERED_METHODS
            ):
                return "unordered"
        return None

    def _is_unordered(self, expr: ast.expr) -> bool:
        """Whether ``expr`` evaluates to an unordered iterable *here*."""
        if isinstance(expr, ast.Name):
            tag = self.lookup(expr.id)
            return tag is not None and tag.kind == "unordered"
        return self.classify(expr) is not None

    def _flag(self, expr: ast.expr) -> None:
        self.findings.append(
            self.rule.finding(
                self.ctx,
                expr,
                "iterating an unordered source (directory scan or set) "
                "in determinism-critical code; filesystem and hash order "
                "leak into CSV rows, journal entries, and lease grants, "
                "breaking byte-identical replay -- wrap the source in "
                "sorted(...)",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        """Flag ``for x in <unordered>`` unless the target is ``_``."""
        if not _is_wildcard_target(node.target) and self._is_unordered(node.iter):
            self._flag(node.iter)
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", ()):
            if not _is_wildcard_target(gen.target) and self._is_unordered(gen.iter):
                self._flag(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        """Comprehensions iterate too."""
        self._check_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        """Set comprehensions over unordered sources still iterate them."""
        self._check_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        """Dict comprehensions fix insertion order from iteration order."""
        self._check_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        """Generator expressions iterate lazily but in the same order."""
        self._check_comprehension(node)

    def on_call(self, node: ast.Call) -> None:
        """``list()/tuple()/enumerate()`` materialise iteration order."""
        if (
            terminal_name(node.func) in _ORDER_SINKS
            and node.args
            and self._is_unordered(node.args[0])
        ):
            self._flag(node.args[0])


class NondeterministicIteration(Rule):
    """TCL009 nondeterministic-iteration: sort scans before iterating.

    ``os.listdir`` / ``glob`` / ``Path.glob`` yield entries in
    filesystem order and sets iterate in hash order; neither is stable
    across machines, filesystems, or PYTHONHASHSEED.  In the packages
    whose outputs are replayed byte-for-byte (sim, core, group_testing,
    experiments, farm, workloads) that order leaks straight into CSV
    rows, journal replay, cache manifests, and farm lease grants -- the
    exact guarantees the chaos and parity suites pin.  The rule tracks
    unordered producers through assignments and flags ``for`` loops,
    comprehensions, and ``list``/``tuple``/``enumerate`` calls that
    consume one; iterating into ``_`` (pure counting) is exempt, as are
    test files.  Plain dicts are not flagged: insertion order is
    deterministic when the insertions are.

    Bad::

        def shard_names(spool_dir):
            names = []
            for path in spool_dir.glob("*.task"):
                names.append(path.name)
            return names

    Good::

        def shard_names(spool_dir):
            names = []
            for path in sorted(spool_dir.glob("*.task")):
                names.append(path.name)
            return names
    """

    rule_id = "TCL009"
    name = "nondeterministic-iteration"
    summary = (
        "no iterating directory scans or sets without sorted() in "
        "replay-critical packages"
    )
    example_path = "repro/farm/example.py"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Run the unordered-source flow visitor over in-scope files."""
        if ctx.is_test_file or not ctx.in_scope(*_SCOPE_DIRS):
            return
        visitor = _IterFlow(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
