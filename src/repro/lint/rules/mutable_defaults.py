"""TCL005: the classic mutable-default-argument trap."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.lint.engine import Finding, LintContext, Rule

#: No-argument constructor calls that build fresh mutable containers.
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


def _mutable_kind(node: ast.expr) -> Optional[str]:
    """Describe the mutable default, or ``None`` if the default is safe."""
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in _MUTABLE_CALLS:
            return f"{node.func.id}() call"
    return None


class MutableDefaultArg(Rule):
    """TCL005 mutable-default-arg: defaults are evaluated once.

    A mutable default (``[]``, ``{}``, ``set()`` ...) is created a
    single time at ``def`` time and then shared by every call -- state
    leaks across invocations, which in this codebase means state leaking
    across *runs* of an experiment and breaking run-independence.  Use
    ``None`` and materialise inside the body.

    Bad::

        def collect(sample, history=[]):
            history.append(sample)
            return history

    Good::

        def collect(sample, history=None):
            if history is None:
                history = []
            history.append(sample)
            return history
    """

    rule_id = "TCL005"
    name = "mutable-default-arg"
    summary = "no mutable default argument values (lists/dicts/sets)"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag mutable defaults on every function/lambda signature."""
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults: List[ast.expr] = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                kind = _mutable_kind(default)
                if kind is not None:
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default ({kind}) is shared across "
                        "calls; default to None and build it in the "
                        "body",
                    )
