"""TCL011: durable state is written through atomicio, never bare open."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding, LintContext, Rule

#: ``pathlib.Path`` convenience writers (truncate-then-write).
_WRITE_SINKS = {"write_bytes", "write_text"}

#: ``experiments/`` modules that persist durable state (cache entries,
#: shard journals, CLI result files).  ``atomicio.py`` itself is the
#: blessed implementation and is deliberately absent.
_EXPERIMENTS_MODULES = ("cache.py", "cli.py", "journal.py", "resilience.py")


def open_write_mode(node: ast.Call) -> Optional[str]:
    """The literal write/create mode of an ``open()``-style call.

    Handles both builtin ``open(path, "w")`` and ``Path.open("w")``;
    returns ``None`` for reads, appends, non-literal modes, and calls
    that are not ``open`` at all.  Shared with TCL012.
    """
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        mode_pos = 1
    elif isinstance(func, ast.Attribute) and func.attr == "open":
        mode_pos = 0
    else:
        return None
    mode: Optional[ast.expr] = None
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None and len(node.args) > mode_pos:
        mode = node.args[mode_pos]
    if (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and any(c in mode.value for c in "wx+")
    ):
        return mode.value
    return None


class NonAtomicWrite(Rule):
    """TCL011 non-atomic-write: spool/cache/result files via atomicio.

    The crash-safety story (``--resume``, farm SIGKILL recovery, cache
    quarantine) assumes every durable file appears *atomically*: a
    reader sees either the complete old content or the complete new
    content, never a truncated half-write.  ``open(path, "w")``,
    ``Path.write_text``/``write_bytes`` and ``os.rename`` (which
    fails across pre-existing targets on some platforms) all violate
    that; :mod:`repro.experiments.atomicio` provides the
    tmp-file-plus-``os.replace`` helpers that don't.  The rule covers
    ``farm/`` plus the ``experiments/`` modules that persist durable
    state (cache, journal, CLI outputs); append-mode opens are exempt
    (journal appends are single-``write`` framed records), as are test
    files and ``atomicio.py`` itself.

    Bad::

        def publish(result_path, payload):
            with open(result_path, "w") as fh:
                fh.write(payload)

    Good::

        from repro.experiments.atomicio import atomic_write_text

        def publish(result_path, payload):
            atomic_write_text(result_path, payload)
    """

    rule_id = "TCL011"
    name = "non-atomic-write"
    summary = (
        "no open('w')/write_text/os.rename for durable farm or "
        "experiments state; use atomicio"
    )
    example_path = "repro/farm/example.py"

    def _in_scope(self, ctx: LintContext) -> bool:
        if ctx.is_test_file:
            return False
        if ctx.in_scope("farm"):
            return True
        return any(
            ctx.is_module("experiments", module)
            for module in _EXPERIMENTS_MODULES
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag truncating writes and renames in durable-state modules."""
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = open_write_mode(node)
            if mode is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"open(..., {mode!r}) truncates in place; a crash "
                    "mid-write leaves a torn file that --resume and the "
                    "farm recovery path would then read -- use "
                    "repro.experiments.atomicio.atomic_write_text/bytes",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITE_SINKS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"Path.{node.func.attr}() truncates in place; a "
                    "crash mid-write leaves a torn file -- use "
                    "repro.experiments.atomicio.atomic_write_text/bytes",
                )
            elif ctx.aliases.resolve(node.func) == "os.rename":
                yield self.finding(
                    ctx,
                    node,
                    "os.rename is not atomic-replace on every platform "
                    "and fails over existing targets on Windows; use "
                    "os.replace (what atomicio does) or an atomicio "
                    "helper",
                )
