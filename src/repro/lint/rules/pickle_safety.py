"""TCL003: factories crossing the process-pool boundary must pickle."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro.lint.engine import Finding, LintContext, Rule

#: Callables whose arguments are shipped to worker processes (or stored
#: in specs that later are).  Matched on the terminal name, so both
#: ``engine.query_curve(...)`` and ``query_curve(...)`` hit.
BOUNDARY_CALLS = {
    "AlgorithmSpec",
    "ModelSpec",
    "RegistryFactory",
    "query_curve",
    "baseline_curve",
    "mean_query_curve",
    "submit",
}

#: How a name bound in an enclosing scope poisons pickling.
_KIND_MESSAGES = {
    "lambda": "a lambda",
    "local-def": "a function defined inside another function",
    "local-class": "a class defined inside a function",
}


class _ScopeVisitor(ast.NodeVisitor):
    """Track lambda bindings and function-local defs along the scope stack."""

    def __init__(self, rule: "PickleSafety", ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []
        #: One dict per open scope: name -> unpicklable kind.
        self.scopes: List[Dict[str, str]] = [{}]

    # -- scope bookkeeping ------------------------------------------------

    def _lookup(self, name: str) -> str | None:
        for scope in reversed(self.scopes):
            kind = scope.get(name)
            if kind is not None:
                return kind
        return None

    def _visit_function(self, node: ast.AST) -> None:
        self.scopes.append({})
        self.generic_visit(node)
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Record nested defs as unpicklable, then open a child scope."""
        if len(self.scopes) > 1:
            self.scopes[-1][node.name] = "local-def"
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Same treatment as synchronous defs."""
        if len(self.scopes) > 1:
            self.scopes[-1][node.name] = "local-def"
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Record function-local classes as unpicklable."""
        if len(self.scopes) > 1:
            self.scopes[-1][node.name] = "local-class"
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        """Track ``name = lambda ...`` bindings (unpicklable anywhere)."""
        if isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.scopes[-1][target.id] = "lambda"
        self.generic_visit(node)

    # -- the actual check -------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        """Flag unpicklable values passed at a pool/spec boundary."""
        func = node.func
        terminal = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if terminal in BOUNDARY_CALLS:
            values = [arg for arg in node.args] + [
                kw.value for kw in node.keywords
            ]
            for value in values:
                if isinstance(value, ast.Lambda):
                    self.findings.append(
                        self.rule.finding(
                            self.ctx,
                            value,
                            f"lambda passed into {terminal}(): lambdas "
                            "don't pickle, so the sweep pool silently "
                            "falls back to serial; use a module-level "
                            "factory (repro.api.algorithm_factory / "
                            "ModelSpec)",
                        )
                    )
                elif isinstance(value, ast.Name):
                    kind = self._lookup(value.id)
                    if kind is not None:
                        self.findings.append(
                            self.rule.finding(
                                self.ctx,
                                value,
                                f"{_KIND_MESSAGES[kind]} "
                                f"('{value.id}') passed into "
                                f"{terminal}(): it won't pickle, so the "
                                "sweep pool silently falls back to "
                                "serial; hoist it to module level",
                            )
                        )
        self.generic_visit(node)


class PickleSafety(Rule):
    """TCL003 pickle-safety: no closures into specs or the sweep pool.

    The process-pool backend of :class:`SweepEngine` ships factories to
    worker processes with :mod:`pickle`.  Lambdas, functions defined
    inside other functions, and function-local classes cannot be
    pickled, so passing one into ``AlgorithmSpec`` / ``ModelSpec`` /
    ``RegistryFactory`` or a ``*_curve`` / ``submit`` call does not
    crash -- it silently degrades the sweep to serial execution, which
    is exactly the kind of quiet performance bug this linter exists to
    catch.

    Bad::

        def run(engine, xs, model_factory):
            return engine.query_curve(
                "2tbins", xs, lambda x: TwoTBins(), model_factory
            )

    Good::

        def run(engine, xs, model_factory):
            factory = algorithm_factory("2tbins")
            return engine.query_curve("2tbins", xs, factory, model_factory)
    """

    rule_id = "TCL003"
    name = "pickle-safety"
    summary = (
        "no lambdas/closures/local classes into AlgorithmSpec, ModelSpec, "
        "RegistryFactory, or SweepEngine submissions"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Run the scope-tracking visitor and yield its findings."""
        visitor = _ScopeVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
