"""TCL008: one RNG stream, one consumer -- no aliasing, no capture."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.dataflow import FlowVisitor, Tag, terminal_name
from repro.lint.engine import Finding, LintContext, Rule
from repro.lint.rules.pickle_safety import BOUNDARY_CALLS

#: Constructions whose *result* is a seeded stream (full dotted paths).
_STREAM_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
}

#: Method names whose result is a derived stream regardless of receiver
#: (``Generator.spawn`` children, ``RngRegistry.stream`` streams).
_STREAM_METHODS = {"spawn", "stream"}

#: Calls whose arguments are shipped to worker processes; a closure
#: capturing a stream must not cross one of these (the worker and the
#: submitter would then consume the *same* stream in different orders).
#: ``write_shard`` is the farm spool's descriptor writer.
_SHIP_CALLS = BOUNDARY_CALLS | {"write_shard"}

#: Parameter names conventionally carrying a caller-owned stream.
_STREAM_PARAM_NAMES = {"rng"}


class _StreamFlow(FlowVisitor):
    """Track stream bindings, aliases, per-call fan-out and captures."""

    def __init__(self, rule: "RngStreamAliasing", ctx: LintContext) -> None:
        super().__init__(ctx)
        self.rule = rule
        self.findings: List[Finding] = []
        #: Loads of stream-tagged names: name -> [(line, origin_id)].
        self.uses: Dict[str, List[Tuple[int, int]]] = {}
        #: ``target = source`` copies of stream tags, in source order.
        self.aliases: List[Tuple[str, str, int, ast.Assign]] = []
        #: Stream names captured by each open function scope.
        self._captured: Dict[int, Set[str]] = {}
        #: Closed nested functions with captures: def name -> node.
        self._capturing_defs: Dict[str, ast.AST] = {}
        #: Lambda nodes that captured a stream.
        self._capturing_lambdas: Set[int] = set()

    # -- classification ----------------------------------------------------

    def classify(self, value: ast.expr) -> Optional[str]:
        """Seeded-stream constructions and derivations tag ``"stream"``."""
        if not isinstance(value, ast.Call):
            return None
        dotted = self.ctx.aliases.resolve(value.func)
        if dotted in _STREAM_CONSTRUCTORS:
            return "stream"
        if (
            isinstance(value.func, ast.Attribute)
            and value.func.attr in _STREAM_METHODS
        ):
            return "stream"
        return None

    def classify_param(self, arg: ast.arg) -> Optional[str]:
        """``rng`` params and ``Generator``-annotated params are streams."""
        if arg.arg in _STREAM_PARAM_NAMES:
            return "stream"
        if arg.annotation is not None:
            dotted = self.ctx.aliases.resolve(arg.annotation)
            if dotted is not None and dotted.endswith("Generator"):
                return "stream"
        return None

    # -- flow events -------------------------------------------------------

    def on_alias(
        self, name: str, source: str, tag: Tag, node: ast.Assign
    ) -> None:
        """Record ``name = source`` copies of stream bindings."""
        if tag.kind == "stream":
            self.aliases.append((source, name, node.lineno, node))

    def on_use(self, name: str, tag: Tag, node: ast.Name) -> None:
        """Record stream loads; deeper-scope loads are captures."""
        if tag.kind != "stream":
            return
        self.uses.setdefault(name, []).append((node.lineno, tag.origin_id))
        if self.func_stack and tag.depth < self.depth:
            owner = self.func_stack[-1]
            self._captured.setdefault(id(owner), set()).add(name)

    def on_function_exit(self, node: ast.AST) -> None:
        """Remember which closed functions captured a stream."""
        captured = self._captured.pop(id(node), None)
        if not captured:
            return
        if isinstance(node, ast.Lambda):
            self._capturing_lambdas.add(id(node))
        else:
            self._capturing_defs[getattr(node, "name", "")] = node

    def on_call(self, node: ast.Call) -> None:
        """Flag same-stream fan-out and captures shipped to workers."""
        values = list(node.args) + [kw.value for kw in node.keywords]
        seen_origins: Dict[int, str] = {}
        for value in values:
            if not isinstance(value, ast.Name):
                continue
            tag = self.lookup(value.id)
            if tag is None or tag.kind != "stream":
                continue
            prior = seen_origins.get(tag.origin_id)
            if prior is not None:
                self.findings.append(
                    self.rule.finding(
                        self.ctx,
                        node,
                        f"the same RNG stream reaches this call twice "
                        f"('{prior}' and '{value.id}' share one "
                        "generator); every consumer draws from the one "
                        "state, so call order changes results -- spawn "
                        "independent child streams instead",
                    )
                )
            else:
                seen_origins[tag.origin_id] = value.id
        if terminal_name(node.func) not in _SHIP_CALLS:
            return
        for value in values:
            if (
                isinstance(value, ast.Lambda)
                and id(value) in self._capturing_lambdas
            ):
                self.findings.append(self._ship_finding(value, "lambda"))
            elif (
                isinstance(value, ast.Name)
                and value.id in self._capturing_defs
            ):
                self.findings.append(
                    self._ship_finding(value, f"function '{value.id}'")
                )

    def _ship_finding(self, node: ast.AST, what: str) -> Finding:
        return self.rule.finding(
            self.ctx,
            node,
            f"{what} captures an enclosing RNG stream and is shipped "
            "across a worker boundary; the submitter and the workers "
            "would consume one stream in nondeterministic order, "
            "breaking serial/parallel identity -- derive the stream "
            "inside the shard from (seed, label, x, run) instead",
        )

    # -- post-pass ---------------------------------------------------------

    def alias_findings(self) -> Iterator[Finding]:
        """Aliases where both names keep drawing from the one stream."""
        for source, target, line, node in self.aliases:
            source_live = any(
                use_line > line
                for use_line, _ in self.uses.get(source, ())
            )
            target_live = any(
                use_line > line
                for use_line, _ in self.uses.get(target, ())
            )
            if source_live and target_live:
                yield self.rule.finding(
                    self.ctx,
                    node,
                    f"'{target} = {source}' aliases an RNG stream that "
                    "both names keep consuming; two live names for one "
                    "generator state make draw order (and therefore "
                    "replay) depend on code path -- use "
                    f"'{source}.spawn(1)[0]' or pass {source} along "
                    "without keeping a second handle",
                )


class RngStreamAliasing(Rule):
    """TCL008 rng-stream-aliasing: every stream has exactly one consumer.

    The repo's replay guarantees (serial vs ``--jobs N``, ``--resume``,
    farm recovery, vectorized-vs-scalar parity) all rest on streams
    being derived statelessly and consumed by exactly one owner.  This
    flow-sensitive rule tracks ``Generator``-producing expressions
    (``default_rng``, ``.spawn``, ``RngRegistry.stream``) through
    assignments and flags the three aliasing shapes that silently break
    bit-identical replay: a second live name for one stream, the same
    stream passed twice into one call, and a closure that captures a
    stream and crosses a worker boundary (``submit`` / ``write_shard``
    / spec factories).  Test files are exempt.

    Bad::

        import numpy as np

        def jitter(seed):
            rng = np.random.default_rng(seed)
            alias = rng
            return rng.random() + alias.random()

    Good::

        import numpy as np

        def jitter(seed):
            first, second = np.random.default_rng(seed).spawn(2)
            return first.random() + second.random()
    """

    rule_id = "TCL008"
    name = "rng-stream-aliasing"
    summary = (
        "no second live name, double pass, or worker-shipped closure "
        "over one RNG stream"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Run the stream-flow visitor and both finding passes."""
        if ctx.is_test_file or ctx.is_module("sim", "rng.py"):
            return
        visitor = _StreamFlow(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
        yield from visitor.alias_findings()
