"""TCL012: lease files are created by the coordinator, nobody else."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.lint.dataflow import FlowVisitor, terminal_name
from repro.lint.engine import Finding, LintContext, Rule
from repro.lint.rules.atomic_write import open_write_mode

#: ``Path`` methods that create or rewrite a file when the receiver is
#: a lease path.  ``Path.touch`` *creates* the file if missing -- the
#: heartbeat helper ``repro.farm.lease.touch`` (plain ``os.utime``)
#: deliberately does not, which is why only the method form is banned.
_CREATE_METHODS = {"touch", "write_bytes", "write_text"}

#: Module-level writers that would mint a lease file if handed its path.
_WRITE_HELPERS = {"atomic_write_bytes", "atomic_write_text"}


class _LeaseFlow(FlowVisitor):
    """Tag lease-path expressions and flag create-capable operations."""

    def __init__(self, rule: "LeaseProtocol", ctx: LintContext) -> None:
        super().__init__(ctx)
        self.rule = rule
        self.findings: List[Finding] = []

    def classify(self, value: ast.expr) -> Optional[str]:
        """``spool.lease_path(...)`` and ``leases_dir / ...`` are leases."""
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "lease_path"
        ):
            return "lease-path"
        if (
            isinstance(value, ast.BinOp)
            and isinstance(value.op, ast.Div)
            and isinstance(value.left, ast.Attribute)
            and value.left.attr == "leases_dir"
        ):
            return "lease-path"
        return None

    def _is_lease(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            tag = self.lookup(expr.id)
            return tag is not None and tag.kind == "lease-path"
        return self.classify(expr) is not None

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.ctx,
                node,
                f"{what} outside coordinator.py; lease files are the "
                "farm's mutual-exclusion tokens and only the "
                "coordinator may create or rewrite them (workers may "
                "only heartbeat via repro.farm.lease.touch, i.e. "
                "os.utime) -- creating one elsewhere lets two workers "
                "hold the same shard",
            )
        )

    def on_call(self, node: ast.Call) -> None:
        """Flag lease creation and create-capable writes on lease paths."""
        terminal = terminal_name(node.func)
        if terminal == "grant_lease":
            self._flag(node, "grant_lease() called")
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _CREATE_METHODS
            and self._is_lease(node.func.value)
        ):
            self._flag(node, f"Path.{node.func.attr}() on a lease path")
            return
        values = list(node.args) + [kw.value for kw in node.keywords]
        if terminal in _WRITE_HELPERS and any(self._is_lease(v) for v in values):
            self._flag(node, f"{terminal}() given a lease path")
            return
        if open_write_mode(node) is not None:
            func = node.func
            target: Optional[ast.expr]
            if isinstance(func, ast.Attribute):
                target = func.value
            else:
                target = node.args[0] if node.args else None
            if target is not None and self._is_lease(target):
                self._flag(node, "open-for-write on a lease path")


class LeaseProtocol(Rule):
    """TCL012 lease-protocol: only the coordinator mints lease files.

    The farm's exclusivity invariant -- each shard has at most one
    worker -- is carried entirely by ``leases/*.lease`` files: the
    coordinator creates one to grant a shard, the owning worker
    heartbeats it with ``os.utime``, and reclamation compares mtimes.
    Any other code path that creates or rewrites a lease file forges a
    grant, which is exactly the split-brain the chaos suite's SIGKILL
    tests guard against.  This rule tracks lease-path expressions
    (``spool.lease_path(...)``, ``spool.leases_dir / name``) through
    assignments in ``farm/`` modules other than ``coordinator.py`` and
    ``lease.py`` (the authority and its primitive), and flags
    ``grant_lease`` calls, ``Path.touch``/``write_text``/``write_bytes``
    on lease paths, atomicio writers handed a lease path, and
    open-for-write on one.  Deleting a lease (``unlink``) stays legal:
    releasing is how workers hand shards back.

    Bad::

        def steal(spool, shard_id):
            path = spool.lease_path(shard_id)
            path.touch()

    Good::

        from repro.farm import lease as leasemod

        def heartbeat(spool, shard_id):
            path = spool.lease_path(shard_id)
            leasemod.touch(path)
    """

    rule_id = "TCL012"
    name = "lease-protocol"
    summary = (
        "lease files created only by farm/coordinator.py; workers "
        "heartbeat via lease.touch"
    )
    example_path = "repro/farm/helper.py"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Run the lease-path flow visitor over non-authority farm files."""
        if (
            ctx.is_test_file
            or not ctx.in_scope("farm")
            or ctx.is_module("farm", "coordinator.py")
            or ctx.is_module("farm", "lease.py")
        ):
            return
        visitor = _LeaseFlow(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
