"""Flow-sensitive building blocks for the TCL008-TCL012 rules.

The per-node AST walk of PR 3 catches *syntactic* violations (a banned
call, a mutable default).  The bug classes that actually threaten the
repo's replay guarantees -- RNG stream aliasing, unordered directory
scans feeding grant order, worker-side mutation of module globals,
non-atomic spool writes -- are *flow* properties: they depend on where a
value came from and where it goes next.  This module provides the three
pieces the flow-sensitive rules share:

* :class:`FlowVisitor` -- a scope-aware def-use tracker.  Subclasses
  classify right-hand sides into **origin tags** (``"stream"``,
  ``"unordered"``, ``"lease-path"``, ...); the visitor then propagates
  tags through plain assignments (``alias = rng``), tuple unpacking,
  and kills them on reassignment, so a rule can ask "what does this
  name hold *here*?" instead of pattern-matching single expressions.
* Closure-capture bookkeeping: every :class:`Tag` records the scope
  depth it was bound at, so a ``Name`` load at a deeper function depth
  is a capture -- the pattern that ships an enclosing RNG stream into a
  worker process.
* :class:`CallGraph` -- a lightweight intra-module call graph keyed by
  terminal call names, with :meth:`CallGraph.reachable` closure from a
  set of entry-point names.  TCL010 uses it to scope "code a worker
  process may execute" without whole-program analysis.

All three are deliberately approximate (no types, no interprocedural
value flow); the rules built on them choose patterns where the
approximation errs on the quiet side, and every residual true positive
in the tree is fixed or pragma-audited (see DESIGN.md section 15).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.engine import LintContext

__all__ = [
    "CallGraph",
    "FlowVisitor",
    "FunctionInfo",
    "Tag",
    "terminal_name",
]


def terminal_name(func: ast.expr) -> Optional[str]:
    """The rightmost name of a call target, or ``None``.

    ``engine.query_curve`` and ``query_curve`` both resolve to
    ``"query_curve"``; anything that is not a ``Name``/``Attribute``
    (subscripts, calls, literals) resolves to ``None``.
    """
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@dataclass
class Tag:
    """One tagged binding: what a name holds and where it was bound.

    Attributes:
        kind: The origin tag a classifier assigned (``"stream"``, ...).
        node: The AST node that produced the value (for anchoring).
        depth: Scope-stack depth of the binding (0 = module scope);
            loads at a greater depth are closure captures.
        origin_id: Identity of the underlying value.  Aliases made with
            plain ``b = a`` share their source's ``origin_id``, so a
            rule can tell "two names, one stream" from "two streams".
    """

    kind: str
    node: ast.AST
    depth: int
    origin_id: int


class FlowVisitor(ast.NodeVisitor):
    """Scope-aware def-use tracking of classifier-tagged values.

    Subclasses override :meth:`classify` (and optionally
    :meth:`classify_param`) to decide which right-hand sides produce a
    tagged value, then hook :meth:`on_alias` / :meth:`on_use` /
    :meth:`on_call` to observe the flow.  The base class maintains the
    scope stack across (async) function definitions and lambdas,
    propagates tags through ``b = a`` aliasing and tuple unpacking,
    and kills a binding whenever its name is reassigned to an
    unclassified value -- flow sensitivity in the only sense the rules
    need: the *latest* binding wins.

    Args:
        ctx: The file under analysis.
    """

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        #: One mapping per open scope, innermost last.
        self.scopes: List[Dict[str, Tag]] = [{}]
        #: Enclosing function/lambda nodes, innermost last (parallels
        #: ``scopes[1:]``); rules use it to attribute closure captures.
        self.func_stack: List[ast.AST] = []
        self._next_origin = 0

    # -- subclass hooks ----------------------------------------------------

    def classify(self, value: ast.expr) -> Optional[str]:
        """Tag kind produced by evaluating ``value``, or ``None``."""
        return None

    def classify_param(self, arg: ast.arg) -> Optional[str]:
        """Tag kind carried by a function parameter, or ``None``."""
        return None

    def on_alias(self, name: str, source: str, tag: Tag, node: ast.Assign) -> None:
        """Called when ``name = source`` copies a tagged binding."""

    def on_use(self, name: str, tag: Tag, node: ast.Name) -> None:
        """Called on every load of a tagged name."""

    def on_call(self, node: ast.Call) -> None:
        """Called on every call expression (after operand traversal)."""

    # -- scope bookkeeping -------------------------------------------------

    @property
    def depth(self) -> int:
        """Current scope depth (0 = module)."""
        return len(self.scopes) - 1

    def lookup(self, name: str) -> Optional[Tag]:
        """The innermost visible tag for ``name``, or ``None``."""
        for scope in reversed(self.scopes):
            tag = scope.get(name)
            if tag is not None:
                return tag
        return None

    def bind(self, name: str, kind: str, node: ast.AST,
             origin_id: Optional[int] = None) -> Tag:
        """Bind ``name`` to a (possibly shared-origin) tag in this scope."""
        if origin_id is None:
            self._next_origin += 1
            origin_id = self._next_origin
        tag = Tag(kind=kind, node=node, depth=self.depth, origin_id=origin_id)
        self.scopes[-1][name] = tag
        return tag

    def kill(self, name: str) -> None:
        """Remove any binding for ``name`` in the current scope."""
        self.scopes[-1].pop(name, None)

    # -- traversal ---------------------------------------------------------

    def _enter_function(self, node: ast.AST, args: ast.arguments) -> None:
        self.scopes.append({})
        params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg is not None:
            params.append(args.vararg)
        if args.kwarg is not None:
            params.append(args.kwarg)
        for param in params:
            kind = self.classify_param(param)
            if kind is not None:
                self.bind(param.arg, kind, param)

    def on_function_exit(self, node: ast.AST) -> None:
        """Called when a function/lambda scope closes."""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Open a function scope seeded with classified parameters."""
        self._enter_function(node, node.args)
        self.func_stack.append(node)
        for stmt in node.body:
            self.visit(stmt)
        self.func_stack.pop()
        self.scopes.pop()
        self.on_function_exit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Same treatment as synchronous defs."""
        self._enter_function(node, node.args)
        self.func_stack.append(node)
        for stmt in node.body:
            self.visit(stmt)
        self.func_stack.pop()
        self.scopes.pop()
        self.on_function_exit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        """Open a scope for the lambda body."""
        self._enter_function(node, node.args)
        self.func_stack.append(node)
        self.visit(node.body)
        self.func_stack.pop()
        self.scopes.pop()
        self.on_function_exit(node)

    def _bind_target(self, target: ast.expr, kind: Optional[str],
                     node: ast.AST) -> None:
        """Bind (or kill) one assignment target."""
        if isinstance(target, ast.Name):
            if kind is None:
                self.kill(target.id)
            else:
                self.bind(target.id, kind, node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Unpacking a tagged value (e.g. ``a, b = rng.spawn(2)``)
            # tags every plain-name element.
            for element in target.elts:
                self._bind_target(element, kind, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        """Propagate tags: classification, aliasing, and kills."""
        self.visit(node.value)
        value = node.value
        if isinstance(value, ast.Name):
            source = self.lookup(value.id)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if source is None:
                        self.kill(target.id)
                    else:
                        self.scopes[-1][target.id] = Tag(
                            kind=source.kind,
                            node=node,
                            depth=self.depth,
                            origin_id=source.origin_id,
                        )
                        self.on_alias(target.id, value.id, source, node)
            return
        kind = self.classify(value)
        for target in node.targets:
            self._bind_target(target, kind, node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        """Annotated assignments classify like plain ones."""
        if node.value is not None:
            self.visit(node.value)
            self._bind_target(node.target, self.classify(node.value), node)

    def visit_Name(self, node: ast.Name) -> None:
        """Report loads of tagged names to :meth:`on_use`."""
        if isinstance(node.ctx, ast.Load):
            tag = self.lookup(node.id)
            if tag is not None:
                self.on_use(node.id, tag, node)

    def visit_Call(self, node: ast.Call) -> None:
        """Traverse operands, then report the call to :meth:`on_call`."""
        self.generic_visit(node)
        self.on_call(node)


@dataclass
class FunctionInfo:
    """One function (or method) in the module's call graph.

    Attributes:
        name: The bare function name (methods keyed without class).
        node: The defining AST node.
        calls: Terminal names of every call made in the body, plus the
            names of functions defined *inside* the body -- defining a
            worker helper inside an entry point makes it reachable.
    """

    name: str
    node: ast.AST
    calls: Set[str] = field(default_factory=set)


class CallGraph:
    """Lightweight intra-module call graph over terminal call names.

    Methods and functions are keyed by bare name; two same-named
    functions merge their edges, which over-approximates reachability
    (safe direction: a rule scoped by this graph may look at slightly
    more code, never less).

    Use :meth:`build` to construct and :meth:`reachable` to close over
    a set of entry-point names.
    """

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}

    @classmethod
    def build(cls, tree: ast.Module) -> "CallGraph":
        """Index every function definition and its outgoing call names."""
        graph = cls()

        class _Indexer(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: List[FunctionInfo] = []

            def _function(self, node: ast.AST, name: str) -> None:
                info = graph.functions.get(name)
                if info is None:
                    info = FunctionInfo(name=name, node=node)
                    graph.functions[name] = info
                if self.stack:
                    # A nested def is reachable from its definer.
                    self.stack[-1].calls.add(name)
                self.stack.append(info)
                self.generic_visit(node)
                self.stack.pop()

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._function(node, node.name)

            def visit_AsyncFunctionDef(
                self, node: ast.AsyncFunctionDef
            ) -> None:
                self._function(node, node.name)

            def visit_Call(self, node: ast.Call) -> None:
                if self.stack:
                    name = terminal_name(node.func)
                    if name is not None:
                        self.stack[-1].calls.add(name)
                self.generic_visit(node)

        _Indexer().visit(tree)
        return graph

    def reachable(self, entries: Iterable[str]) -> Set[str]:
        """Names of functions reachable from ``entries`` (inclusive).

        Entry names with no definition in the module are ignored; edges
        through names that are not module functions (builtins, imports)
        terminate there.
        """
        seen: Set[str] = set()
        frontier: List[str] = [e for e in entries if e in self.functions]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for callee in self.functions[name].calls:
                if callee in self.functions and callee not in seen:
                    frontier.append(callee)
        return seen

    def nodes_of(self, names: Iterable[str]) -> List[Tuple[str, ast.AST]]:
        """The defining AST nodes for the given function names."""
        return [
            (name, self.functions[name].node)
            for name in names
            if name in self.functions
        ]
