"""Core machinery of ``tcast-lint``: contexts, pragmas, rule protocol.

The linter is a thin framework around one idea: every determinism and
parallel-safety invariant this repo relies on (seeded :class:`RngRegistry`
streams, simulated time, picklable sweep factories) can be checked
mechanically with a per-file :mod:`ast` walk.  This module provides the
shared plumbing:

* :class:`Finding` -- one reported violation, sortable and JSON-ready;
* :class:`LintContext` -- parsed tree, resolved import aliases, pragma
  table and path scope for a single source file;
* :class:`Rule` -- the interface rule modules implement (see
  :mod:`repro.lint.rules`);
* :func:`lint_source` / :func:`lint_file` / :func:`lint_paths` -- the
  pytest-importable entry points the CLI wraps.

Suppression pragmas::

    model.query(bin)  # tcast-lint: disable=TCL002 -- reason (optional)
    # tcast-lint: disable-file=TCL001 -- whole-file suppression

Directory discovery skips hidden directories, ``__pycache__`` and any
directory named ``fixtures`` (the lint test suite keeps deliberately
violating files there and lints them by explicit path instead).
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Matches one suppression pragma; group 1 is ``disable`` or
#: ``disable-file``, group 2 the comma-separated rule list (or ``all``).
_PRAGMA_RE = re.compile(
    r"#\s*tcast-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+|all)"
)

#: Directory names skipped during recursive discovery.
_SKIP_DIRS = {"__pycache__", "fixtures", ".git", ".mypy_cache", ".ruff_cache"}

#: Package directories whose files count as "simulation scope" for the
#: wall-clock rule (TCL002).
SIM_SCOPE_DIRS = ("sim", "core", "group_testing", "experiments")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes:
        path: Path of the offending file, as passed to the linter.
        line: 1-based line number.
        col: 0-based column offset.
        rule_id: The ``TCLxxx`` identifier of the rule that fired.
        message: Human-readable explanation with the suggested fix.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """Format as ``path:line:col: RULE message`` (one line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (stable key order)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


class AliasResolver(ast.NodeVisitor):
    """Resolve local names to the canonical dotted paths they import.

    Walks every ``import``/``from ... import`` in the file (at any
    nesting level) and builds a name -> dotted-path map, e.g. ``np ->
    numpy``, ``pc -> time.perf_counter``.  :meth:`resolve` then expands
    an attribute chain such as ``np.random.default_rng`` to
    ``numpy.random.default_rng``.
    """

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        """Record ``import a.b [as c]`` aliases."""
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Record ``from a import b [as c]`` aliases (absolute only)."""
        if node.level or not node.module:
            return  # relative imports never reach stdlib/numpy
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted path of a ``Name``/``Attribute`` chain, aliases expanded.

        Returns ``None`` for expressions that are not plain attribute
        chains rooted at a name (calls, subscripts, literals, ...).
        """
        parts: List[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        parts.reverse()
        root = self.aliases.get(parts[0], parts[0])
        return ".".join([root] + parts[1:])


@dataclass
class LintContext:
    """Everything a rule needs to check one source file.

    Attributes:
        path: The file path as given (used in findings).
        parts: Path components, used for package-scope decisions.
        source: Raw source text.
        tree: Parsed module AST.
        aliases: Import-alias resolver for the file.
        line_pragmas: ``line -> {rule ids}`` same-line suppressions
            (``{"all"}`` suppresses every rule on that line).
        file_pragmas: Rules suppressed for the whole file.
    """

    path: str
    parts: Tuple[str, ...]
    source: str
    tree: ast.Module
    aliases: AliasResolver
    line_pragmas: Dict[int, Set[str]]
    file_pragmas: Set[str]

    @property
    def is_test_file(self) -> bool:
        """Whether this is a pytest file (``test_*.py`` / ``conftest.py``).

        Package-scoped rules (TCL002/TCL004/TCL006) exempt test files:
        tests legitimately measure wall-clock, assert exact analytic
        values and build throwaway runners.
        """
        name = self.parts[-1] if self.parts else ""
        return name.startswith("test_") or name == "conftest.py"

    def in_scope(self, *dirs: str) -> bool:
        """Whether the file lives under any of the given package dirs."""
        return any(d in self.parts[:-1] for d in dirs)

    def is_module(self, *suffix: str) -> bool:
        """Whether the file path ends with the given components."""
        return self.parts[-len(suffix):] == tuple(suffix)

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Whether a pragma silences ``rule_id`` at ``line``."""
        if rule_id in self.file_pragmas or "all" in self.file_pragmas:
            return True
        rules = self.line_pragmas.get(line)
        return rules is not None and (rule_id in rules or "all" in rules)


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` / :attr:`name` / :attr:`summary`,
    implement :meth:`check`, and carry a docstring with ``Bad::`` and
    ``Good::`` literal blocks -- the test suite extracts and lints both
    (see :func:`examples_from_docstring`).
    """

    #: ``TCLxxx`` identifier reported in findings and used in pragmas.
    rule_id: str = "TCL000"

    #: Short kebab-case rule name.
    name: str = "abstract-rule"

    #: One-line description for ``--list-rules`` and DESIGN.md.
    summary: str = ""

    #: Path the docstring examples are linted under (rules scoped to a
    #: package override this so the example actually falls in scope).
    example_path: str = "repro/example.py"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield findings for one file; suppression is handled upstream."""
        raise NotImplementedError

    def finding(
        self, ctx: LintContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


def examples_from_docstring(rule: Rule) -> Tuple[str, str]:
    """Extract the ``Bad::`` and ``Good::`` snippets from a rule docstring.

    Each marker introduces one indented literal block (reST style); the
    snippet is dedented and returned as runnable source.  Raises
    :class:`ValueError` when a rule is missing either block, so the test
    suite enforces that every rule documents both.
    """
    doc = inspect.cleandoc(rule.__doc__ or "")
    snippets: Dict[str, str] = {}
    for marker in ("Bad::", "Good::"):
        idx = doc.find(marker)
        if idx < 0:
            raise ValueError(f"{rule.rule_id}: docstring lacks {marker!r} block")
        rest = doc[idx + len(marker):]
        lines = rest.splitlines()
        block: List[str] = []
        started = False
        for line in lines:
            if not line.strip():
                if started:
                    block.append(line)
                continue
            indent = len(line) - len(line.lstrip())
            if indent >= 4:
                started = True
                block.append(line)
            elif started:
                break
            else:
                break
        snippet = textwrap.dedent("\n".join(block)).strip("\n")
        if not snippet:
            raise ValueError(f"{rule.rule_id}: empty {marker!r} block")
        snippets[marker] = snippet
    return snippets["Bad::"], snippets["Good::"]


def _parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Collect line-level and file-level suppression pragmas."""
    line_pragmas: Dict[int, Set[str]] = {}
    file_pragmas: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "tcast-lint" not in line:
            continue
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = {
            token.strip()
            for token in match.group(2).split(",")
            if token.strip()
        }
        if match.group(1) == "disable-file":
            file_pragmas |= rules
        else:
            line_pragmas.setdefault(lineno, set()).update(rules)
    return line_pragmas, file_pragmas


def build_context(source: str, path: str) -> LintContext:
    """Parse ``source`` into a ready-to-check :class:`LintContext`.

    Raises:
        SyntaxError: If the file does not parse (surfaced to the caller;
            a file that cannot be parsed cannot be certified).
    """
    tree = ast.parse(source, filename=path)
    resolver = AliasResolver()
    resolver.visit(tree)
    line_pragmas, file_pragmas = _parse_pragmas(source)
    parts = tuple(PurePosixPath(Path(path).as_posix()).parts)
    return LintContext(
        path=path,
        parts=parts,
        source=source,
        tree=tree,
        aliases=resolver,
        line_pragmas=line_pragmas,
        file_pragmas=file_pragmas,
    )


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Optional[Sequence[Rule]] = None,
    respect_pragmas: bool = True,
) -> List[Finding]:
    """Lint a source string and return sorted findings.

    Args:
        source: Python source text.
        path: Path used for findings and package-scope decisions.
        rules: Rules to run; defaults to the full registry.
        respect_pragmas: Set ``False`` to report suppressed findings too
            (used by the pragma-audit tests).
    """
    from repro.lint.rules import all_rules

    active = list(rules) if rules is not None else all_rules()
    ctx = build_context(source, path)
    findings: List[Finding] = []
    for rule in active:
        for finding in rule.check(ctx):
            if respect_pragmas and ctx.suppressed(finding.rule_id, finding.line):
                continue
            findings.append(finding)
    return sorted(findings)


def lint_file(
    path: str | Path,
    *,
    rules: Optional[Sequence[Rule]] = None,
    respect_pragmas: bool = True,
) -> List[Finding]:
    """Lint one file on disk (always linted, even inside ``fixtures/``)."""
    p = Path(path)
    return lint_source(
        p.read_text(encoding="utf-8"),
        str(path),
        rules=rules,
        respect_pragmas=respect_pragmas,
    )


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` in sorted order.

    Directories are walked recursively, skipping hidden directories,
    ``__pycache__`` and ``fixtures`` (deliberate-violation corpora); an
    explicit file argument is always yielded regardless of location.

    Raises:
        FileNotFoundError: If a given path does not exist.
    """
    for given in paths:
        p = Path(given)
        if p.is_file():
            yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                rel = sub.relative_to(p)
                if any(
                    part in _SKIP_DIRS or part.startswith(".")
                    for part in rel.parts[:-1]
                ):
                    continue
                yield sub
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")


def lint_paths(
    paths: Iterable[str | Path],
    *,
    rules: Optional[Sequence[Rule]] = None,
    respect_pragmas: bool = True,
) -> List[Finding]:
    """Lint files and directories; the main pytest-importable entry point."""
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(
            lint_file(file, rules=rules, respect_pragmas=respect_pragmas)
        )
    return sorted(findings)
