"""The pollcast primitive: RCD via clear-channel assessment.

Two phases per bin query (Demirbas et al., INFOCOM 2008):

1. **Poll** -- the initiator broadcasts the predicate and the queried
   member set, together with the exact vote window.
2. **Vote** -- every predicate-positive member transmits a short vote
   frame at the window start, *simultaneously and deliberately
   colliding*.  The initiator samples the channel (CCA/RSSI) across the
   window: any energy means "non-empty"; silence means "empty".

Compared with backcast, pollcast needs no hardware-ACK support but is
vulnerable to false positives from unrelated traffic (any energy in the
window counts), which is why the mote experiments -- and our Fig 4
reproduction -- use backcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.primitives.common import transmit_when_clear
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.frames import BROADCAST_ADDR, DataFrame
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

#: Payload key identifying pollcast poll frames.
POLL_TYPE = "pollcast.poll"

#: Vote frames are tiny: 2 payload bytes.
VOTE_PAYLOAD_BYTES = 2


@dataclass(frozen=True)
class PollcastOutcome:
    """Result of one pollcast bin query.

    Attributes:
        nonempty: Whether channel activity was sensed in the vote window.
        start_us: Query start time.
        end_us: Time the initiator reached its verdict.
    """

    nonempty: bool
    start_us: float
    end_us: float

    @property
    def duration_us(self) -> float:
        """Wall-clock cost of the query in microseconds."""
        return self.end_us - self.start_us


class PollcastInitiator:
    """Initiator-side driver of the pollcast exchange.

    Args:
        sim: The discrete-event simulator.
        radio: The initiator's radio.
        tracer: Optional tracer.
        vote_window_us: Width of the CCA sampling window.  Must cover a
            vote frame's air time plus scheduling slack.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Cc2420Radio,
        *,
        tracer: Optional[Tracer] = None,
        vote_window_us: float = 640.0,
    ) -> None:
        if vote_window_us <= 0:
            raise ValueError(
                f"vote_window_us must be > 0, got {vote_window_us}"
            )
        self._sim = sim
        self._radio = radio
        self._tracer = tracer if tracer is not None else Tracer(enabled=False, name="pollcast")
        self._vote_window_us = vote_window_us
        self._seq = 0

    @property
    def queries_issued(self) -> int:
        """Total pollcast exchanges performed."""
        return self._seq

    def query(
        self,
        members: Sequence[int],
        *,
        predicate_id: int = 0,
    ) -> PollcastOutcome:
        """Run one full pollcast exchange for a bin.

        Args:
            members: Participant ids in the queried bin.
            predicate_id: Application-level predicate identifier.

        Returns:
            The initiator's observation.
        """
        start = self._sim.now
        seq = self._seq % 256
        self._seq += 1
        timing = self._radio.channel.timing

        poll = DataFrame(
            src=self._radio.address,
            dst=BROADCAST_ADDR,
            seq=seq,
            ack_request=False,
            payload={
                "type": POLL_TYPE,
                "predicate": predicate_id,
                "members": tuple(int(m) for m in members),
            },
            payload_bytes=min(4 + len(members), 116),
        )
        poll_end = transmit_when_clear(self._sim, self._radio, poll)
        self._tracer.emit(
            "pollcast.poll",
            f"mote{self._radio.address}",
            time=start,
            members=len(members),
            seq=seq,
        )

        window_start = poll_end + timing.turnaround_us
        window_end = window_start + self._vote_window_us
        self._sim.run(until=window_end)
        nonempty = self._radio.channel.activity_in(window_start, window_end)
        self._tracer.emit(
            "pollcast.verdict",
            f"mote{self._radio.address}",
            time=self._sim.now,
            nonempty=nonempty,
        )
        return PollcastOutcome(
            nonempty=nonempty, start_us=start, end_us=self._sim.now
        )
