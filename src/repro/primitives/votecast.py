"""The votecast primitive: packet-level 2+ collision semantics.

The paper's 2+ model (Sec III-A) assumes a radio that "has the capability
of locking to a message and receiving it correctly while omitting all
other messages" -- i.e. replies carry their sender's identity and the
capture effect sometimes decodes one of several simultaneous replies.
Votecast realises that over the emulated radio:

1. **Poll** -- the initiator broadcasts the predicate and member set.
2. **Votes** -- every positive member transmits an ID-carrying vote frame
   one turnaround later, simultaneously.
3. **Observation** -- the initiator's radio resolves the collision via
   the channel's capture model:

   * a decoded vote identifies one positive (``CAPTURE``; with one voter
     this is certain, with several it happens with the capture model's
     probability);
   * undecodable energy proves **at least two** voters (``ACTIVITY`` with
     ``min_positives = 2`` -- a single vote is always decodable on an
     ideal channel, so only a collision can fail to decode);
   * silence proves the bin empty.

This is the packet-level counterpart of
:class:`repro.group_testing.model.TwoPlusModel`; with the same ``1/k``
capture model the two produce statistically matching observations (see
``tests/integration/test_cross_substrate.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.group_testing.model import BinObservation, ObservationKind
from repro.primitives.common import transmit_when_clear
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.frames import BROADCAST_ADDR, DataFrame
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

#: Payload key identifying votecast poll frames.
POLL_TYPE = "votecast.poll"

#: Payload key identifying vote frames.
VOTE_TYPE = "votecast.vote"

#: Vote frames carry the sender id: 2 payload bytes.
VOTE_PAYLOAD_BYTES = 2


@dataclass(frozen=True)
class VotecastOutcome:
    """Result of one votecast bin query.

    Attributes:
        observation: The 2+ :class:`BinObservation` the initiator formed.
        start_us: Query start time.
        end_us: Time the initiator reached its verdict.
    """

    observation: BinObservation
    start_us: float
    end_us: float

    @property
    def duration_us(self) -> float:
        """Wall-clock cost of the query in microseconds."""
        return self.end_us - self.start_us


class VotecastInitiator:
    """Initiator-side driver of the votecast exchange.

    Args:
        sim: The discrete-event simulator.
        radio: The initiator's radio; its ``receive_callback`` is claimed
            for vote decoding (backcast's ``ack_callback`` is untouched,
            so both primitives can share a radio).
        tracer: Optional tracer.
        vote_window_us: Listening window after the poll's turnaround; must
            cover a vote frame's air time plus slack.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Cc2420Radio,
        *,
        tracer: Optional[Tracer] = None,
        vote_window_us: float = 640.0,
    ) -> None:
        if vote_window_us <= 0:
            raise ValueError(
                f"vote_window_us must be > 0, got {vote_window_us}"
            )
        self._sim = sim
        self._radio = radio
        self._tracer = tracer if tracer is not None else Tracer(enabled=False, name="votecast")
        self._vote_window_us = vote_window_us
        self._seq = 0
        self._decoded_voter: Optional[int] = None
        radio.receive_callback = self._on_frame

    @property
    def queries_issued(self) -> int:
        """Total votecast exchanges performed."""
        return self._seq

    def query(
        self,
        members: Sequence[int],
        *,
        predicate_id: int = 0,
    ) -> VotecastOutcome:
        """Run one full votecast exchange for a bin.

        Args:
            members: Participant ids in the bin.
            predicate_id: Application-level predicate identifier.

        Returns:
            The initiator's 2+ observation plus timing.
        """
        start = self._sim.now
        seq = self._seq % 256
        self._seq += 1
        self._decoded_voter = None
        timing = self._radio.channel.timing

        poll = DataFrame(
            src=self._radio.address,
            dst=BROADCAST_ADDR,
            seq=seq,
            ack_request=False,
            payload={
                "type": POLL_TYPE,
                "predicate": predicate_id,
                "members": tuple(int(m) for m in members),
            },
            payload_bytes=min(4 + len(members), 116),
        )
        poll_end = transmit_when_clear(self._sim, self._radio, poll)
        self._tracer.emit(
            "votecast.poll",
            f"mote{self._radio.address}",
            time=start,
            members=len(members),
            seq=seq,
        )

        window_start = poll_end + timing.turnaround_us
        window_end = window_start + self._vote_window_us
        self._sim.run(until=window_end)

        if self._decoded_voter is not None:
            observation = BinObservation(
                kind=ObservationKind.CAPTURE,
                min_positives=1,
                captured_node=self._decoded_voter,
            )
        elif self._radio.channel.activity_in(window_start, window_end):
            # Energy without a decodable vote: a lone vote always decodes
            # on this channel, so at least two voters collided.
            observation = BinObservation(
                kind=ObservationKind.ACTIVITY, min_positives=2
            )
        else:
            observation = BinObservation(
                kind=ObservationKind.SILENT, min_positives=0
            )
        self._tracer.emit(
            "votecast.verdict",
            f"mote{self._radio.address}",
            time=self._sim.now,
            kind=observation.kind.value,
            captured=observation.captured_node,
        )
        return VotecastOutcome(
            observation=observation, start_us=start, end_us=self._sim.now
        )

    def _on_frame(self, frame: DataFrame, superposition: int) -> None:
        if frame.payload.get("type") == VOTE_TYPE:
            self._decoded_voter = int(frame.payload["voter"])
