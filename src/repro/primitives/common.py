"""Shared initiator-side MAC helpers for the RCD primitives.

802.15.4 requires carrier sensing before any data transmission; the
initiator drivers use :func:`transmit_when_clear` so announce/poll frames
defer to in-flight traffic (one unit backoff period at a time) instead of
colliding with it.  On an idle channel the helper is a plain transmit
with zero added latency, so the protocol-timing tests are unaffected;
under interference it is the difference between losing a whole round to
a collided announce and merely starting it a few hundred microseconds
late.
"""

from __future__ import annotations

from repro.radio.cc2420 import Cc2420Radio
from repro.radio.frames import DataFrame
from repro.sim.kernel import Simulator

#: Give up after this many deferral periods (a jammed channel).
MAX_DEFERRALS = 10_000


class ChannelWedged(RuntimeError):
    """The medium never cleared within the deferral bound.

    Raised by :func:`transmit_when_clear` when a stuck/babbling
    transmitter (or equivalent jam) keeps CCA busy for
    :data:`MAX_DEFERRALS` consecutive backoff periods.  The reliable
    control plane (:meth:`repro.motes.testbed.Testbed.run_reliable_query`)
    catches exactly this to trigger its reboot-and-backoff recovery.
    """


def transmit_when_clear(
    sim: Simulator,
    radio: Cc2420Radio,
    frame: DataFrame,
) -> float:
    """Transmit ``frame`` after carrier sensing, deferring while busy.

    Args:
        sim: The discrete-event simulator (advanced while deferring).
        radio: The transmitting radio (must be in RX).
        frame: The frame to send.

    Returns:
        The frame's end-of-air time.

    Raises:
        ChannelWedged: If the channel never clears within
            :data:`MAX_DEFERRALS` backoff periods.
    """
    period = radio.channel.timing.backoff_period_us
    for _ in range(MAX_DEFERRALS):
        if radio.cca():
            return radio.transmit(frame)
        sim.run(until=sim.now + period)
    raise ChannelWedged(
        f"channel never cleared within {MAX_DEFERRALS} backoff periods"
    )
