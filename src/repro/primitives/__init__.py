"""Singlehop collaborative feedback primitives (RCD building blocks).

* :mod:`repro.primitives.pollcast` -- the two-phase, CCA-based primitive
  of Demirbas et al. (INFOCOM 2008): poll broadcast, then simultaneous
  votes detected as channel activity.
* :mod:`repro.primitives.backcast` -- the three-phase, HACK-based
  primitive of Dutta et al. (HotNets 2008): announce (ephemeral address
  binding), poll to the ephemeral address, superposed hardware
  acknowledgements.  Robust to interference (no false positives) and the
  primitive the paper's mote experiments use.

* :mod:`repro.primitives.votecast` -- the 2+ extension: simultaneous
  ID-carrying votes resolved through the capture effect, so the
  initiator sometimes identifies one positive (and an undecodable
  collision certifies at least two).

The primitives implement "is this bin non-empty?" (plus the 2+ extras) --
the tcast layer composes them into threshold queries.
"""

from repro.primitives.backcast import BackcastInitiator, BackcastOutcome
from repro.primitives.pollcast import PollcastInitiator, PollcastOutcome
from repro.primitives.votecast import VotecastInitiator, VotecastOutcome

__all__ = [
    "BackcastInitiator",
    "BackcastOutcome",
    "PollcastInitiator",
    "PollcastOutcome",
    "VotecastInitiator",
    "VotecastOutcome",
]
