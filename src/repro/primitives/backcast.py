"""The backcast primitive: RCD via superposed hardware acknowledgements.

Per the paper (Sec IV-D): "the initiator broadcasts a predicate P along
with a group identifier that maps each participant node to a group, and
then query[s] each group separately."  The exchange is therefore
round-oriented:

1. **Round announce** -- the initiator broadcasts the predicate id and
   the member-to-bin assignment for the whole round (fragmented over
   several frames when the assignment does not fit one MPDU).  Every
   *positive* participant assigned to bin ``g`` programs its radio's
   short address to the ephemeral identifier ``EPHEMERAL_BASE + g``;
   negative or unassigned participants (re)program their own id.  Each
   radio holds exactly one short address -- its own bin's -- so all bins
   are armed simultaneously.
2. **Per-bin poll** -- for each bin in turn, the initiator unicasts an
   ACK-requesting frame to that bin's ephemeral address.  It passes
   hardware address recognition at exactly the bin's positive members.
3. **HACKs** -- those radios acknowledge in hardware, symbol-aligned one
   turnaround later; the identical ACKs superpose non-destructively and
   the initiator's radio latches the superposition.

The initiator concludes **non-empty** iff it decodes a HACK with the
poll's sequence number within the ACK-wait window.  Interference can only
*suppress* a HACK (false negative), never fabricate one (no false
positives) -- the property the paper leans on for multihop tolerance.

A one-shot :meth:`BackcastInitiator.query` (announce a single-bin round,
then poll it) is kept for sampled probes and ad hoc queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.primitives.common import transmit_when_clear
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.frames import AckFrame, BROADCAST_ADDR, DataFrame
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

#: Base of the ephemeral short-address space (above any mote id); bin
#: ``g`` of the current round answers on ``EPHEMERAL_BASE + g``.
EPHEMERAL_BASE = 0x8000

#: Payload key identifying round-announce frames.
ANNOUNCE_TYPE = "backcast.announce"

#: Maximum member->bin entries per announce fragment (1 B id + nibble-
#: packed bin index, inside the 116 B payload budget).
_ENTRIES_PER_FRAGMENT = 72


@dataclass(frozen=True)
class BackcastOutcome:
    """Result of one backcast bin query.

    Attributes:
        nonempty: Whether a HACK was decoded (the initiator's observation).
        superposition: Number of HACKs that superposed on air -- ground
            truth visible to the simulator, **not** to the initiator; kept
            for false-negative analysis.
        start_us: Query start time.
        end_us: Time the initiator reached its verdict.
    """

    nonempty: bool
    superposition: int
    start_us: float
    end_us: float

    @property
    def duration_us(self) -> float:
        """Wall-clock cost of the query in microseconds."""
        return self.end_us - self.start_us


class BackcastInitiator:
    """Initiator-side driver of the backcast exchange.

    The driver owns the simulator while a query is in flight: it
    schedules frames and runs the event loop until the ACK window closes,
    so callers get synchronous ``announce_round`` / ``poll_bin`` /
    ``query`` calls on top of the event-driven substrate.

    Args:
        sim: The discrete-event simulator.
        radio: The initiator's radio.
        tracer: Optional tracer.
        guard_us: Extra settle time after the last announce fragment
            before polling starts (participants reprogram their address
            registers; TinyOS needs a moment).
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Cc2420Radio,
        *,
        tracer: Optional[Tracer] = None,
        guard_us: float = 128.0,
    ) -> None:
        if guard_us < 0:
            raise ValueError(f"guard_us must be >= 0, got {guard_us}")
        self._sim = sim
        self._radio = radio
        self._tracer = tracer if tracer is not None else Tracer(enabled=False, name="backcast")
        self._guard_us = guard_us
        self._seq = 0
        self._round_id = 0
        self._polls_issued = 0
        self._round_bins: List[frozenset[int]] = []
        self._ack_seen: Optional[AckFrame] = None
        self._superposition = 0
        radio.ack_callback = self._on_ack

    @property
    def queries_issued(self) -> int:
        """Total bin polls performed."""
        return self._polls_issued

    @property
    def round_bins(self) -> List[frozenset[int]]:
        """The current round's bin membership (by bin index)."""
        return list(self._round_bins)

    def announce_round(
        self,
        bins: Sequence[Sequence[int]],
        *,
        predicate_id: int = 0,
    ) -> None:
        """Broadcast the member-to-bin assignment for a new round.

        Positive members of bin ``g`` arm ``EPHEMERAL_BASE + g``; every
        other participant that hears the announce resets to its own id,
        so stale bindings from previous rounds cannot alias.  The call
        returns once the bindings have settled (last fragment air time
        plus turnaround plus the guard).

        Args:
            bins: Member ids per bin, in poll order.
            predicate_id: Application-level predicate identifier.

        Raises:
            ValueError: If a node appears in more than one bin.
        """
        flat: Dict[int, int] = {}
        for g, members in enumerate(bins):
            for m in members:
                m = int(m)
                if m in flat:
                    raise ValueError(
                        f"node {m} assigned to bins {flat[m]} and {g}"
                    )
                flat[m] = g
        self._round_bins = [
            frozenset(int(m) for m in members) for members in bins
        ]
        self._round_id = (self._round_id + 1) % 2**16

        entries = sorted(flat.items())
        fragments = [
            entries[i : i + _ENTRIES_PER_FRAGMENT]
            for i in range(0, len(entries), _ENTRIES_PER_FRAGMENT)
        ] or [[]]
        last_end = self._sim.now
        for idx, chunk in enumerate(fragments):
            seq = self._next_seq()
            frame = DataFrame(
                src=self._radio.address,
                dst=BROADCAST_ADDR,
                seq=seq,
                ack_request=False,
                payload={
                    "type": ANNOUNCE_TYPE,
                    "predicate": predicate_id,
                    "round": self._round_id,
                    "fragment": idx,
                    "fragments": len(fragments),
                    "assignment": dict(chunk),
                    "ephemeral_base": EPHEMERAL_BASE,
                },
                # 6 B header fields + ~1.5 B per entry, clamped to the MPDU.
                payload_bytes=min(6 + (3 * len(chunk) + 1) // 2, 116),
            )
            # Wait for the previous fragment to clear the air.
            if self._sim.now < last_end:
                self._sim.run(until=last_end)
            last_end = transmit_when_clear(self._sim, self._radio, frame)
            self._tracer.emit(
                "backcast.announce",
                f"mote{self._radio.address}",
                time=self._sim.now,
                round=self._round_id,
                fragment=idx,
                entries=len(chunk),
            )
        timing = self._radio.channel.timing
        self._sim.run(until=last_end + timing.turnaround_us + self._guard_us)

    def poll_bin(self, bin_index: int) -> BackcastOutcome:
        """Poll one announced bin (phase 2+3 of the exchange).

        Args:
            bin_index: Index into the current round's bins.

        Returns:
            The initiator's observation plus diagnostics.

        Raises:
            IndexError: If no such bin was announced.
        """
        if not 0 <= bin_index < len(self._round_bins):
            raise IndexError(
                f"bin {bin_index} not announced "
                f"(round has {len(self._round_bins)} bins)"
            )
        start = self._sim.now
        seq = self._next_seq()
        self._polls_issued += 1
        self._ack_seen = None
        self._superposition = 0

        timing = self._radio.channel.timing
        poll = DataFrame(
            src=self._radio.address,
            dst=EPHEMERAL_BASE + bin_index,
            seq=seq,
            ack_request=True,
            payload={"type": "backcast.poll"},
            payload_bytes=0,
        )
        poll_end = transmit_when_clear(self._sim, self._radio, poll)
        self._tracer.emit(
            "backcast.poll",
            f"mote{self._radio.address}",
            time=start,
            bin=bin_index,
            seq=seq,
        )
        self._sim.run(until=poll_end + timing.ack_wait_us)

        nonempty = self._ack_seen is not None and self._ack_seen.seq == seq
        outcome = BackcastOutcome(
            nonempty=nonempty,
            superposition=self._superposition,
            start_us=start,
            end_us=self._sim.now,
        )
        self._tracer.emit(
            "backcast.verdict",
            f"mote{self._radio.address}",
            time=self._sim.now,
            bin=bin_index,
            nonempty=nonempty,
            superposition=self._superposition,
        )
        return outcome

    def query(
        self,
        members: Sequence[int],
        *,
        predicate_id: int = 0,
    ) -> BackcastOutcome:
        """One-shot exchange: announce a single-bin round, then poll it.

        Used for sampled probes and ad hoc bin queries outside a round.
        """
        start = self._sim.now
        self.announce_round([list(members)], predicate_id=predicate_id)
        outcome = self.poll_bin(0)
        return BackcastOutcome(
            nonempty=outcome.nonempty,
            superposition=outcome.superposition,
            start_us=start,
            end_us=outcome.end_us,
        )

    def _next_seq(self) -> int:
        seq = self._seq % 256
        self._seq += 1
        return seq

    def _on_ack(self, ack: AckFrame, superposition: int) -> None:
        self._ack_seen = ack
        self._superposition = superposition
