"""Repeat-count analysis for the probabilistic model (Eqs 9-10, Sec VI).

The probabilistic querying scheme repeats a single sampled-bin probe ``r``
times and thresholds the observed count of non-empty probes at the midpoint
``(m1 + m2) / 2``.  The paper bounds the failure probability with an
additive Chernoff inequality and inverts it (Eq 10) to size ``r``::

    r >= 2 * ln(1/delta) / (eps * ln(2e))

with ``eps = gap / 2`` where ``gap`` is the difference between the
non-empty probabilities of the two modes.  The worked example in the paper
(``n=128, mu1=16, mu2=96``: 19 repeats at ``delta=1%``, 12 at ``delta=5%``)
is reproduced exactly by :func:`paper_repeats` with the gap-optimal
sampling-bin size of :func:`optimal_sampling_bins` -- see
``tests/analytic/test_chernoff.py``.
"""

from __future__ import annotations

import math


def optimal_sampling_bins(t_l: float, t_r: float) -> float:
    """Sampling-bin count maximising mode separation.

    Each node joins the probe bin with probability ``1/b``; the bin is
    silent with probability ``s**x`` where ``s = 1 - 1/b``.  The gap
    ``s**t_l - s**t_r`` is maximised at ``s* = (t_l / t_r)^(1/(t_r - t_l))``
    (set the derivative to zero), giving ``b = 1 / (1 - s*)``.

    Args:
        t_l: Left boundary (``mu1 + 2*sigma1``); must be ``> 0`` and
            ``< t_r``.
        t_r: Right boundary (``mu2 - 2*sigma2``).

    Returns:
        The real-valued optimal bin count (``> 1``).

    Raises:
        ValueError: If boundaries are not ``0 < t_l < t_r``.
    """
    if not 0 < t_l < t_r:
        raise ValueError(f"need 0 < t_l < t_r, got t_l={t_l}, t_r={t_r}")
    s_star = (t_l / t_r) ** (1.0 / (t_r - t_l))
    return 1.0 / (1.0 - s_star)


def mode_nonempty_probs(b: float, t_l: float, t_r: float) -> tuple[float, float]:
    """Per-probe non-empty probabilities ``(q1, q2)`` for the two modes.

    ``q1 = 1 - (1 - 1/b)^t_l`` (Eq 7a, tight at ``x = t_l``) and
    ``q2 = 1 - (1 - 1/b)^t_r`` (Eq 7b, tight at ``x = t_r``).
    """
    if b <= 1:
        raise ValueError(f"sampling-bin count must be > 1, got {b}")
    s = 1.0 - 1.0 / b
    return 1.0 - s**t_l, 1.0 - s**t_r


def separation_gap(b: float, t_l: float, t_r: float) -> float:
    """Half-gap tolerance ``eps = (q2 - q1) / 2`` available to the decision."""
    q1, q2 = mode_nonempty_probs(b, t_l, t_r)
    return (q2 - q1) / 2.0


def failure_probability(eps: float, r: int) -> float:
    """Paper's Eq 9 failure bound: ``exp(-eps * r / 2)``.

    Args:
        eps: Tolerated deviation of the non-empty fraction (``> 0``).
        r: Number of repeats (``>= 1``).

    Returns:
        The one-sided failure-probability bound.
    """
    if eps <= 0:
        raise ValueError(f"eps must be > 0, got {eps}")
    if r < 1:
        raise ValueError(f"repeats must be >= 1, got {r}")
    return math.exp(-eps * r / 2.0)


def paper_repeats(delta: float, eps: float) -> int:
    """Eq 10: repeats for overall failure probability ``delta``.

    ``r = 2 * ln(1/delta) / (eps * ln(2e))``, rounded to the nearest
    integer.  Nearest (not ceiling) rounding is what reproduces both of the
    paper's worked numbers (``n=128, mu1=16, mu2=96``: the raw values are
    18.68 and 12.15 and the paper reports 19 and 12).

    Args:
        delta: Target overall failure probability in ``(0, 1)``.
        eps: Half-gap tolerance from :func:`separation_gap` (``> 0``).

    Returns:
        The Eq 10 repeat count (at least 1).
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    if eps <= 0:
        raise ValueError(f"eps must be > 0, got {eps}")
    r = 2.0 * math.log(1.0 / delta) / (eps * math.log(2.0 * math.e))
    return max(1, round(r))


def hoeffding_repeats(delta: float, eps: float) -> int:
    """Textbook two-sided Hoeffding sizing, for comparison with Eq 10.

    ``P(|X̄ - q| >= eps) <= 2 exp(-2 eps^2 r)`` gives
    ``r >= ln(2/delta) / (2 eps^2)``.  This is the rigorous bound for
    bounded i.i.d. indicators; the paper's Eq 10 is looser in ``eps`` but
    tighter for moderate gaps.  The ablation benchmark contrasts the two.

    Args:
        delta: Target overall failure probability in ``(0, 1)``.
        eps: Half-gap tolerance (``> 0``).

    Returns:
        The smallest integer ``r`` satisfying the bound (at least 1).
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    if eps <= 0:
        raise ValueError(f"eps must be > 0, got {eps}")
    r = math.log(2.0 / delta) / (2.0 * eps * eps)
    return max(1, math.ceil(r))
