"""Bimodal-workload separation analysis (Sec VI system model).

In intrusion-detection deployments the number of positive repliers ``x``
follows a *bimodal* mixture: a "no activity" mode ``N(mu1, sigma1^2)``
(false positives only, ``mu1 ~ 0``) and an "activity" mode
``N(mu2, sigma2^2)`` with ``mu2 >> mu1``.  The probabilistic querying
scheme's feasibility depends entirely on how separated the modes are;
this module packages that analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analytic.chernoff import (
    mode_nonempty_probs,
    optimal_sampling_bins,
    paper_repeats,
    separation_gap,
)


@dataclass(frozen=True)
class BimodalSpec:
    """Parameters of a bimodal positive-count distribution.

    Attributes:
        n: Population size (``x`` is clipped to ``[0, n]``).
        mu1: Mean of the quiet (false-positive) mode.
        sigma1: Standard deviation of the quiet mode.
        mu2: Mean of the activity mode.
        sigma2: Standard deviation of the activity mode.
        weight1: Mixture weight of the quiet mode in ``[0, 1]``.
    """

    n: int
    mu1: float
    sigma1: float
    mu2: float
    sigma2: float
    weight1: float = 0.5

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"population must be >= 1, got {self.n}")
        if self.sigma1 < 0 or self.sigma2 < 0:
            raise ValueError("standard deviations must be >= 0")
        if self.mu1 > self.mu2:
            raise ValueError(
                f"quiet mode mean ({self.mu1}) must not exceed "
                f"activity mode mean ({self.mu2})"
            )
        if not 0 <= self.weight1 <= 1:
            raise ValueError(f"weight1 must be in [0,1], got {self.weight1}")

    @property
    def t_l(self) -> float:
        """Left decision boundary ``mu1 + 2*sigma1`` (paper's choice)."""
        return self.mu1 + 2.0 * self.sigma1

    @property
    def t_r(self) -> float:
        """Right decision boundary ``mu2 - 2*sigma2`` (paper's choice)."""
        return self.mu2 - 2.0 * self.sigma2

    @property
    def half_distance(self) -> float:
        """Half peak distance ``d = (mu2 - mu1) / 2`` (Fig 9's x-axis)."""
        return (self.mu2 - self.mu1) / 2.0

    @property
    def separated(self) -> bool:
        """Whether the 2-sigma boundaries leave a usable gap (``t_l < t_r``).

        When ``False`` the probabilistic scheme has no tolerance band and
        Eq 10 is inapplicable (the paper's ``d ~ 8`` regime).
        """
        return 0.0 < self.t_l < self.t_r

    @classmethod
    def symmetric(
        cls, n: int, d: float, sigma: float, *, weight1: float = 0.5
    ) -> "BimodalSpec":
        """The Fig 9/10 family: ``mu1 = n/2 - d``, ``mu2 = n/2 + d``.

        Args:
            n: Population size.
            d: Half peak distance.
            sigma: Common standard deviation of both modes.
            weight1: Mixture weight of the quiet mode.
        """
        return cls(
            n=n,
            mu1=n / 2.0 - d,
            sigma1=sigma,
            mu2=n / 2.0 + d,
            sigma2=sigma,
            weight1=weight1,
        )


@dataclass(frozen=True)
class SeparationAnalysis:
    """Derived quantities for one :class:`BimodalSpec`.

    Attributes:
        spec: The analysed distribution.
        bins: Gap-optimal sampling-bin count ``b``.
        q1: Per-probe non-empty probability at ``x = t_l`` (Eq 7a bound).
        q2: Per-probe non-empty probability at ``x = t_r`` (Eq 7b bound).
        eps: Half-gap tolerance ``(q2 - q1)/2``.
        feasible: Whether a positive gap exists.
    """

    spec: BimodalSpec
    bins: float
    q1: float
    q2: float
    eps: float
    feasible: bool

    def repeats(self, delta: float) -> int:
        """Eq 10 repeat count for failure probability ``delta``.

        Raises:
            ValueError: If the spec is infeasible (no separation gap).
        """
        if not self.feasible:
            raise ValueError(
                "modes are not separated (t_l >= t_r); Eq 10 does not apply"
            )
        return paper_repeats(delta, self.eps)

    def decision_midpoint(self, r: int) -> float:
        """Count threshold ``(m1 + m2) / 2`` for ``r`` repeats.

        ``m1 = r*q1`` and ``m2 = r*q2`` per Eqs 8a/8b; the final decision
        compares the observed non-empty count against this midpoint.
        """
        if r < 1:
            raise ValueError(f"repeats must be >= 1, got {r}")
        return r * (self.q1 + self.q2) / 2.0


def analyze_separation(spec: BimodalSpec) -> SeparationAnalysis:
    """Compute the gap-optimal probe design for ``spec``.

    When the spec is not separated, returns an infeasible analysis with a
    degenerate probe (``b`` chosen at the midpoint scale, zero gap) so
    that callers can still run the scheme and observe its failure -- this
    is exactly what Fig 9's low-``d`` points measure.
    """
    if spec.separated:
        b = optimal_sampling_bins(spec.t_l, spec.t_r)
        q1, q2 = mode_nonempty_probs(b, spec.t_l, spec.t_r)
        eps = separation_gap(b, spec.t_l, spec.t_r)
        return SeparationAnalysis(
            spec=spec, bins=b, q1=q1, q2=q2, eps=eps, feasible=True
        )
    # Degenerate fallback: probe sized against the mode means themselves.
    lo = max(spec.mu1, 1.0)
    hi = max(spec.mu2, lo + 1e-9)
    if hi > lo:
        b = optimal_sampling_bins(lo, hi)
        q1, q2 = mode_nonempty_probs(b, lo, hi)
    else:  # identical means: nothing to separate
        b = max(2.0, math.sqrt(spec.n))
        q1, q2 = mode_nonempty_probs(b, lo, hi)
    return SeparationAnalysis(
        spec=spec, bins=b, q1=q1, q2=q2, eps=max((q2 - q1) / 2.0, 0.0), feasible=False
    )
