"""Closed-form results from the paper.

* :mod:`repro.analytic.bins` -- Eq 2 (elimination yield ``g(b)``),
  Eq 4 (optimal bin count ``b = p + 1``), Eq 5 (expected empty bins) and
  Eq 6 (the ``p`` estimator), plus the Sec V-C oracle bin formula.
* :mod:`repro.analytic.bounds` -- the ``2t log(N/2t)`` upper bound and the
  ``Ω(t log(N/t)/log t)`` lower bound on query counts (Sec II-A/IV-A).
* :mod:`repro.analytic.chernoff` -- Eq 9/10 repeat-count calculations for
  the probabilistic model.
* :mod:`repro.analytic.bimodal` -- bimodal-separation quantities of Sec VI
  (``t_l``, ``t_r``, the silent-probability gap, ``m1``, ``m2``, ``Δ``).
* :mod:`repro.analytic.cost_model` -- a mean-field average-case cost model
  for 2tBins (beyond the paper, validated against its simulations).
* :mod:`repro.analytic.sequential_model` -- the exact expected slot cost
  of the sequential-ordering baseline (hypergeometric survival sum).
"""

from repro.analytic.bimodal import BimodalSpec, SeparationAnalysis, analyze_separation
from repro.analytic.bins import (
    elimination_yield,
    estimate_positives,
    expected_empty_bins,
    optimal_bins,
    oracle_bins,
    prob_bin_empty,
)
from repro.analytic.bounds import (
    lower_bound_queries,
    upper_bound_queries,
    worst_case_rounds,
)
from repro.analytic.cost_model import (
    anchor_cost_all_negative,
    anchor_cost_all_positive,
    expected_queries_2tbins,
    expected_rounds_2tbins,
)
from repro.analytic.sequential_model import (
    anchor_all_negative,
    anchor_order_statistic,
    expected_slots_sequential,
)
from repro.analytic.chernoff import (
    failure_probability,
    hoeffding_repeats,
    optimal_sampling_bins,
    paper_repeats,
)

__all__ = [
    "BimodalSpec",
    "anchor_all_negative",
    "anchor_cost_all_negative",
    "anchor_cost_all_positive",
    "anchor_order_statistic",
    "expected_slots_sequential",
    "expected_queries_2tbins",
    "expected_rounds_2tbins",
    "SeparationAnalysis",
    "analyze_separation",
    "elimination_yield",
    "estimate_positives",
    "expected_empty_bins",
    "failure_probability",
    "hoeffding_repeats",
    "lower_bound_queries",
    "optimal_bins",
    "optimal_sampling_bins",
    "oracle_bins",
    "paper_repeats",
    "prob_bin_empty",
    "upper_bound_queries",
    "worst_case_rounds",
]
