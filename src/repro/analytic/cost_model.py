"""Mean-field expected-cost model for the 2tBins algorithm.

The paper reports simulated average costs (Fig 1) and worst-case bounds
(Sec IV-A) but no average-case closed form.  This module derives one by
mean-field iteration, tracking the expected candidate count round by
round.  With ``b`` bins over ``n_c`` candidates of which ``x`` are
positive (positives are never eliminated, so ``x`` is invariant):

* bins are balanced (sizes differ by at most one), so a bin of size
  ``s = n_c / b`` is empty iff all ``s`` members are negative:
  ``q = ((n_c - x) / n_c) ** s``.  (Eq 2's multinomial form
  ``(1 - 1/b)**x`` is equivalent for large ``n_c`` but breaks down once
  bins shrink to singletons, where the balanced form correctly gives
  ``q -> (n_c - x)/n_c``.)  A given *negative* survives the round with
  probability ``1 - q``;
* if the expected non-empty bin count ``b(1-q)`` reaches ``t``, the
  round terminates positively after a negative-binomial expected
  ``t / (1-q)`` queries;
* if ``x < t``, the round stops negatively as soon as enough negatives
  are eliminated for ``|candidates| < t``, at ``q * n_c/b`` expected
  eliminations per query.

Accuracy (validated in ``tests/analytic/test_cost_model.py``): within
~10 % of the simulated means in the regimes the paper calls common
(``x << t`` and ``x >> t``), and it recovers the paper's two closed-form
anchors (``x = 0`` -> ``(n-t)/(n/2t)``; ``x = n`` -> ``t``) almost
exactly.  Around the critical point ``x ~ t`` the model is biased *high*
(up to ~2x): the deterministic recursion cannot exploit the variance
that lets many real runs terminate early, so it is a sound pessimistic
estimate exactly where the paper says the problem is hardest.
"""

from __future__ import annotations

from repro.analytic.bounds import upper_bound_queries


def expected_queries_2tbins(n: int, x: int, t: int) -> float:
    """Mean-field expected query cost of 2tBins.

    Args:
        n: Population size (``>= 0``).
        x: True positive count, ``0 <= x <= n``.
        t: Threshold (``>= 0``).

    Returns:
        The model's expected number of queries.

    Raises:
        ValueError: On inconsistent arguments.
    """
    if n < 0:
        raise ValueError(f"population must be >= 0, got {n}")
    if not 0 <= x <= n:
        raise ValueError(f"x must be in [0, {n}], got {x}")
    if t < 0:
        raise ValueError(f"threshold must be >= 0, got {t}")
    if t == 0 or n < t:
        return 0.0

    # The real algorithm provably never exceeds the worst-case bound, so
    # the mean-field estimate is clipped to it (the deterministic
    # recursion can otherwise pile up full rounds at the critical point
    # x ~ t, where the halving argument is stochastic, not mean-field).
    ceiling = float(upper_bound_queries(n, t))

    cost = 0.0
    n_c = float(n)
    for _ in range(10_000):
        b = max(2.0, min(2.0 * t, n_c))
        bin_size = n_c / b
        q = (max(n_c - x, 0.0) / n_c) ** bin_size
        p = 1.0 - q

        if x >= t and b * p >= t:
            # Expected queries until the t-th non-empty bin of the round.
            return min(cost + min(b, t / p), ceiling)

        if x < t:
            # Eliminations needed before |candidates| < t; each query
            # removes q * bin_size negatives in expectation.
            needed = n_c - t + 1.0
            if q > 0:
                per_query = q * bin_size
                queries_needed = needed / per_query
                if queries_needed <= b:
                    return min(cost + queries_needed, ceiling)

        # Full round: all b bins queried, negatives thinned by q.
        cost += b
        if cost >= ceiling:
            return ceiling
        survivors = x + (n_c - x) * p
        if survivors >= n_c - 1e-9:
            # No expected progress (all bins non-empty in expectation):
            # dominated by the x >= t branch next rounds; guard against
            # a stall by forcing minimal thinning.
            survivors = n_c - 1e-6
        n_c = survivors
        if n_c < t:
            return cost
    raise RuntimeError("mean-field iteration did not converge")  # pragma: no cover


def expected_rounds_2tbins(n: int, x: int, t: int) -> float:
    """Mean-field expected number of (possibly partial) rounds.

    Same recursion as :func:`expected_queries_2tbins`, counting rounds.
    """
    if n < 0:
        raise ValueError(f"population must be >= 0, got {n}")
    if not 0 <= x <= n:
        raise ValueError(f"x must be in [0, {n}], got {x}")
    if t < 0:
        raise ValueError(f"threshold must be >= 0, got {t}")
    if t == 0 or n < t:
        return 0.0
    rounds = 0.0
    n_c = float(n)
    for _ in range(10_000):
        b = max(2.0, min(2.0 * t, n_c))
        bin_size = n_c / b
        q = (max(n_c - x, 0.0) / n_c) ** bin_size
        p = 1.0 - q
        rounds += 1.0
        if x >= t and b * p >= t:
            return rounds
        if x < t and q > 0:
            needed = n_c - t + 1.0
            if needed / (q * bin_size) <= b:
                return rounds
        survivors = x + (n_c - x) * p
        if survivors >= n_c - 1e-9:
            survivors = n_c - 1e-6
        n_c = survivors
        if n_c < t:
            return rounds
    raise RuntimeError("mean-field iteration did not converge")  # pragma: no cover


def anchor_cost_all_negative(n: int, t: int) -> float:
    """The paper's ``x = 0`` closed form: ``(n - t) / (n / 2t)`` queries."""
    if t < 1 or n < 1:
        raise ValueError("need n >= 1 and t >= 1")
    if n <= t:
        return 0.0
    return (n - t) / (n / (2.0 * t))


def anchor_cost_all_positive(t: int) -> float:
    """The paper's ``x = n`` closed form: exactly ``t`` queries."""
    if t < 0:
        raise ValueError(f"threshold must be >= 0, got {t}")
    return float(t)
