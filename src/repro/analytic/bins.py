"""Bin-count mathematics (Sec V-A of the paper).

All functions here are pure and vectorisation-friendly: scalar arguments in,
scalar floats out, no randomness.  They are the analytical backbone of the
ABNS algorithm and the oracle baseline.
"""

from __future__ import annotations

import math


def prob_bin_empty(b: float, p: float) -> float:
    """Probability that one particular bin out of ``b`` is empty.

    With ``p`` positive nodes each landing in a uniformly random bin,
    a given bin receives no positive node with probability
    ``(1 - 1/b)**p`` (the factor inside Eq 2).

    Args:
        b: Number of bins (``>= 1``).
        p: Number (or estimate) of positive nodes (``>= 0``).

    Returns:
        The empty probability in ``[0, 1]``.

    Raises:
        ValueError: If ``b < 1`` or ``p < 0``.
    """
    if b < 1:
        raise ValueError(f"bin count must be >= 1, got {b}")
    if p < 0:
        raise ValueError(f"positive count must be >= 0, got {p}")
    if b == 1:
        return 1.0 if p == 0 else 0.0
    return (1.0 - 1.0 / b) ** p


def elimination_yield(b: float, p: float, n: float) -> float:
    """Expected nodes eliminated by one bin query -- ``g(b)`` of Eq 2.

    ``g(b) = (1 - 1/b)^p * n / b``: the probability the queried bin is
    empty times its expected size.  ABNS maximises this quantity.

    Args:
        b: Number of bins (``>= 1``).
        p: Estimated positive count.
        n: Remaining candidate population size.

    Returns:
        Expected eliminated-node count for a single query.
    """
    if n < 0:
        raise ValueError(f"population must be >= 0, got {n}")
    return prob_bin_empty(b, p) * (n / b)


def optimal_bins(p: float) -> int:
    """Optimal bin count for elimination, Eq 4: ``b = p + 1``.

    Derived by setting ``dg/db = 0``; independent of ``n`` and ``t``.
    Only meaningful while ``p < t`` (the elimination regime) -- see
    :func:`oracle_bins` for the confirmation regime.

    Args:
        p: Estimated positive count (``>= 0``).

    Returns:
        ``round(p) + 1``, at least 1.
    """
    if p < 0:
        raise ValueError(f"positive estimate must be >= 0, got {p}")
    return max(1, int(round(p)) + 1)


def expected_empty_bins(b: float, p: float) -> float:
    """Expected number of empty bins in a round, Eq 5.

    ``e_expected = (1 - 1/b)^p * b``.
    """
    if b < 1:
        raise ValueError(f"bin count must be >= 1, got {b}")
    return prob_bin_empty(b, p) * b

def estimate_positives(
    empty_bins: float,
    b: int,
    *,
    max_estimate: float = math.inf,
) -> float:
    """Invert Eq 5 to estimate ``p`` from an observed empty-bin count (Eq 6).

    ``p = (log e_real - log b) / log(1 - 1/b)``.

    The raw formula is singular when ``empty_bins == 0`` (suggests
    ``p = inf``) and degenerate when ``b == 1``.  Following DESIGN.md we
    guard both: an observation of zero empty bins is replaced by 0.5
    (half a bin), and ``b == 1`` returns 0 for an empty observation or
    ``max_estimate``-clamped infinity otherwise.

    Args:
        empty_bins: Observed number of empty bins, in ``[0, b]``.
        b: Number of bins queried.
        max_estimate: Upper clamp for the returned estimate (callers pass
            the remaining candidate count).

    Returns:
        A non-negative estimate of the number of positive nodes, clamped
        to ``[0, max_estimate]``.

    Raises:
        ValueError: If ``empty_bins`` is outside ``[0, b]`` or ``b < 1``.
    """
    if b < 1:
        raise ValueError(f"bin count must be >= 1, got {b}")
    if not 0 <= empty_bins <= b:
        raise ValueError(f"empty_bins must be in [0, {b}], got {empty_bins}")
    if b == 1:
        return 0.0 if empty_bins >= 1 else min(max_estimate, float(b))
    e_real = max(float(empty_bins), 0.5)
    estimate = (math.log(e_real) - math.log(b)) / math.log(1.0 - 1.0 / b)
    return float(min(max(estimate, 0.0), max_estimate))


def oracle_bins(x: int, t: int, n: int) -> int:
    """Oracle bin count given perfect knowledge of ``x`` (Sec V-C).

    The paper interpolates three anchor points::

        b = x + 1                      if x <= t/2   (elimination regime)
        b = 3x - t                     if t/2 < x <= t (hard region ~ 2t)
        b = t * (1 + (n - x)/(n - t + 1))  if x > t  (confirmation regime)

    Args:
        x: True positive count.
        t: Threshold.
        n: Population size.

    Returns:
        The oracle's bin count for the first round, at least 1.

    Raises:
        ValueError: On non-positive ``t``/``n``, ``x`` outside ``[0, n]``,
            or ``t > n`` (the query is then trivially false anyway).
    """
    if t < 1:
        raise ValueError(f"threshold must be >= 1, got {t}")
    if n < 1:
        raise ValueError(f"population must be >= 1, got {n}")
    if not 0 <= x <= n:
        raise ValueError(f"x must be in [0, {n}], got {x}")
    if x <= t / 2:
        b = x + 1
    elif x <= t:
        b = 3 * x - t
    else:
        b = t * (1.0 + (n - x) / (n - t + 1.0))
    return max(1, int(round(b)))
