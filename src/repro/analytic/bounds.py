"""Query-complexity bounds for threshold querying (Sec II-A / IV-A).

The companion theory paper (Aspnes et al., "k+ decision trees") proves that
``O(t log(N/t))`` queries suffice and ``Ω(t log(N/t)/log t)`` are necessary
for the threshold function.  The 2tBins algorithm realises the upper bound
with the concrete constant ``2t * log2(N / 2t)`` rounds-times-bins structure
described in Sec IV-A.  These bounds are used as hard assertions in the
property-test suite: no simulated run may exceed the upper bound.
"""

from __future__ import annotations

import math


def worst_case_rounds(n: int, t: int) -> int:
    """Worst-case number of 2tBins rounds: ``ceil(log2(N / 2t))``, >= 1.

    Each unresolved round at least halves the candidate set (at least ``t``
    of the ``2t`` bins were silent), and the algorithm terminates once the
    candidate count drops below ``2t``.

    Args:
        n: Number of participant nodes (``>= 1``).
        t: Threshold (``>= 1``).

    Returns:
        The round bound (at least 1).
    """
    if n < 1:
        raise ValueError(f"population must be >= 1, got {n}")
    if t < 1:
        raise ValueError(f"threshold must be >= 1, got {t}")
    if n <= 2 * t:
        return 1
    return max(1, math.ceil(math.log2(n / (2.0 * t))))


def upper_bound_queries(n: int, t: int) -> int:
    """Concrete worst-case query bound for 2tBins: ``2t * (rounds + 1)``.

    Sec IV-A states ``2t * log(N/2t)`` for the asymptotic regime; we add one
    extra round of slack to cover the final sub-``2t`` round and rounding,
    so that the bound is a *sound* invariant for every input (verified by
    the property tests across the full parameter grid).

    Args:
        n: Number of participant nodes.
        t: Threshold.

    Returns:
        An integer upper bound on the number of queries 2tBins may issue.
    """
    return 2 * t * (worst_case_rounds(n, t) + 1)


def lower_bound_queries(n: int, t: int) -> float:
    """Asymptotic lower bound ``t * log2(n/t) / log2(t)`` (constant 1).

    From Aspnes et al.: any algorithm needs ``Ω(t log(n/t)/log t)`` queries
    in the worst case.  Returned with constant factor 1 and ``log2``;
    callers should treat it as an order-of-magnitude floor, not a sharp
    per-input bound (it is a worst-case statement).

    Args:
        n: Number of participant nodes.
        t: Threshold (``>= 1``).

    Returns:
        The lower-bound value (``>= 0``); 0 when ``t >= n``.
    """
    if n < 1:
        raise ValueError(f"population must be >= 1, got {n}")
    if t < 1:
        raise ValueError(f"threshold must be >= 1, got {t}")
    if t >= n:
        return 0.0
    denom = max(math.log2(t), 1.0)
    return t * math.log2(n / t) / denom
