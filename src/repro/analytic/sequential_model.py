"""Exact expected-cost model for sequential (TDMA) ordering.

The sequential baseline's stopping time is a deterministic function of
the positive positions in the (uniformly shuffled) schedule, so its
expectation can be computed exactly by summing survival probabilities
over the hypergeometric distribution of positives among slot prefixes::

    E[slots] = sum_{i >= 0} P(session still running after slot i)

After slot ``i`` the session is still running iff the positives seen so
far ``S_i`` satisfy both early-exit negations: ``S_i < t`` (no positive
verdict yet) and ``S_i + (n - i) >= t`` (the negative verdict has not
triggered).  ``S_i`` is hypergeometric over ``(n, x, i)``.

These exact values back the Fig 1 sequential curve's anchors -- the
``n - t + 1`` plateau at ``x = 0``, the ``t`` floor at ``x = n``, and the
``t (n + 1) / (x + 1)`` order-statistic mean in between -- and the
validation tests compare them against the simulated baseline.
"""

from __future__ import annotations

import math


def _log_comb(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def _hypergeom_pmf(n: int, x: int, i: int, s: int) -> float:
    """P(exactly ``s`` positives among the first ``i`` of ``n`` slots)."""
    if s < 0 or s > x or i - s > n - x or i - s < 0:
        return 0.0
    return math.exp(
        _log_comb(x, s) + _log_comb(n - x, i - s) - _log_comb(n, i)
    )


def expected_slots_sequential(n: int, x: int, t: int) -> float:
    """Exact expected slot cost of sequential ordering.

    Args:
        n: Population size (``>= 0``).
        x: True positive count, ``0 <= x <= n``.
        t: Threshold (``>= 0``).

    Returns:
        The exact expectation of the baseline's early-terminated slot
        count under a uniformly random schedule.

    Raises:
        ValueError: On inconsistent arguments.
    """
    if n < 0:
        raise ValueError(f"population must be >= 0, got {n}")
    if not 0 <= x <= n:
        raise ValueError(f"x must be in [0, {n}], got {x}")
    if t < 0:
        raise ValueError(f"threshold must be >= 0, got {t}")
    if t == 0 or t > n:
        return 0.0

    expected = 0.0
    for i in range(0, n):
        # P(still running after slot i) = P(S_i < t AND S_i >= t - (n - i)).
        s_lo = max(0, t - (n - i))
        p_running = sum(
            _hypergeom_pmf(n, x, i, s) for s in range(s_lo, min(t, x + 1))
        )
        expected += p_running
    return expected


def anchor_all_negative(n: int, t: int) -> int:
    """``x = 0`` closed form: the scan stops at slot ``n - t + 1``."""
    if t < 1 or t > n:
        raise ValueError(f"need 1 <= t <= n, got t={t}, n={n}")
    return n - t + 1


def anchor_order_statistic(n: int, x: int, t: int) -> float:
    """``x >= t`` closed form: mean position of the ``t``-th positive.

    The ``t``-th of ``x`` uniformly placed positives sits at
    ``t (n + 1) / (x + 1)`` in expectation -- the dominant term of
    :func:`expected_slots_sequential` once the positive verdict is the
    likely exit.

    Raises:
        ValueError: Unless ``1 <= t <= x <= n``.
    """
    if not 1 <= t <= x <= n:
        raise ValueError(f"need 1 <= t <= x <= n, got t={t}, x={x}, n={n}")
    return t * (n + 1) / (x + 1)
