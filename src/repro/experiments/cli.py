"""``tcast-experiments``: regenerate the paper's figures from the shell.

Examples::

    tcast-experiments list
    tcast-experiments run fig01 --runs 1000 --jobs 4
    tcast-experiments run all --runs 200 --out results/ --no-cache
    tcast-experiments cache info
    tcast-experiments cache clear

Finished results are cached under ``results/cache/`` keyed by
(experiment, config, seed, code version); re-running an unchanged
configuration loads from disk.  ``--no-cache`` bypasses the cache both
ways, ``--jobs N`` shards sweep trials over ``N`` worker processes
(``--jobs 0`` = all CPUs) with bit-identical results, and
``--metrics out.json`` collects per-layer runtime counters (queries,
retries, cache hits, shard timings) merged across worker processes --
without changing a single result byte.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.experiments.registry import list_experiments, run_experiment
from repro.obs import get_registry


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="tcast-experiments",
        description="Reproduce the tcast paper's evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_shared(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--runs", type=int, default=None, help="repetitions per grid point"
        )
        p.add_argument("--seed", type=int, default=None, help="root seed")
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes for sweeps (0 = all CPUs; default serial)",
        )
        p.add_argument(
            "--metrics",
            type=pathlib.Path,
            default=None,
            metavar="OUT.json",
            help="collect runtime metrics and write the merged snapshot "
            "as JSON to this path (default: metrics disabled)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="neither read nor write the on-disk result cache",
        )
        p.add_argument(
            "--cache-dir",
            type=pathlib.Path,
            default=DEFAULT_CACHE_DIR,
            help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
        )

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="figure id (e.g. fig01) or 'all'")
    add_shared(run_p)
    run_p.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write <figid>.csv and <figid>.txt into",
    )

    rep_p = sub.add_parser(
        "report",
        help="regenerate every figure and grade the paper's claims",
    )
    add_shared(rep_p)
    rep_p.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="file to write the graded report into",
    )

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_p.add_argument("action", choices=["info", "clear"])
    cache_p.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    return parser


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    return None if args.no_cache else ResultCache(args.cache_dir)


def _start_metrics(path: Optional[pathlib.Path]) -> bool:
    """Arm the process-wide metrics registry when ``--metrics`` was given."""
    if path is None:
        return False
    registry = get_registry()
    registry.reset()
    registry.enable()
    return True


def _finish_metrics(path: Optional[pathlib.Path]) -> None:
    """Write the merged snapshot to ``path`` and disarm the registry."""
    if path is None:
        return
    registry = get_registry()
    snapshot = registry.snapshot()
    registry.disable()
    registry.reset()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(snapshot.to_json(indent=2) + "\n")
    print(f"[metrics written to {path}]")


def _run_one(
    exp_id: str,
    runs: Optional[int],
    seed: Optional[int],
    out: Optional[pathlib.Path],
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> None:
    kwargs = {}
    if runs is not None:
        kwargs["runs"] = runs
    if seed is not None:
        kwargs["seed"] = seed
    started = time.perf_counter()  # tcast-lint: disable=TCL002 -- wall-clock banner for the operator, not simulation time
    result, from_cache = run_experiment(
        exp_id, cache=cache, jobs=jobs, **kwargs
    )
    elapsed = time.perf_counter() - started  # tcast-lint: disable=TCL002 -- wall-clock banner for the operator, not simulation time
    print(result.report())
    source = "cache" if from_cache else "computed"
    print(f"[{exp_id} completed in {elapsed:.1f}s ({source})]")
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{exp_id}.csv").write_text(result.to_csv() + "\n")
        (out / f"{exp_id}.txt").write_text(result.report() + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0
    if args.command == "run":
        targets = (
            list_experiments() if args.experiment == "all" else [args.experiment]
        )
        cache = _make_cache(args)
        _start_metrics(args.metrics)
        try:
            for exp_id in targets:
                _run_one(
                    exp_id,
                    args.runs,
                    args.seed,
                    args.out,
                    jobs=args.jobs,
                    cache=cache,
                )
        finally:
            _finish_metrics(args.metrics)
        return 0
    if args.command == "report":
        from repro.experiments.report import generate_report

        _start_metrics(args.metrics)
        try:
            text = generate_report(
                runs=args.runs,
                seed=args.seed,
                jobs=args.jobs,
                cache=_make_cache(args),
            )
        finally:
            _finish_metrics(args.metrics)
        print(text)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text + "\n")
        return 0 if "ATTENTION" not in text else 1
    if args.command == "cache":
        cache = ResultCache(args.cache_dir)
        if args.action == "clear":
            removed = cache.clear()
            print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
        else:
            print(f"cache directory: {cache.directory}")
            print(f"entries: {cache.entry_count()}")
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
