"""``tcast-experiments``: regenerate the paper's figures from the shell.

Examples::

    tcast-experiments list
    tcast-experiments run fig01 --runs 1000
    tcast-experiments run all --runs 200 --out results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.experiments.registry import get_experiment, list_experiments


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="tcast-experiments",
        description="Reproduce the tcast paper's evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="figure id (e.g. fig01) or 'all'")
    run_p.add_argument(
        "--runs", type=int, default=None, help="repetitions per grid point"
    )
    run_p.add_argument("--seed", type=int, default=None, help="root seed")
    run_p.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write <figid>.csv and <figid>.txt into",
    )

    rep_p = sub.add_parser(
        "report",
        help="regenerate every figure and grade the paper's claims",
    )
    rep_p.add_argument(
        "--runs", type=int, default=None, help="repetitions per grid point"
    )
    rep_p.add_argument("--seed", type=int, default=None, help="root seed")
    rep_p.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="file to write the graded report into",
    )
    return parser


def _run_one(
    exp_id: str,
    runs: Optional[int],
    seed: Optional[int],
    out: Optional[pathlib.Path],
) -> None:
    runner = get_experiment(exp_id)
    kwargs = {}
    if runs is not None:
        kwargs["runs"] = runs
    if seed is not None:
        kwargs["seed"] = seed
    started = time.perf_counter()
    result = runner(**kwargs)
    elapsed = time.perf_counter() - started
    print(result.report())
    print(f"[{exp_id} completed in {elapsed:.1f}s]")
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{exp_id}.csv").write_text(result.to_csv() + "\n")
        (out / f"{exp_id}.txt").write_text(result.report() + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0
    if args.command == "run":
        targets = (
            list_experiments() if args.experiment == "all" else [args.experiment]
        )
        for exp_id in targets:
            _run_one(exp_id, args.runs, args.seed, args.out)
        return 0
    if args.command == "report":
        from repro.experiments.report import generate_report

        text = generate_report(runs=args.runs, seed=args.seed)
        print(text)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text + "\n")
        return 0 if "ATTENTION" not in text else 1
    return 2  # pragma: no cover - argparse enforces the subcommands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
