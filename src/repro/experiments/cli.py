"""``tcast-experiments``: regenerate the paper's figures from the shell.

Examples::

    tcast-experiments list
    tcast-experiments run fig01 --runs 1000 --jobs 4
    tcast-experiments run all --runs 200 --out results/ --no-cache
    tcast-experiments run fig09 --runs 1000 --jobs 4 --resume
    tcast-experiments cache info
    tcast-experiments cache clear
    tcast-experiments journal info

Finished results are cached under ``results/cache/`` keyed by
(experiment, config, seed, code version); re-running an unchanged
configuration loads from disk.  ``--no-cache`` bypasses the cache both
ways, ``--jobs N`` shards sweep trials over ``N`` worker processes
(``--jobs 0`` = all CPUs) with bit-identical results, and
``--metrics out.json`` collects per-layer runtime counters (queries,
retries, cache hits, shard timings) merged across worker processes --
without changing a single result byte.

``run`` executes crash-safely (see DESIGN.md "Resilient execution"):
completed sweep shards are journalled under ``results/journal/``,
worker crashes and hangs are detected and retried, and SIGINT/SIGTERM
drain in-flight work, flush the journal and the metrics snapshot, and
print the exact ``--resume`` command.  ``--resume`` replays the journal
and recomputes only what is missing; the finished CSV is byte-identical
to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import shlex
import signal
import sys
import time
from typing import List, Optional, Sequence

from repro.experiments import resilience
from repro.experiments.atomicio import atomic_write_text
from repro.experiments.common import set_vectorized_dispatch
from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from repro.experiments.registry import list_experiments, run_experiment
from repro.obs import get_registry

#: Default run-journal directory, sibling of the result cache.
DEFAULT_JOURNAL_DIR = pathlib.Path("results") / "journal"

#: Default spool directory for ``--backend farm`` runs.
DEFAULT_SPOOL_DIR = pathlib.Path("results") / "spool"


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="tcast-experiments",
        description="Reproduce the tcast paper's evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_shared(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--runs", type=int, default=None, help="repetitions per grid point"
        )
        p.add_argument("--seed", type=int, default=None, help="root seed")
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes for sweeps (0 = all CPUs; default serial)",
        )
        p.add_argument(
            "--metrics",
            type=pathlib.Path,
            default=None,
            metavar="OUT.json",
            help="collect runtime metrics and write the merged snapshot "
            "as JSON to this path (default: metrics disabled)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="neither read nor write the on-disk result cache",
        )
        p.add_argument(
            "--no-vectorize",
            action="store_true",
            help="force every sweep cell onto the scalar oracle path "
            "instead of the bit-identical vectorized kernel (parity "
            "debugging; results never differ, only throughput)",
        )
        p.add_argument(
            "--cache-dir",
            type=pathlib.Path,
            default=DEFAULT_CACHE_DIR,
            help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
        )

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="figure id (e.g. fig01) or 'all'")
    add_shared(run_p)
    run_p.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write <figid>.csv and <figid>.txt into",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="replay the run journal of an interrupted run and compute "
        "only the missing shards (byte-identical final output)",
    )
    run_p.add_argument(
        "--journal-dir",
        type=pathlib.Path,
        default=DEFAULT_JOURNAL_DIR,
        help=f"run-journal directory (default: {DEFAULT_JOURNAL_DIR})",
    )
    run_p.add_argument(
        "--no-journal",
        action="store_true",
        help="disable shard journalling and worker supervision",
    )
    run_p.add_argument(
        "--backend",
        choices=["local", "farm"],
        default="local",
        help="execution backend: 'local' process pool (default) or a "
        "'farm' of coordinator-leased worker processes sharing a spool "
        "directory (requires the run journal; byte-identical output)",
    )
    run_p.add_argument(
        "--spool-dir",
        type=pathlib.Path,
        default=DEFAULT_SPOOL_DIR,
        help=f"farm spool directory (default: {DEFAULT_SPOOL_DIR})",
    )

    rep_p = sub.add_parser(
        "report",
        help="regenerate every figure and grade the paper's claims",
    )
    add_shared(rep_p)
    rep_p.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="file to write the graded report into",
    )

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_p.add_argument("action", choices=["info", "clear"])
    cache_p.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )

    farm_p = sub.add_parser(
        "farm", help="sweep-farm utilities (see --backend farm)"
    )
    farm_sub = farm_p.add_subparsers(dest="farm_command", required=True)
    fw_p = farm_sub.add_parser(
        "worker",
        help="run one farm worker against a coordinator's spool directory",
    )
    fw_p.add_argument(
        "--spool",
        type=pathlib.Path,
        required=True,
        help="the coordinator's spool directory for this run",
    )
    fw_p.add_argument(
        "--worker-id",
        default=None,
        help="farm-wide unique worker id (default: w<pid>)",
    )
    fw_p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        help="seconds between lease heartbeat touches",
    )
    fw_p.add_argument(
        "--coordinator-grace",
        type=float,
        default=None,
        help="stale-coordinator seconds tolerated before exiting "
        "(0 disables the check)",
    )

    j_p = sub.add_parser(
        "journal", help="inspect or clear interrupted-run journals"
    )
    j_p.add_argument("action", choices=["info", "clear"])
    j_p.add_argument(
        "--journal-dir",
        type=pathlib.Path,
        default=DEFAULT_JOURNAL_DIR,
        help=f"run-journal directory (default: {DEFAULT_JOURNAL_DIR})",
    )
    return parser


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    return None if args.no_cache else ResultCache(args.cache_dir)


def _start_metrics(path: Optional[pathlib.Path]) -> bool:
    """Arm the process-wide metrics registry when ``--metrics`` was given."""
    if path is None:
        return False
    registry = get_registry()
    registry.reset()
    registry.enable()
    return True


def _finish_metrics(path: Optional[pathlib.Path]) -> None:
    """Write the merged snapshot to ``path`` and disarm the registry.

    Runs from ``finally`` blocks, so the snapshot also lands on
    graceful SIGINT/SIGTERM shutdown; the write is atomic so an
    ill-timed second interrupt cannot leave a truncated JSON file.
    """
    if path is None:
        return
    registry = get_registry()
    snapshot = registry.snapshot()
    registry.disable()
    registry.reset()
    atomic_write_text(path, snapshot.to_json(indent=2) + "\n")
    print(f"[metrics written to {path}]")


def _journal_path(
    journal_dir: pathlib.Path, exp_id: str, key: str
) -> pathlib.Path:
    return journal_dir / f"{exp_id}-{key[:16]}.journal"


def _run_one(
    exp_id: str,
    runs: Optional[int],
    seed: Optional[int],
    out: Optional[pathlib.Path],
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    resume: bool = False,
    journal_dir: Optional[pathlib.Path] = None,
    backend: str = "local",
    spool_dir: Optional[pathlib.Path] = None,
) -> List[str]:
    """Run one experiment; returns quarantined-shard descriptions (if any)."""
    kwargs = {}
    if runs is not None:
        kwargs["runs"] = runs
    if seed is not None:
        kwargs["seed"] = seed
    ctx: Optional[resilience.RunContext] = None
    farm = None
    if journal_dir is not None:
        params = dict(kwargs)
        if jobs is not None:
            params["jobs"] = jobs
        params["backend"] = backend
        key = cache_key(exp_id, params)
        journal = resilience.ShardJournal(
            _journal_path(journal_dir, exp_id, key),
            exp_id=exp_id,
            key=key,
            resume=resume,
        )
        if resume and journal.resumed_records:
            print(
                f"[{exp_id}: resuming, {journal.resumed_records} journalled "
                f"shard(s) replayed"
                + (
                    f", {journal.dropped_records} torn record(s) dropped]"
                    if journal.dropped_records
                    else "]"
                )
            )
        ctx = resilience.RunContext(journal=journal, resumed=resume)
        if backend == "farm":
            from repro.experiments.common import resolve_jobs
            from repro.farm import FarmCoordinator

            root = (spool_dir or DEFAULT_SPOOL_DIR) / f"{exp_id}-{key[:16]}"
            farm = FarmCoordinator(
                root,
                exp_id=exp_id,
                run_key=key,
                workers=resolve_jobs(jobs),
                supervision=ctx.policy,
                resume=resume,
            )
            ctx.farm = farm
    started = time.perf_counter()  # tcast-lint: disable=TCL002 -- wall-clock banner for the operator, not simulation time
    with (
        farm if farm is not None else contextlib.nullcontext()
    ), (
        resilience.activate(ctx)
        if ctx is not None
        else contextlib.nullcontext()
    ):
        if farm is not None and resume and farm.resumed_shards:
            print(
                f"[{exp_id}: farm store seeded with "
                f"{farm.resumed_shards} completed shard(s)]"
            )
        result, from_cache = run_experiment(
            exp_id, cache=cache, jobs=jobs, **kwargs
        )
    elapsed = time.perf_counter() - started  # tcast-lint: disable=TCL002 -- wall-clock banner for the operator, not simulation time
    print(result.report())
    source = "cache" if from_cache else "computed"
    print(f"[{exp_id} completed in {elapsed:.1f}s ({source})]")
    degraded: List[str] = []
    if ctx is not None:
        assert ctx.journal is not None
        if ctx.degraded:
            degraded = list(ctx.degraded)
            print(
                f"[{exp_id} DEGRADED: {len(degraded)} quarantined shard(s); "
                f"result NOT cached; journal kept at {ctx.journal.path}]"
            )
            for item in degraded:
                print(f"  quarantined: {item}")
            if farm is not None:
                print(f"  [farm spool kept at {farm.spool.root}]")
        else:
            # A fully successful run has nothing to resume.
            ctx.journal.discard()
            if farm is not None:
                farm.discard()
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        atomic_write_text(out / f"{exp_id}.csv", result.to_csv() + "\n")
        atomic_write_text(out / f"{exp_id}.txt", result.report() + "\n")
    return degraded


def _resume_command(args: argparse.Namespace) -> str:
    """The exact CLI invocation that resumes this interrupted run.

    Every argument is shell-quoted: the command is printed for the
    operator to paste into a shell, and paths like ``--out 'my results'``
    must survive the round trip verbatim.
    """
    parts = ["tcast-experiments", "run", args.experiment]
    if args.runs is not None:
        parts += ["--runs", str(args.runs)]
    if args.seed is not None:
        parts += ["--seed", str(args.seed)]
    if args.jobs is not None:
        parts += ["--jobs", str(args.jobs)]
    if args.no_cache:
        parts += ["--no-cache"]
    if args.no_vectorize:
        parts += ["--no-vectorize"]
    if args.cache_dir != DEFAULT_CACHE_DIR:
        parts += ["--cache-dir", str(args.cache_dir)]
    if args.out is not None:
        parts += ["--out", str(args.out)]
    if args.metrics is not None:
        parts += ["--metrics", str(args.metrics)]
    if args.journal_dir != DEFAULT_JOURNAL_DIR:
        parts += ["--journal-dir", str(args.journal_dir)]
    if args.backend != "local":
        parts += ["--backend", args.backend]
    if args.spool_dir != DEFAULT_SPOOL_DIR:
        parts += ["--spool-dir", str(args.spool_dir)]
    parts.append("--resume")
    return " ".join(shlex.quote(part) for part in parts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point.

    Wraps the whole command dispatch in one ``KeyboardInterrupt``
    boundary: a Ctrl-C anywhere outside the sweep engine's own
    ``GracefulShutdown`` window (argument parsing, cache/journal
    subcommands, report rendering, result printing) exits with the
    conventional ``130`` (= 128 + SIGINT) instead of spewing a
    traceback.  Sweep execution itself still drains in-flight shards
    and flushes the journal via ``GracefulShutdown`` first; the
    boundary only catches what that window does not cover.
    """
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("\n[interrupted]", file=sys.stderr)
        return 130


def _main(argv: Optional[Sequence[str]]) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0
    if args.command == "farm":
        from repro.farm.worker import FarmWorker

        worker_kwargs = {}
        if args.heartbeat_interval is not None:
            worker_kwargs["heartbeat_interval"] = args.heartbeat_interval
        if args.coordinator_grace is not None:
            worker_kwargs["coordinator_grace"] = args.coordinator_grace
        worker = FarmWorker(
            args.spool, worker_id=args.worker_id, **worker_kwargs
        )
        return worker.run()
    if args.command == "run":
        if args.backend == "farm" and args.no_journal:
            parser.error(
                "--backend farm requires the run journal: the journal and "
                "the farm's result store are jointly the source of truth "
                "for crash recovery (drop --no-journal)"
            )
        targets = (
            list_experiments() if args.experiment == "all" else [args.experiment]
        )
        cache = _make_cache(args)
        journal_dir = None if args.no_journal else args.journal_dir
        degraded: List[str] = []
        _start_metrics(args.metrics)
        set_vectorized_dispatch(not args.no_vectorize)
        try:
            with resilience.GracefulShutdown():
                for exp_id in targets:
                    degraded += _run_one(
                        exp_id,
                        args.runs,
                        args.seed,
                        args.out,
                        jobs=args.jobs,
                        cache=cache,
                        resume=args.resume,
                        journal_dir=journal_dir,
                        backend=args.backend,
                        spool_dir=args.spool_dir,
                    )
        except resilience.GracefulExit as exc:
            name = signal.Signals(exc.signum).name
            print(f"\n[interrupted by {name}; in-flight shards drained, "
                  f"journal flushed]")
            if journal_dir is not None:
                print(f"[resume with: {_resume_command(args)}]")
            return 128 + exc.signum
        finally:
            set_vectorized_dispatch(True)
            _finish_metrics(args.metrics)
        if degraded:
            print(
                f"[run finished DEGRADED: {len(degraded)} shard(s) "
                f"quarantined after repeated worker failures]"
            )
            return 3
        return 0
    if args.command == "report":
        from repro.experiments.report import generate_report

        _start_metrics(args.metrics)
        set_vectorized_dispatch(not args.no_vectorize)
        try:
            with resilience.GracefulShutdown():
                text = generate_report(
                    runs=args.runs,
                    seed=args.seed,
                    jobs=args.jobs,
                    cache=_make_cache(args),
                )
        except resilience.GracefulExit as exc:
            name = signal.Signals(exc.signum).name
            print(f"\n[interrupted by {name}; in-flight shards drained]")
            return 128 + exc.signum
        finally:
            set_vectorized_dispatch(True)
            _finish_metrics(args.metrics)
        print(text)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(args.out, text + "\n")
        return 0 if "ATTENTION" not in text else 1
    if args.command == "cache":
        cache = ResultCache(args.cache_dir)
        if args.action == "clear":
            removed = cache.clear()
            print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
        else:
            print(f"cache directory: {cache.directory}")
            print(f"entries: {cache.entry_count()}")
            print(f"quarantined: {cache.quarantine_count()}")
        return 0
    if args.command == "journal":
        journals = (
            sorted(args.journal_dir.glob("*.journal"))
            if args.journal_dir.is_dir()
            else []
        )
        if args.action == "clear":
            for path in journals:
                path.unlink()
            n = len(journals)
            print(f"removed {n} journal{'' if n == 1 else 's'}")
        else:
            print(f"journal directory: {args.journal_dir}")
            if not journals:
                print("no interrupted runs")
            for path in journals:
                size = path.stat().st_size
                info = resilience.journal_summary(path)
                if info is None:
                    print(f"  {path.name} ({size} bytes, unreadable header)")
                    continue
                detail = (
                    f"{info['shard_records']} shard record(s) covering "
                    f"{info['runs']} run(s) over {info['cells']} cell(s), "
                    f"{info['quarantined_records']} quarantined"
                )
                if info["corrupt_records"]:
                    detail += f", {info['corrupt_records']} corrupt"
                print(f"  {path.name} ({size} bytes): {detail}")
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
