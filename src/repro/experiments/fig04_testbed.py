"""Figure 4: TCast (2tBins) on the emulated mote testbed.

Reproduces the Sec IV-D experiment: an initiator plus 12 participant
motes, 2tBins over backcast, thresholds ``t in {2, 4, 6}``, positives
swept ``x = 0..12``, 100 repetitions per configuration with every mote
rebooted between runs.  Beyond the per-``x`` mean query counts (which
should track the abstract 1+ simulation), the run reports the error
profile the paper highlights:

* **no false positives** (backcast HACKs cannot be fabricated);
* a small **false-negative** rate (paper: 102 / 7200 = 1.4 %) caused by
  radio irregularities, concentrated on bins with a *single* positive
  (superposed HACKs are progressively harder to miss).

The radio-irregularity model is ``HackMissModel(p_single=0.05,
decay=0.1)`` -- calibrated so this suite lands near the paper's 1.4 %
(see EXPERIMENTS.md for the calibration sweep).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core import TwoTBins
from repro.experiments.common import ExperimentResult, Series
from repro.motes import Testbed, TestbedConfig
from repro.radio.irregularity import HackMissModel
from repro.sim.rng import derive_seed

DEFAULT_PARTICIPANTS = 12
DEFAULT_THRESHOLDS = (2, 4, 6)
DEFAULT_P_SINGLE = 0.05
DEFAULT_DECAY = 0.1


def run(
    *,
    runs: int = 100,
    seed: int = 2014,
    participants: int = DEFAULT_PARTICIPANTS,
    thresholds: tuple[int, ...] = DEFAULT_THRESHOLDS,
    p_single: float = DEFAULT_P_SINGLE,
    decay: float = DEFAULT_DECAY,
    primitive: str = "backcast",
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Regenerate Figure 4's series on the packet-level testbed.

    Args:
        runs: Repetitions per (x, t) cell (paper: 100).
        seed: Root seed.
        participants: Participant mote count (paper: 12).
        thresholds: Thresholds to sweep (paper: 2, 4, 6).
        p_single: Lone-HACK miss probability of the irregularity model.
        decay: Per-extra-HACK miss decay.
        primitive: RCD primitive for bin queries (the paper's experiment
            uses backcast; pollcast/votecast variants are available for
            comparison -- the miss model only affects backcast's HACKs).
        jobs: Accepted for interface uniformity; this runner is not
            sweep-engine based and executes serially.

    Returns:
        One mean-query curve per threshold, plus error-rate notes.
    """
    xs = list(range(participants + 1))
    miss_model = HackMissModel(p_single=p_single, decay=decay)
    series: List[Series] = []
    total_runs = 0
    false_negatives = 0
    false_positives = 0
    single_hack_misses = 0
    total_hack_misses = 0

    for t in thresholds:
        means = []
        errs = []
        for x in xs:
            costs = np.empty(runs, dtype=np.float64)
            for run_idx in range(runs):
                cell_seed = derive_seed(seed, f"t{t}/x{x}/r{run_idx}")
                tb = Testbed(
                    TestbedConfig(
                        num_participants=participants,
                        seed=cell_seed,
                        primitive=primitive,  # type: ignore[arg-type]
                        hack_miss=miss_model,
                    )
                )
                rng = np.random.default_rng(derive_seed(cell_seed, "workload"))
                positives = (
                    rng.choice(participants, size=x, replace=False) if x else []
                )
                tb.configure_positives(int(p) for p in positives)
                tb.reboot_all()
                result = tb.run_threshold_query(TwoTBins(), t)
                costs[run_idx] = result.result.queries
                total_runs += 1
                false_negatives += result.false_negative
                false_positives += result.false_positive
                total_hack_misses += result.hack_misses
                if result.hack_misses and x == 1:
                    single_hack_misses += result.hack_misses
            means.append(float(costs.mean()))
            errs.append(
                float(costs.std(ddof=1) / np.sqrt(runs)) if runs > 1 else 0.0
            )
        series.append(
            Series(
                label=f"t={t}",
                xs=tuple(float(x) for x in xs),
                ys=tuple(means),
                stderr=tuple(errs),
            )
        )

    fn_rate = false_negatives / total_runs if total_runs else 0.0
    notes = (
        f"false-negative runs: {false_negatives}/{total_runs} "
        f"({fn_rate:.1%}; paper: 102/7200 = 1.4%)",
        f"false-positive runs: {false_positives} (paper: 0)",
        f"ground-truth HACK misses: {total_hack_misses}",
    )
    return ExperimentResult(
        exp_id="fig04",
        title="2tBins on the emulated mote testbed (backcast)",
        parameters={
            "participants": participants,
            "thresholds": thresholds,
            "runs": runs,
            "seed": seed,
            "p_single": p_single,
            "decay": decay,
            "primitive": primitive,
        },
        series=tuple(series),
        ylabel="mean bin queries",
        notes=notes,
    )
