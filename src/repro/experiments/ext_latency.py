"""Extension experiment: wall-clock latency and energy of the schemes.

The paper argues tcast's *time* advantage but plots query/slot counts;
this extension converts everything to microseconds on the 802.15.4
timing model so the latency claim is directly inspectable:

* **tcast (backcast)** -- measured on the packet-level testbed: each bin
  query is announce + turnaround + guard + poll + ACK-wait (~2.5x one
  reply slot).  Because of that per-query overhead the RCD advantage is a
  *scale* effect: at the paper's 12-mote testbed size sequential ordering
  is still wall-clock competitive, and the crossover appears as the
  neighbourhood grows (default here: 48 participants).
* **CSMA** -- measured on the packet-level testbed too: positive
  participants contend with real 802.15.4 CSMA/CA (backoff, CCA, BEB,
  link-layer ACK retries) and the initiator stops at the t-th distinct
  reply or after a quiet period (see :mod:`repro.mac.csma_packet`).
* **Sequential** -- measured on the packet-level testbed as well: the
  initiator broadcasts a schedule, positive nodes reply in their
  exclusive slots, and the session stops at the t-th reply or at
  impossibility (see :mod:`repro.mac.tdma_packet`).

The initiator's radio energy for tcast comes from the emulated CC2420
ledger; the baselines get the same RX-centric accounting (initiator
listens for the whole session).

Reproduction finding (recorded in EXPERIMENTS.md, note D5): measured
unslotted CSMA/CA is considerably better than the paper's slotted
abstraction suggests -- clear-channel assessment defers rather than
collides, and early termination at the t-th reply keeps its latency flat
past ``x = t``.  Its residual weaknesses are exactly the ones the paper
argues from: every *negative* verdict pays the full quiet-period timeout
and is heuristic rather than certified, while tcast certifies both
verdicts.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core import TwoTBins
from repro.experiments.common import ExperimentResult, Series
from repro.motes.testbed import Testbed, TestbedConfig
from repro.radio.energy import EnergyProfile
from repro.radio.timing import DEFAULT_TIMING
from repro.sim.rng import derive_seed
from repro.workloads.scenarios import x_sweep

DEFAULT_PARTICIPANTS = 48
DEFAULT_T = 8

#: MPDU of a baseline reply frame (MAC overhead + 2-byte payload).
_REPLY_MPDU_BYTES = 13


def reply_slot_us() -> float:
    """Duration of one baseline reply slot (frame + turnaround)."""
    t = DEFAULT_TIMING
    return t.frame_airtime_us(_REPLY_MPDU_BYTES) + t.turnaround_us


def run(
    *,
    runs: int = 60,
    seed: int = 2030,
    participants: int = DEFAULT_PARTICIPANTS,
    threshold: int = DEFAULT_T,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Measure per-scheme session latency (ms) across the ``x`` sweep.

    Args:
        runs: Repetitions per grid point.
        seed: Root seed.
        participants: Neighbourhood size (testbed scale).
        threshold: Threshold ``t``.
        jobs: Accepted for interface uniformity; this runner is not
            sweep-engine based and executes serially.
    """
    xs = x_sweep(participants, points=16)
    tcast_ms: List[float] = []
    tcast_energy_mj: List[float] = []
    csma_energy_mj: List[float] = []
    tdma_energy_mj: List[float] = []
    csma_ms: List[float] = []
    seq_ms: List[float] = []

    for x in xs:
        t_lat, t_en, c_lat, s_lat = [], [], [], []
        c_en, s_en = [], []
        for run_idx in range(runs):
            cell_seed = derive_seed(seed, f"x{x}/r{run_idx}")
            rng = np.random.default_rng(cell_seed)
            positives = [
                int(p) for p in rng.choice(participants, size=x, replace=False)
            ] if x else []

            tb = Testbed(
                TestbedConfig(num_participants=participants, seed=cell_seed)
            )
            tb.configure_positives(positives)
            run_res = tb.run_threshold_query(TwoTBins(), threshold)
            t_lat.append(run_res.elapsed_us / 1000.0)
            t_en.append(run_res.initiator_energy_uj / 1000.0)

            # Fresh testbed for the measured packet-level CSMA session
            # (the collector claims the initiator's receive callback).
            tb_csma = Testbed(
                TestbedConfig(
                    num_participants=participants, seed=cell_seed + 1
                )
            )
            tb_csma.configure_positives(positives)
            csma = tb_csma.run_csma_collection(threshold, quiet_us=8_000.0)
            c_lat.append(csma.duration_us / 1000.0)
            tb_csma.initiator_radio.energy.finalize(tb_csma.sim.now)
            c_en.append(tb_csma.initiator_radio.energy.total_uj / 1000.0)

            tb_tdma = Testbed(
                TestbedConfig(
                    num_participants=participants, seed=cell_seed + 2
                )
            )
            tb_tdma.configure_positives(positives)
            schedule = np.random.default_rng(cell_seed + 3).permutation(
                participants
            )
            seq = tb_tdma.run_tdma_collection(
                threshold, schedule=[int(v) for v in schedule]
            )
            s_lat.append(seq.duration_us / 1000.0)
            tb_tdma.initiator_radio.energy.finalize(tb_tdma.sim.now)
            s_en.append(tb_tdma.initiator_radio.energy.total_uj / 1000.0)
        tcast_ms.append(float(np.mean(t_lat)))
        tcast_energy_mj.append(float(np.mean(t_en)))
        csma_energy_mj.append(float(np.mean(c_en)))
        tdma_energy_mj.append(float(np.mean(s_en)))
        csma_ms.append(float(np.mean(c_lat)))
        seq_ms.append(float(np.mean(s_lat)))

    profile = EnergyProfile()
    notes = (
        f"initiator energy per session (CC2420 @ {profile.voltage_v:g} V): "
        f"tcast {min(tcast_energy_mj):.2f}-{max(tcast_energy_mj):.2f} mJ, "
        f"CSMA {min(csma_energy_mj):.2f}-{max(csma_energy_mj):.2f} mJ, "
        f"sequential {min(tdma_energy_mj):.2f}-{max(tdma_energy_mj):.2f} mJ "
        "(the initiator listens for the whole session, so energy tracks "
        "latency)",
        f"sequential reply slot {reply_slot_us():.0f} us (measured "
        "end-to-end); CSMA measured with an 8 ms quiet period",
    )
    fxs = tuple(float(x) for x in xs)
    return ExperimentResult(
        exp_id="ext_latency",
        title="session latency on the 802.15.4 timing model",
        parameters={
            "participants": participants,
            "t": threshold,
            "runs": runs,
            "seed": seed,
        },
        series=(
            Series(label="tcast/backcast", xs=fxs, ys=tuple(tcast_ms)),
            Series(label="CSMA", xs=fxs, ys=tuple(csma_ms)),
            Series(label="Sequential", xs=fxs, ys=tuple(seq_ms)),
        ),
        xlabel="x (positive nodes)",
        ylabel="mean session latency (ms)",
        notes=notes,
    )
