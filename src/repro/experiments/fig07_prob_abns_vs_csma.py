"""Figure 7: probabilistic ABNS vs CSMA.

The one figure whose parameters the paper states explicitly: ``N = 32``,
``t = 8``.  Expected shape: probabilistic ABNS is close to CSMA for
``x < t`` and dramatically cheaper for ``x > t`` (CSMA pays a slot per
reply; tcast's cost *falls* once positives are abundant).
"""

from __future__ import annotations

from typing import Optional

from repro.api import algorithm_factory
from repro.experiments.common import ExperimentResult, SweepEngine
from repro.group_testing.model import ModelSpec
from repro.mac import CsmaBaseline

#: Stated in the paper.
DEFAULT_N = 32
DEFAULT_T = 8


def run(
    *,
    runs: int = 400,
    seed: int = 2017,
    n: int = DEFAULT_N,
    threshold: int = DEFAULT_T,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Regenerate Figure 7's series.

    Args:
        runs: Repetitions per grid point.
        seed: Root seed.
        n: Population size (paper: 32).
        threshold: Threshold ``t`` (paper: 8).
        jobs: Worker processes for the sweep (bit-identical to serial).
    """
    xs = list(range(n + 1))
    engine = SweepEngine(n, threshold, runs=runs, seed=seed, jobs=jobs)
    one_plus = ModelSpec(kind="1+", max_queries=80 * n)

    series = (
        engine.query_curve(
            "ProbABNS", xs, algorithm_factory("prob-abns"), one_plus
        ),
        engine.baseline_curve("CSMA", xs, CsmaBaseline),
    )
    return ExperimentResult(
        exp_id="fig07",
        title="probabilistic ABNS vs CSMA (N=32, t=8)",
        parameters={"n": n, "t": threshold, "runs": runs, "seed": seed},
        series=series,
        ylabel="mean queries / slots",
    )
