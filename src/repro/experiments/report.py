"""Consolidated reproduction report: every figure, every shape claim.

``tcast-experiments report`` regenerates the full evaluation and grades
each of the paper's qualitative claims mechanically -- the executable
counterpart of EXPERIMENTS.md.  Each claim is a small predicate over one
figure's series; the report lists PASS/FAIL per claim with the measured
values that decided it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.experiments.cache import ResultCache
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import run_experiment
from repro.viz.ascii import render_table


@dataclass(frozen=True)
class ShapeCheck:
    """One graded claim.

    Attributes:
        figure: Figure id the claim belongs to.
        claim: The paper's qualitative statement, paraphrased.
        passed: Whether the regenerated data supports it.
        detail: The measured values behind the verdict.
    """

    figure: str
    claim: str
    passed: bool
    detail: str


def _peak_x(series) -> float:
    return series.xs[int(np.argmax(series.ys))]


def _check_fig01(r: ExperimentResult) -> List[ShapeCheck]:
    t, n = r.parameters["t"], r.parameters["n"]
    two, exp = r.get_series("2tBins"), r.get_series("ExpIncrease")
    csma, seq = r.get_series("CSMA"), r.get_series("Sequential")
    peak = _peak_x(two)
    return [
        ShapeCheck(
            "fig01",
            "tcast peaks near x = t",
            t / 2 <= peak <= 2 * t,
            f"2tBins peak at x={peak:g} (t={t})",
        ),
        ShapeCheck(
            "fig01",
            "ExpIncrease beats 2tBins for x << t",
            exp.y_at(0) < two.y_at(0) / 2,
            f"x=0: {exp.y_at(0):.1f} vs {two.y_at(0):.1f}",
        ),
        ShapeCheck(
            "fig01",
            "ExpIncrease consistently worse for x >> t",
            exp.y_at(n) > two.y_at(n),
            f"x={n}: {exp.y_at(n):.1f} vs {two.y_at(n):.1f}",
        ),
        ShapeCheck(
            "fig01",
            "CSMA unacceptable past t",
            csma.y_at(n) > 4 * two.y_at(n),
            f"x={n}: CSMA {csma.y_at(n):.1f} vs 2tBins {two.y_at(n):.1f}",
        ),
        ShapeCheck(
            "fig01",
            "sequential plateau ~ n - t at the left edge",
            abs(seq.y_at(0) - (n - t + 1)) <= 3,
            f"x=0: {seq.y_at(0):.1f} (n-t+1 = {n - t + 1})",
        ),
    ]


def _check_fig02(r: ExperimentResult) -> List[ShapeCheck]:
    t = r.parameters["t"]
    one = r.get_series("2tBins 1+")
    two = r.get_series("2tBins 2+")
    return [
        ShapeCheck(
            "fig02",
            "2+ at or below 1+ across the sweep",
            all(
                y2 <= y1 * 1.15 + 2.0 for y1, y2 in zip(one.ys, two.ys)
            ),
            "max ratio "
            f"{max(y2 / max(y1, 1e-9) for y1, y2 in zip(one.ys, two.ys)):.2f}",
        ),
        ShapeCheck(
            "fig02",
            "2+ advantage most evident near x = t-1",
            two.y_at(t - 1) < one.y_at(t - 1),
            f"x={t - 1}: {two.y_at(t - 1):.1f} vs {one.y_at(t - 1):.1f}",
        ),
    ]


def _check_fig03(r: ExperimentResult) -> List[ShapeCheck]:
    x = r.parameters["x"]
    s = r.get_series("2tBins 1+")
    peak = _peak_x(s)
    return [
        ShapeCheck(
            "fig03",
            "cost peaks around t = x and declines toward both ends",
            (x / 2 <= peak <= 4 * x) and s.ys[-1] < max(s.ys) / 2,
            f"peak at t={peak:g} (x={x}); tail {s.ys[-1]:.1f} vs "
            f"max {max(s.ys):.1f}",
        ),
    ]


def _check_fig04(r: ExperimentResult) -> List[ShapeCheck]:
    fn_note = next(n for n in r.notes if "false-negative" in n)
    fp_note = next(n for n in r.notes if "false-positive" in n)
    counts = fn_note.split(":")[1].strip().split()[0]
    fn, total = (int(v) for v in counts.split("/"))
    rate = fn / total if total else 0.0
    return [
        ShapeCheck(
            "fig04",
            "small false-negative run rate (paper: 1.4%)",
            rate < 0.08,
            f"{fn}/{total} = {rate:.1%}",
        ),
        ShapeCheck(
            "fig04",
            "zero false positives",
            fp_note.split(":")[1].strip().startswith("0"),
            fp_note,
        ),
    ]


def _check_fig05(r: ExperimentResult) -> List[ShapeCheck]:
    t = r.parameters["t"]
    two, oracle = r.get_series("2tBins"), r.get_series("Oracle")
    abns_t = r.get_series("ABNS(p0=t)")
    above = [
        (y, o)
        for xv, y, o in zip(two.xs, two.ys, oracle.ys)
        if xv > t / 2
    ]
    return [
        ShapeCheck(
            "fig05",
            "2tBins tracks the oracle for x > t/2",
            all(y <= o * 1.6 + 4.0 for y, o in above),
            f"max ratio {max(y / max(o, 1e-9) for y, o in above):.2f}",
        ),
        ShapeCheck(
            "fig05",
            "ABNS(p0=t) narrows the left-edge gap",
            abns_t.y_at(0) < two.y_at(0),
            f"x=0: {abns_t.y_at(0):.1f} vs {two.y_at(0):.1f}",
        ),
    ]


def _check_fig06(r: ExperimentResult) -> List[ShapeCheck]:
    prob = r.get_series("ProbABNS")
    abns2t = r.get_series("ABNS(p0=2t)")
    oracle = r.get_series("Oracle")
    ratio = float(
        np.mean(np.array(prob.ys) / np.maximum(np.array(oracle.ys), 1.0))
    )
    return [
        ShapeCheck(
            "fig06",
            "probabilistic ABNS fixes the x < t/2 cost",
            prob.y_at(0) < abns2t.y_at(0),
            f"x=0: {prob.y_at(0):.1f} vs {abns2t.y_at(0):.1f}",
        ),
        ShapeCheck(
            "fig06",
            "probabilistic ABNS performs almost as well as the oracle",
            ratio < 1.8,
            f"mean ratio to oracle {ratio:.2f}",
        ),
    ]


def _check_fig07(r: ExperimentResult) -> List[ShapeCheck]:
    n = r.parameters["n"]
    prob, csma = r.get_series("ProbABNS"), r.get_series("CSMA")
    return [
        ShapeCheck(
            "fig07",
            "prob-ABNS outperforms CSMA significantly for x > t",
            prob.y_at(n) < csma.y_at(n) / 2,
            f"x={n}: {prob.y_at(n):.1f} vs {csma.y_at(n):.1f}",
        ),
    ]


def _check_fig08(r: ExperimentResult) -> List[ShapeCheck]:
    eps = r.get_series("eps = (q2-q1)/2").ys
    return [
        ShapeCheck(
            "fig08",
            "the separation gap grows as the modes move apart",
            all(a <= b for a, b in zip(eps, eps[1:])),
            f"eps from {eps[0]:.3f} to {eps[-1]:.3f}",
        ),
    ]


def _check_fig09(r: ExperimentResult) -> List[ShapeCheck]:
    r9 = r.get_series("r=9")
    return [
        ShapeCheck(
            "fig09",
            "nine repeats exceed 90% accuracy once d > 32",
            all(y > 0.9 for d, y in zip(r9.xs, r9.ys) if d > 32),
            f"r=9 accuracies past d=32: "
            f"{[round(y, 2) for d, y in zip(r9.xs, r9.ys) if d > 32]}",
        ),
        ShapeCheck(
            "fig09",
            "d ~ 8 is hard for every repeat budget",
            all(s.y_at(8.0) < 0.9 for s in r.series),
            f"accuracies at d=8: {[round(s.y_at(8.0), 2) for s in r.series]}",
        ),
    ]


def _check_fig10(r: ExperimentResult) -> List[ShapeCheck]:
    s = r.get_series("Eq10 (delta=0.05)")
    finite = [y for y in s.ys if np.isfinite(y)]
    return [
        ShapeCheck(
            "fig10",
            "required repeats fall as the modes separate",
            all(a >= b for a, b in zip(finite, finite[1:])),
            f"Eq10 series {[round(v) for v in finite]}",
        ),
    ]


def _check_fig11(r: ExperimentResult) -> List[ShapeCheck]:
    n = r.parameters["n"]
    d16 = np.array(r.get_series("d=16").ys)
    centre = d16[n // 2 - 2 : n // 2 + 3].mean()
    left = d16[n // 2 - 20 : n // 2 - 12].max()
    return [
        ShapeCheck(
            "fig11",
            "two distinct peaks emerge at d = 16",
            left > 2 * centre,
            f"left peak {left:.4f} vs centre {centre:.4f}",
        ),
    ]


#: Figure id -> claim checker.
CHECKERS: Dict[str, Callable[[ExperimentResult], List[ShapeCheck]]] = {
    "fig01": _check_fig01,
    "fig02": _check_fig02,
    "fig03": _check_fig03,
    "fig04": _check_fig04,
    "fig05": _check_fig05,
    "fig06": _check_fig06,
    "fig07": _check_fig07,
    "fig08": _check_fig08,
    "fig09": _check_fig09,
    "fig10": _check_fig10,
    "fig11": _check_fig11,
}


def run_shape_checks(
    results: Mapping[str, ExperimentResult],
) -> List[ShapeCheck]:
    """Grade every registered claim against regenerated results.

    Args:
        results: Figure id -> regenerated result (missing figures are
            skipped).

    Returns:
        All checks, in figure order.
    """
    checks: List[ShapeCheck] = []
    for fig_id in sorted(CHECKERS):
        if fig_id in results:
            checks.extend(CHECKERS[fig_id](results[fig_id]))
    return checks


def generate_report(
    *,
    runs: Optional[int] = None,
    seed: Optional[int] = None,
    figures: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    cache: Optional["ResultCache"] = None,
) -> str:
    """Regenerate the evaluation and render the graded claim table.

    Args:
        runs: Repetitions per grid point (``None`` = per-figure default).
        seed: Root seed override.
        figures: Figure ids to include (default: every checked figure).
        jobs: Worker processes for the sweep backend (``None`` = serial).
        cache: Optional on-disk result cache consulted per figure.

    Returns:
        The rendered report text (claim table + verdict line).
    """
    targets = figures if figures is not None else sorted(CHECKERS)
    results: Dict[str, ExperimentResult] = {}
    for fig_id in targets:
        kwargs = {}
        if runs is not None:
            kwargs["runs"] = runs
        if seed is not None:
            kwargs["seed"] = seed
        results[fig_id], _ = run_experiment(
            fig_id, cache=cache, jobs=jobs, **kwargs
        )

    checks = run_shape_checks(results)
    rows = [
        [c.figure, "PASS" if c.passed else "FAIL", c.claim, c.detail]
        for c in checks
    ]
    table = render_table(["figure", "verdict", "paper claim", "measured"], rows)
    passed = sum(c.passed for c in checks)
    footer = (
        f"\n{passed}/{len(checks)} claims reproduced"
        + ("" if passed == len(checks) else "  <-- ATTENTION")
    )
    return table + footer
