"""Shared sweep machinery for the figure-reproduction harness.

The paper's simulation figures all have the same skeleton: sweep one
parameter (usually the positive count ``x``), run each configuration many
times (1000 in the paper), and plot the average query cost per algorithm.
:class:`SweepEngine` implements that skeleton with deterministic per-cell
seeding so every algorithm faces the *same* sequence of workload
realisations (common random numbers -- variance reduction for the
comparisons the figures make).

Because every ``(cell, run)`` derives its streams purely from
``(seed, label, x, run)`` -- :meth:`repro.sim.rng.RngRegistry.fork` is a
stateless SHA-256 derivation -- trials can be recomputed anywhere, in any
order.  The engine exploits this with an optional process-pool backend
(``jobs > 1``): runs are sharded into blocks across worker processes and
stitched back in run order, so parallel results are **bit-identical** to
serial ones.  Factories must be picklable for the parallel path (use
:func:`repro.api.algorithm_factory` and
:class:`repro.group_testing.model.ModelSpec` instead of closures);
unpicklable factories degrade to serial execution with a warning.

When a :class:`repro.experiments.resilience.RunContext` is active (the
CLI installs one), execution becomes crash-safe: completed shards are
journalled for ``--resume``, already-journalled shards are skipped with
bit-identical stitching, and the parallel path runs under worker
supervision (crash/hang detection, bounded requeue, quarantine) instead
of a bare ``Executor.map``.  See DESIGN.md "Resilient execution".
"""

from __future__ import annotations

import atexit
import logging
import os
import pickle
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import BatchThresholdDecider, ThresholdDecider
from repro.core.result import ThresholdResult
from repro.experiments import resilience
from repro.experiments.resilience import ShardExecutionError, ShardOutcome
from repro.group_testing.model import ModelSpec, QueryModel
from repro.group_testing.population import Population
from repro.group_testing.vectorized import QueryBatch, UnsupportedBatch
from repro.obs import MetricsSnapshot, get_registry
from repro.sim.rng import RngRegistry
from repro.viz.ascii import ascii_chart, render_table

_LOG = logging.getLogger(__name__)

#: Import-time sweep instruments (inert until metrics are enabled).  The
#: timers/histograms profile the *harness* -- real elapsed time of shard
#: execution and pool plumbing -- which is exactly what the wall-clock
#: pragmas below assert; simulated results never depend on them.
_OBS = get_registry()
_S_SHARDS = _OBS.counter("sweep.shards")
_S_RUNS = _OBS.counter("sweep.runs")
_S_SERIAL_BATCHES = _OBS.counter("sweep.serial_batches")
_S_PARALLEL_BATCHES = _OBS.counter("sweep.parallel_batches")
_S_FARM_BATCHES = _OBS.counter("sweep.farm_batches")
_S_FALLBACK_SERIAL = _OBS.counter("sweep.pickle_fallback_serial")
_S_SHARD_SECONDS = _OBS.histogram(
    "sweep.shard_seconds",
    edges=(0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0),
)
_S_QUEUE_DEPTH = _OBS.histogram(
    "sweep.queue_depth", edges=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
)
_S_SHARD_TIMER = _OBS.timer("sweep.shard_compute")
_S_PICKLE_TIMER = _OBS.timer("sweep.pickle_check")
_S_SUBMIT_TIMER = _OBS.timer("sweep.submit")
_S_DRAIN_TIMER = _OBS.timer("sweep.drain")
_S_VEC_SHARDS = _OBS.counter("sweep.vectorized_shards")
_S_VEC_FALLBACK = _OBS.counter("sweep.vectorized_fallback")

#: Process-wide default for the engine's vectorized dispatch (overridden
#: per engine via ``SweepEngine(vectorize=...)``; the CLI's
#: ``--no-vectorize`` flips it for a whole invocation).  The kernel is
#: bit-identical to the scalar path, so this is a performance switch,
#: never a results switch.
_VECTORIZE_DEFAULT = True


def set_vectorized_dispatch(enabled: bool) -> None:
    """Set the process-wide default for vectorized cell dispatch."""
    global _VECTORIZE_DEFAULT
    _VECTORIZE_DEFAULT = bool(enabled)


def vectorized_dispatch() -> bool:
    """The process-wide default for vectorized cell dispatch."""
    return _VECTORIZE_DEFAULT

#: An algorithm factory: given the true ``x`` of the sweep cell (only the
#: oracle uses it), return a fresh :class:`ThresholdDecider`.
AlgorithmFactory = Callable[[int], ThresholdDecider]

#: A model factory: given the cell's population and a seeded generator,
#: return the query model the algorithm will face.
ModelFactory = Callable[[Population, np.random.Generator], QueryModel]

#: A MAC-baseline factory: no arguments, returns a decider whose
#: ``decide`` takes the population directly.
BaselineFactory = Callable[[], ThresholdDecider]


@dataclass(frozen=True)
class Series:
    """One plotted curve.

    Attributes:
        label: Legend label.
        xs: X grid.
        ys: Mean metric at each grid point.
        stderr: Standard error of each mean (optional).
    """

    label: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]
    stderr: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.label!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )
        if self.stderr and len(self.stderr) != len(self.xs):
            raise ValueError(f"series {self.label!r}: stderr length mismatch")

    def y_at(self, x: float) -> float:
        """The y value at grid point ``x`` (exact match required)."""
        for xv, yv in zip(self.xs, self.ys):
            if xv == x:
                return yv
        raise KeyError(f"x={x} not on the grid of series {self.label!r}")


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one figure reproduction produced.

    Attributes:
        exp_id: Figure identifier, e.g. ``"fig01"``.
        title: Human-readable title.
        parameters: The parameter choices used (including the ones the
            paper leaves implicit; see EXPERIMENTS.md).
        series: The plotted curves.
        xlabel: X-axis meaning.
        ylabel: Y-axis meaning.
        notes: Free-form observations recorded by the runner.
    """

    exp_id: str
    title: str
    parameters: Mapping[str, object]
    series: tuple[Series, ...]
    xlabel: str = "x (positive nodes)"
    ylabel: str = "queries"
    notes: tuple[str, ...] = ()

    def get_series(self, label: str) -> Series:
        """Look up a curve by label.

        Raises:
            KeyError: If absent.
        """
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"no series {label!r}; have {[s.label for s in self.series]}"
        )

    def chart(self, *, width: int = 72, height: int = 18) -> str:
        """Render the figure as an ASCII chart."""
        xs = self.series[0].xs
        return ascii_chart(
            xs,
            {s.label: s.ys for s in self.series},
            width=width,
            height=height,
            title=f"{self.exp_id}: {self.title}",
            xlabel=self.xlabel,
            ylabel=self.ylabel,
        )

    def table(self) -> str:
        """Render the figure's data as an aligned table."""
        headers = [self.xlabel] + [s.label for s in self.series]
        rows = []
        for i, x in enumerate(self.series[0].xs):
            rows.append([x] + [s.ys[i] for s in self.series])
        return render_table(headers, rows)

    def to_csv(self) -> str:
        """The figure's data as CSV text."""
        headers = [self.xlabel] + [s.label for s in self.series]
        lines = [",".join(headers)]
        for i, x in enumerate(self.series[0].xs):
            lines.append(
                ",".join([f"{x:g}"] + [f"{s.ys[i]:.6g}" for s in self.series])
            )
        return "\n".join(lines)

    def report(self) -> str:
        """Chart + table + notes, ready to print."""
        parts = [self.chart(), "", self.table()]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        parts.append(f"parameters: {params}")
        return "\n".join(parts)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` mean all CPUs.

    Explicit values above ``os.cpu_count()`` are clamped to the CPU
    count (with a logged note): oversubscribed worker processes cannot
    speed up a CPU-bound sweep, they only add scheduling and pickling
    overhead -- the direct cause of sub-1.0 "speedups" recorded on
    small hosts.

    Raises:
        ValueError: For negative values.
    """
    cpus = os.cpu_count() or 1
    if jobs is None or jobs == 0:
        return cpus
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    jobs = int(jobs)
    if jobs > cpus:
        _LOG.warning(
            "jobs=%d exceeds this host's %d CPU(s); clamping to %d "
            "(extra worker processes only add overhead)",
            jobs,
            cpus,
            cpus,
        )
        return cpus
    return jobs


#: Process-pool cache, one executor per worker count; workers are reused
#: across curves and experiments within a process.
_EXECUTORS: Dict[int, ProcessPoolExecutor] = {}


def _get_executor(jobs: int) -> ProcessPoolExecutor:
    ex = _EXECUTORS.get(jobs)
    if ex is None:
        ex = ProcessPoolExecutor(max_workers=jobs)
        _EXECUTORS[jobs] = ex
    return ex


def shutdown_executors() -> None:
    """Tear down all cached worker pools (test/interpreter hygiene).

    Reaps both the plain executor cache and the supervised pools owned
    by :mod:`repro.experiments.resilience`.
    """
    while _EXECUTORS:
        _, ex = _EXECUTORS.popitem()
        ex.shutdown(wait=True, cancel_futures=True)
    resilience.shutdown_pools()


# CLI runs (and ad-hoc scripts) rarely remember to call
# shutdown_executors(); without this hook every cached pool leaks its
# worker processes past interpreter exit.
atexit.register(shutdown_executors)


@dataclass(frozen=True)
class _SweepCellTask:
    """One shard of a sweep curve: runs ``[run_lo, run_hi)`` of one cell.

    Carries everything a worker process needs to recompute its trials
    from scratch -- cell streams derive statelessly from
    ``(seed, label, x, run)``, so a shard's costs are identical no matter
    which process computes them.
    """

    seed: int
    label: str
    x: int
    n: int
    threshold: int
    run_lo: int
    run_hi: int
    baseline: bool
    factory: Callable[..., ThresholdDecider]
    model_factory: Optional[ModelFactory] = None
    check_exactness: bool = False
    #: Whether the executing process should collect metrics (mirrors the
    #: submitting process's registry state; workers sync to it).
    collect_metrics: bool = False
    #: Whether to return an isolated :class:`MetricsSnapshot` (set on the
    #: parallel path only -- worker state cannot be read any other way).
    snapshot_metrics: bool = False
    #: Whether the executing process may dispatch this shard to the
    #: vectorized kernel (ships with the task: worker processes cannot
    #: see the submitting process's engine configuration).  The scalar
    #: fallback fires automatically when the algorithm, model or fault
    #: configuration is not batch-capable.
    vectorize: bool = False


def _run_cell_vectorized(task: _SweepCellTask) -> Optional[List[float]]:
    """Try to execute one shard on the vectorized kernel.

    Returns the shard's costs, or ``None`` when the shard must take the
    scalar path: the model factory is not a declarative
    :class:`ModelSpec` (e.g. a fault-plan closure), the algorithm is not
    a :class:`BatchThresholdDecider`, or the kernel itself declines the
    configuration (detection-failure hooks, non-random partitioning).
    Fallbacks are counted on ``sweep.vectorized_fallback`` so parity jobs
    can assert which path ran.  Exactness checking mirrors the scalar
    loop: ground truth for a ``from_count`` population is ``x >= t``.
    """
    if not isinstance(task.model_factory, ModelSpec):
        _S_VEC_FALLBACK.inc()
        return None
    algo = task.factory(task.x)
    if not isinstance(algo, BatchThresholdDecider):
        _S_VEC_FALLBACK.inc()
        return None
    batch = QueryBatch.for_cell(
        seed=task.seed,
        label=task.label,
        x=task.x,
        n=task.n,
        threshold=task.threshold,
        run_lo=task.run_lo,
        run_hi=task.run_hi,
        model=task.model_factory,
    )
    try:
        out = algo.decide_batch(batch)
    except UnsupportedBatch:
        _S_VEC_FALLBACK.inc()
        return None
    if task.check_exactness and out.exact:
        truth = task.x >= task.threshold
        bad = np.flatnonzero(out.decisions != truth)
        if bad.size:
            raise AssertionError(
                f"{task.label}: wrong answer at x={task.x}, "
                f"t={task.threshold}, run={task.run_lo + int(bad[0])}: got "
                f"{bool(out.decisions[bad[0]])}, truth {truth}"
            )
    _S_VEC_SHARDS.inc()
    return [float(q) for q in out.queries]


def _run_sweep_cell(
    task: _SweepCellTask,
) -> Tuple[List[float], Optional[MetricsSnapshot]]:
    """Compute one shard's per-run query costs (module-level: picklable).

    This is the single trial loop behind both the serial and the parallel
    backend, which is what makes them bit-identical by construction.

    Returns:
        ``(costs, snapshot)``.  ``snapshot`` is ``None`` unless the task
        asks for metrics isolation (``snapshot_metrics``, the parallel
        path): then the worker's registry is reset before the shard and
        snapshotted after it, and the caller merges the snapshot into its
        own registry.  Metrics collection touches no RNG stream, so costs
        are identical with metrics on or off.
    """
    metrics = get_registry()
    if metrics.enabled is not task.collect_metrics:
        # Worker processes start with (or inherit) a stale flag; the
        # submitting process's state always matches by construction.
        metrics.set_enabled(task.collect_metrics)  # tcast-lint: disable=TCL010 -- worker-side registry sync: aligns the worker's enable flag with the submitted task; snapshot is merged back explicitly
    isolate = task.collect_metrics and task.snapshot_metrics
    if isolate:
        metrics.reset()  # tcast-lint: disable=TCL010 -- worker-side registry sync: isolates this cell's counters so the returned snapshot is exact; never read cross-process
    shard_start = (
        time.perf_counter() if metrics.enabled else 0.0  # tcast-lint: disable=TCL002 -- harness profiling (shard wall time), never simulated time
    )
    costs: Optional[List[float]] = None
    if task.vectorize and not task.baseline:
        costs = _run_cell_vectorized(task)
    if costs is None:
        root = RngRegistry(task.seed)
        costs = []
        for run in range(task.run_lo, task.run_hi):
            reg = root.fork(f"{task.label}/x{task.x}/r{run}")
            pop = Population.from_count(task.n, task.x, reg.stream("pop"))
            if task.baseline:
                baseline = task.factory()
                result: ThresholdResult = baseline.decide(
                    pop, task.threshold, reg.stream("mac")
                )
            else:
                assert task.model_factory is not None
                model = task.model_factory(pop, reg.stream("model"))
                algo = task.factory(task.x)
                result = algo.decide(model, task.threshold, reg.stream("bins"))
                if task.check_exactness and result.exact:
                    truth = pop.truth(task.threshold)
                    if result.decision != truth:
                        raise AssertionError(
                            f"{task.label}: wrong answer at x={task.x}, "
                            f"t={task.threshold}, run={run}: got "
                            f"{result.decision}, truth {truth}"
                        )
            costs.append(float(result.queries))
    if metrics.enabled:
        elapsed = time.perf_counter() - shard_start  # tcast-lint: disable=TCL002 -- harness profiling (shard wall time), never simulated time
        _S_SHARD_SECONDS.observe(elapsed)
        _S_SHARD_TIMER.add_seconds(elapsed)
        _S_SHARDS.inc()
        _S_RUNS.inc(len(costs))
    return costs, (metrics.snapshot() if isolate else None)


def _run_sweep_cell_guarded(task: _SweepCellTask) -> ShardOutcome:
    """Worker-side wrapper: ship in-shard exceptions home as data.

    Letting an exception propagate out of a worker either loses the
    traceback or -- when the exception is unpicklable -- takes the whole
    pool down as a bare ``BrokenProcessPool``.  Catching here turns any
    in-shard failure into a :class:`ShardOutcome` the parent can report
    with the shard's exact coordinates and the full remote traceback.
    """
    try:
        costs, snapshot = _run_sweep_cell(task)
    except Exception as exc:
        return ShardOutcome(
            error_type=type(exc).__name__,
            remote_traceback=traceback.format_exc(),
        )
    return ShardOutcome(costs=costs, snapshot=snapshot)


class SweepEngine:
    """Deterministic multi-run sweep executor.

    Args:
        n: Population size.
        threshold: Threshold ``t`` (per-cell overridable in the t-sweep).
        runs: Repetitions per grid cell (paper: 1000).
        seed: Root seed; every (cell, run) derives its own streams.
        jobs: Worker processes (``1`` = in-process serial; ``0``/``None``
            = one per CPU).  Parallel output is bit-identical to serial;
            factories must be picklable or the engine falls back to
            serial with a warning.
        vectorize: Whether cells may dispatch to the vectorized kernel
            when the algorithm, model and fault configuration all
            support it (``None`` = the process default, normally on;
            see :func:`set_vectorized_dispatch`).  The kernel consumes
            the same per-run streams as the scalar path, so this never
            changes results -- only throughput.
    """

    #: Target task count per worker; oversubscription smooths out
    #: uneven per-shard runtimes (cheap cells finish early).
    _OVERSUBSCRIBE = 4

    def __init__(
        self,
        n: int,
        threshold: int,
        *,
        runs: int,
        seed: int,
        jobs: Optional[int] = 1,
        vectorize: Optional[bool] = None,
    ) -> None:
        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")
        self._n = n
        self._threshold = threshold
        self._runs = runs
        self._seed = int(seed)
        self._root = RngRegistry(seed)
        self._jobs = resolve_jobs(jobs)
        self._vectorize = (
            vectorized_dispatch() if vectorize is None else bool(vectorize)
        )

    @property
    def n(self) -> int:
        """Population size."""
        return self._n

    @property
    def threshold(self) -> int:
        """Default threshold."""
        return self._threshold

    @property
    def runs(self) -> int:
        """Repetitions per cell."""
        return self._runs

    @property
    def jobs(self) -> int:
        """Resolved worker-process count (1 = serial)."""
        return self._jobs

    @property
    def vectorize(self) -> bool:
        """Whether cells may dispatch to the vectorized kernel."""
        return self._vectorize

    def _shards(self, xs: Sequence[int]) -> List[Tuple[int, int, int]]:
        """Split the sweep grid into ``(x, run_lo, run_hi)`` shards.

        Serial runs get one shard per cell.  Parallel runs split each
        cell's run range into enough blocks to keep every worker busy
        even on single-cell curves (the t- and n-sweeps call the engine
        one cell at a time).  Shard boundaries never affect results --
        only which process computes which runs.
        """
        if self._jobs <= 1:
            blocks_per_x = 1
        else:
            target = self._jobs * self._OVERSUBSCRIBE
            blocks_per_x = min(self._runs, max(1, -(-target // len(xs))))
        shards: List[Tuple[int, int, int]] = []
        for x in xs:
            base, extra = divmod(self._runs, blocks_per_x)
            lo = 0
            for i in range(blocks_per_x):
                hi = lo + base + (1 if i < extra else 0)
                if hi > lo:
                    shards.append((int(x), lo, hi))
                lo = hi
        return shards

    def _run_tasks(
        self, tasks: List[_SweepCellTask]
    ) -> List[Optional[List[float]]]:
        """Execute shards serially or on the process pool (in order).

        On the parallel path each worker returns a
        :class:`~repro.obs.MetricsSnapshot` alongside its costs (when
        metrics are enabled); the snapshots are summed into this
        process's registry so the merged totals equal a serial run's.

        With an active :class:`~repro.experiments.resilience.RunContext`
        the execution is crash-safe: shards already present in the run
        journal are skipped (their recorded costs slot in, bit-identical
        by construction), completed shards are journalled durably, and
        the parallel path runs supervised.  A shard quarantined by the
        supervisor yields ``None`` in the returned list; :meth:`_sweep`
        degrades explicitly instead of dying.
        """
        ctx = resilience.current_context()
        results: List[Optional[List[float]]] = [None] * len(tasks)
        if ctx is not None and ctx.journal is not None:
            pending = []
            for i, task in enumerate(tasks):
                recorded = ctx.lookup_shard(task)
                if recorded is not None:
                    results[i] = recorded
                else:
                    pending.append(i)
        else:
            pending = list(range(len(tasks)))
        if not pending:
            return results
        if ctx is not None and ctx.farm is not None:
            # Farm backend: shards execute in independent worker
            # processes coordinated through the spool directory; even a
            # single pending shard goes through the farm so the
            # crash/resume story is uniform.
            reg = get_registry()
            if reg.enabled:
                tasks = [replace(t, snapshot_metrics=True) for t in tasks]
            _S_FARM_BATCHES.inc()
            self._run_farm(tasks, pending, results, ctx, reg)
            return results
        if self._jobs <= 1 or len(pending) <= 1:
            _S_SERIAL_BATCHES.inc()
            return self._run_serial(tasks, pending, results, ctx)
        try:
            with _S_PICKLE_TIMER.time():
                pickle.dumps(tasks[pending[0]])
        except Exception:
            warnings.warn(
                "sweep factories are not picklable; running serially "
                "(use repro.api.algorithm_factory / ModelSpec for the "
                "parallel backend)",
                RuntimeWarning,
                stacklevel=3,
            )
            _S_FALLBACK_SERIAL.inc()
            return self._run_serial(tasks, pending, results, ctx)
        reg = get_registry()
        _S_PARALLEL_BATCHES.inc()
        _S_QUEUE_DEPTH.observe(max(0, len(pending) - self._jobs))
        if reg.enabled:
            # Workers cannot write this registry; ask each shard for an
            # isolated snapshot to merge back (exact integer sums).
            tasks = [replace(t, snapshot_metrics=True) for t in tasks]
        if ctx is not None:
            self._run_supervised(tasks, pending, results, ctx, reg)
            return results
        executor = _get_executor(self._jobs)
        with _S_SUBMIT_TIMER.time():
            # Executor.map submits (and pickles) every shard eagerly;
            # the drain below is dominated by worker compute time.
            batch = executor.map(
                _run_sweep_cell_guarded, [tasks[i] for i in pending]
            )
        with _S_DRAIN_TIMER.time():
            outcomes = list(batch)
        for i, outcome in zip(pending, outcomes):
            if outcome.error_type is not None:
                label, x, lo, hi = resilience.shard_coords(tasks[i])
                raise ShardExecutionError(
                    label, x, lo, hi,
                    outcome.error_type,
                    outcome.remote_traceback or "<no traceback captured>",
                )
            if outcome.snapshot is not None:
                reg.absorb(outcome.snapshot)
            results[i] = outcome.costs
        return results

    def _run_serial(
        self,
        tasks: List[_SweepCellTask],
        pending: List[int],
        results: List[Optional[List[float]]],
        ctx: Optional[resilience.RunContext],
    ) -> List[Optional[List[float]]]:
        """In-process execution of the still-pending shards (in order)."""
        for i in pending:
            costs, _ = _run_sweep_cell(tasks[i])
            results[i] = costs
            if ctx is not None:
                ctx.record_shard(tasks[i], costs)
        return results

    def _run_supervised(
        self,
        tasks: List[_SweepCellTask],
        pending: List[int],
        results: List[Optional[List[float]]],
        ctx: resilience.RunContext,
        reg,
    ) -> None:
        """Supervised parallel execution: journal, requeue, quarantine."""

        def on_complete(
            idx: int, task: _SweepCellTask, outcome: ShardOutcome
        ) -> None:
            assert outcome.costs is not None
            if outcome.snapshot is not None:
                reg.absorb(outcome.snapshot)
            results[idx] = outcome.costs
            ctx.record_shard(task, outcome.costs)

        def on_quarantine(
            idx: int, task: _SweepCellTask, reason: str
        ) -> None:
            label, x, lo, hi = resilience.shard_coords(task)
            _LOG.error(
                "quarantined shard %r x=%d runs [%d,%d): %s",
                label, x, lo, hi, reason,
            )
            ctx.mark_degraded(task, reason)
            results[idx] = None

        with _S_DRAIN_TIMER.time():
            resilience.run_supervised(
                _run_sweep_cell_guarded,
                [(i, tasks[i]) for i in pending],
                jobs=self._jobs,
                context=ctx,
                on_complete=on_complete,
                on_quarantine=on_quarantine,
            )

    def _run_farm(
        self,
        tasks: List[_SweepCellTask],
        pending: List[int],
        results: List[Optional[List[float]]],
        ctx: resilience.RunContext,
        reg,
    ) -> None:
        """Farm execution: spool shards, collect leased completions.

        Identical callback contract to :meth:`_run_supervised` -- the
        coordinator journals completions in collection order and marks
        quarantined shards degraded -- so ``--backend farm`` inherits
        the local backend's crash/resume/degradation semantics wholesale.
        """

        def on_complete(
            idx: int, task: _SweepCellTask, outcome: ShardOutcome
        ) -> None:
            assert outcome.costs is not None
            if outcome.snapshot is not None:
                reg.absorb(outcome.snapshot)
            results[idx] = outcome.costs
            ctx.record_shard(task, outcome.costs)

        def on_quarantine(
            idx: int, task: _SweepCellTask, reason: str
        ) -> None:
            label, x, lo, hi = resilience.shard_coords(task)
            _LOG.error(
                "quarantined shard %r x=%d runs [%d,%d): %s",
                label, x, lo, hi, reason,
            )
            ctx.mark_degraded(task, reason)
            results[idx] = None

        with _S_DRAIN_TIMER.time():
            ctx.farm.execute(
                [(i, tasks[i]) for i in pending],
                fn=_run_sweep_cell_guarded,
                on_complete=on_complete,
                on_quarantine=on_quarantine,
            )

    def _sweep(
        self,
        label: str,
        xs: Sequence[int],
        factory: Callable[..., ThresholdDecider],
        model_factory: Optional[ModelFactory],
        threshold: Optional[int],
        *,
        baseline: bool,
        check_exactness: bool = False,
    ) -> Series:
        t = self._threshold if threshold is None else threshold
        shards = self._shards(xs)
        collect_metrics = get_registry().enabled
        tasks = [
            _SweepCellTask(
                seed=self._seed,
                label=label,
                x=x,
                n=self._n,
                threshold=t,
                run_lo=lo,
                run_hi=hi,
                baseline=baseline,
                factory=factory,
                model_factory=model_factory,
                check_exactness=check_exactness,
                collect_metrics=collect_metrics,
                vectorize=self._vectorize and not baseline,
            )
            for (x, lo, hi) in shards
        ]
        blocks = self._run_tasks(tasks)
        by_x: Dict[int, List[float]] = {int(x): [] for x in xs}
        for (x, _, _), block in zip(shards, blocks):
            if block is not None:  # None = quarantined (degraded run)
                by_x[x].extend(block)
        means: List[float] = []
        errs: List[float] = []
        for x in xs:
            costs = np.asarray(by_x[int(x)], dtype=np.float64)
            # A cell can come up short (or empty) only when supervision
            # quarantined shards; the run then carries a degraded report.
            means.append(float(costs.mean()) if costs.size else float("nan"))
            errs.append(float(costs.std(ddof=1) / np.sqrt(self._runs))
                        if self._runs > 1 and costs.size > 1 else 0.0)
        return Series(
            label=label,
            xs=tuple(float(x) for x in xs),
            ys=tuple(means),
            stderr=tuple(errs),
        )

    def query_curve(
        self,
        label: str,
        xs: Sequence[int],
        algorithm_factory: AlgorithmFactory,
        model_factory: ModelFactory,
        *,
        threshold: Optional[int] = None,
        check_exactness: bool = True,
    ) -> Series:
        """Mean query cost of a bin-querying algorithm across an x sweep.

        Args:
            label: Series label.
            xs: Positive-count grid.
            algorithm_factory: Builds the algorithm per cell (receives the
                cell's true ``x``; only the oracle uses it).
            model_factory: Builds the query model per run.
            threshold: Override of the engine default.
            check_exactness: Assert exact algorithms return the ground
                truth on every run (disabled for noisy models).

        Returns:
            The mean-cost series with standard errors.
        """
        return self._sweep(
            label,
            xs,
            algorithm_factory,
            model_factory,
            threshold,
            baseline=False,
            check_exactness=check_exactness,
        )

    def baseline_curve(
        self,
        label: str,
        xs: Sequence[int],
        baseline_factory: BaselineFactory,
        *,
        threshold: Optional[int] = None,
    ) -> Series:
        """Mean slot cost of a MAC baseline (CSMA / sequential) sweep."""
        return self._sweep(
            label, xs, baseline_factory, None, threshold, baseline=True
        )


def mean_query_curve(
    label: str,
    xs: Sequence[int],
    algorithm_factory: AlgorithmFactory,
    model_factory: ModelFactory,
    *,
    n: int,
    threshold: int,
    runs: int,
    seed: int,
    jobs: Optional[int] = 1,
) -> Series:
    """One-shot convenience wrapper around :class:`SweepEngine`."""
    engine = SweepEngine(n, threshold, runs=runs, seed=seed, jobs=jobs)
    return engine.query_curve(label, xs, algorithm_factory, model_factory)


def baseline_curve(
    label: str,
    xs: Sequence[int],
    baseline_factory: BaselineFactory,
    *,
    n: int,
    threshold: int,
    runs: int,
    seed: int,
    jobs: Optional[int] = 1,
) -> Series:
    """One-shot convenience wrapper for MAC baselines."""
    engine = SweepEngine(n, threshold, runs=runs, seed=seed, jobs=jobs)
    return engine.baseline_curve(label, xs, baseline_factory)
