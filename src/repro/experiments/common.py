"""Shared sweep machinery for the figure-reproduction harness.

The paper's simulation figures all have the same skeleton: sweep one
parameter (usually the positive count ``x``), run each configuration many
times (1000 in the paper), and plot the average query cost per algorithm.
:class:`SweepEngine` implements that skeleton with deterministic per-cell
seeding so every algorithm faces the *same* sequence of workload
realisations (common random numbers -- variance reduction for the
comparisons the figures make).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.result import ThresholdResult
from repro.group_testing.model import QueryModel
from repro.group_testing.population import Population
from repro.sim.rng import RngRegistry
from repro.viz.ascii import ascii_chart, render_table

#: An algorithm factory: given the true ``x`` of the sweep cell (only the
#: oracle uses it), return a fresh algorithm object with a
#: ``decide(model, threshold, rng)`` method.
AlgorithmFactory = Callable[[int], object]

#: A model factory: given the cell's population and a seeded generator,
#: return the query model the algorithm will face.
ModelFactory = Callable[[Population, np.random.Generator], QueryModel]


@dataclass(frozen=True)
class Series:
    """One plotted curve.

    Attributes:
        label: Legend label.
        xs: X grid.
        ys: Mean metric at each grid point.
        stderr: Standard error of each mean (optional).
    """

    label: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]
    stderr: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.label!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )
        if self.stderr and len(self.stderr) != len(self.xs):
            raise ValueError(f"series {self.label!r}: stderr length mismatch")

    def y_at(self, x: float) -> float:
        """The y value at grid point ``x`` (exact match required)."""
        for xv, yv in zip(self.xs, self.ys):
            if xv == x:
                return yv
        raise KeyError(f"x={x} not on the grid of series {self.label!r}")


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one figure reproduction produced.

    Attributes:
        exp_id: Figure identifier, e.g. ``"fig01"``.
        title: Human-readable title.
        parameters: The parameter choices used (including the ones the
            paper leaves implicit; see EXPERIMENTS.md).
        series: The plotted curves.
        xlabel: X-axis meaning.
        ylabel: Y-axis meaning.
        notes: Free-form observations recorded by the runner.
    """

    exp_id: str
    title: str
    parameters: Mapping[str, object]
    series: tuple[Series, ...]
    xlabel: str = "x (positive nodes)"
    ylabel: str = "queries"
    notes: tuple[str, ...] = ()

    def get_series(self, label: str) -> Series:
        """Look up a curve by label.

        Raises:
            KeyError: If absent.
        """
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"no series {label!r}; have {[s.label for s in self.series]}"
        )

    def chart(self, *, width: int = 72, height: int = 18) -> str:
        """Render the figure as an ASCII chart."""
        xs = self.series[0].xs
        return ascii_chart(
            xs,
            {s.label: s.ys for s in self.series},
            width=width,
            height=height,
            title=f"{self.exp_id}: {self.title}",
            xlabel=self.xlabel,
            ylabel=self.ylabel,
        )

    def table(self) -> str:
        """Render the figure's data as an aligned table."""
        headers = [self.xlabel] + [s.label for s in self.series]
        rows = []
        for i, x in enumerate(self.series[0].xs):
            rows.append([x] + [s.ys[i] for s in self.series])
        return render_table(headers, rows)

    def to_csv(self) -> str:
        """The figure's data as CSV text."""
        headers = [self.xlabel] + [s.label for s in self.series]
        lines = [",".join(headers)]
        for i, x in enumerate(self.series[0].xs):
            lines.append(
                ",".join([f"{x:g}"] + [f"{s.ys[i]:.6g}" for s in self.series])
            )
        return "\n".join(lines)

    def report(self) -> str:
        """Chart + table + notes, ready to print."""
        parts = [self.chart(), "", self.table()]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        parts.append(f"parameters: {params}")
        return "\n".join(parts)


class SweepEngine:
    """Deterministic multi-run sweep executor.

    Args:
        n: Population size.
        threshold: Threshold ``t`` (per-cell overridable in the t-sweep).
        runs: Repetitions per grid cell (paper: 1000).
        seed: Root seed; every (cell, run) derives its own streams.
    """

    def __init__(self, n: int, threshold: int, *, runs: int, seed: int) -> None:
        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")
        self._n = n
        self._threshold = threshold
        self._runs = runs
        self._root = RngRegistry(seed)

    @property
    def n(self) -> int:
        """Population size."""
        return self._n

    @property
    def threshold(self) -> int:
        """Default threshold."""
        return self._threshold

    @property
    def runs(self) -> int:
        """Repetitions per cell."""
        return self._runs

    def query_curve(
        self,
        label: str,
        xs: Sequence[int],
        algorithm_factory: AlgorithmFactory,
        model_factory: ModelFactory,
        *,
        threshold: Optional[int] = None,
        check_exactness: bool = True,
    ) -> Series:
        """Mean query cost of a bin-querying algorithm across an x sweep.

        Args:
            label: Series label.
            xs: Positive-count grid.
            algorithm_factory: Builds the algorithm per cell (receives the
                cell's true ``x``; only the oracle uses it).
            model_factory: Builds the query model per run.
            threshold: Override of the engine default.
            check_exactness: Assert exact algorithms return the ground
                truth on every run (disabled for noisy models).

        Returns:
            The mean-cost series with standard errors.
        """
        t = self._threshold if threshold is None else threshold
        means: List[float] = []
        errs: List[float] = []
        for x in xs:
            costs = np.empty(self._runs, dtype=np.float64)
            for run in range(self._runs):
                reg = self._root.fork(f"{label}/x{x}/r{run}")
                pop = Population.from_count(self._n, x, reg.stream("pop"))
                model = model_factory(pop, reg.stream("model"))
                algo = algorithm_factory(x)
                result: ThresholdResult = algo.decide(  # type: ignore[attr-defined]
                    model, t, reg.stream("bins")
                )
                if check_exactness and result.exact:
                    truth = pop.truth(t)
                    if result.decision != truth:
                        raise AssertionError(
                            f"{label}: wrong answer at x={x}, t={t}, "
                            f"run={run}: got {result.decision}, "
                            f"truth {truth}"
                        )
                costs[run] = result.queries
            means.append(float(costs.mean()))
            errs.append(float(costs.std(ddof=1) / np.sqrt(self._runs))
                        if self._runs > 1 else 0.0)
        return Series(
            label=label,
            xs=tuple(float(x) for x in xs),
            ys=tuple(means),
            stderr=tuple(errs),
        )

    def baseline_curve(
        self,
        label: str,
        xs: Sequence[int],
        baseline_factory: Callable[[], object],
        *,
        threshold: Optional[int] = None,
    ) -> Series:
        """Mean slot cost of a MAC baseline (CSMA / sequential) sweep."""
        t = self._threshold if threshold is None else threshold
        means: List[float] = []
        errs: List[float] = []
        for x in xs:
            costs = np.empty(self._runs, dtype=np.float64)
            for run in range(self._runs):
                reg = self._root.fork(f"{label}/x{x}/r{run}")
                pop = Population.from_count(self._n, x, reg.stream("pop"))
                baseline = baseline_factory()
                result: ThresholdResult = baseline.decide(  # type: ignore[attr-defined]
                    pop, t, reg.stream("mac")
                )
                costs[run] = result.queries
            means.append(float(costs.mean()))
            errs.append(float(costs.std(ddof=1) / np.sqrt(self._runs))
                        if self._runs > 1 else 0.0)
        return Series(
            label=label,
            xs=tuple(float(x) for x in xs),
            ys=tuple(means),
            stderr=tuple(errs),
        )


def mean_query_curve(
    label: str,
    xs: Sequence[int],
    algorithm_factory: AlgorithmFactory,
    model_factory: ModelFactory,
    *,
    n: int,
    threshold: int,
    runs: int,
    seed: int,
) -> Series:
    """One-shot convenience wrapper around :class:`SweepEngine`."""
    engine = SweepEngine(n, threshold, runs=runs, seed=seed)
    return engine.query_curve(label, xs, algorithm_factory, model_factory)


def baseline_curve(
    label: str,
    xs: Sequence[int],
    baseline_factory: Callable[[], object],
    *,
    n: int,
    threshold: int,
    runs: int,
    seed: int,
) -> Series:
    """One-shot convenience wrapper for MAC baselines."""
    engine = SweepEngine(n, threshold, runs=runs, seed=seed)
    return engine.baseline_curve(label, xs, baseline_factory)
