"""Extension experiment: fault injection vs the reliable-query layer.

The paper's testbed runs show tcast's one error mode -- HACK detection
failures turning active bins silent, i.e. false negatives (Sec IV-D).
This experiment injects exactly that fault into the abstract 1+ model at
a swept severity ``p_single`` (the lone-HACK miss probability of
:class:`repro.radio.irregularity.HackMissModel`) and measures two arms
under common random numbers:

* **plain** -- :class:`repro.core.two_t_bins.TwoTBins` unwrapped: its
  false-negative rate grows with ``p_single``.
* **reliable** -- the same algorithm wrapped in
  :class:`repro.core.reliable.ReliableThreshold` with a Chernoff-sized
  silence-confirmation policy
  (:class:`repro.core.reliable.ChernoffConfirm`): each silent bin is
  re-queried until the residual miss probability drops below ``delta``,
  which should hold accuracy near-perfect at well under 2x query cost
  (re-queries only ever touch silent bins, so the multiplier is bounded
  by the confirmation count).

Workloads draw ``x`` uniformly from ``{t, ..., 2t}`` -- every run's
ground truth is *True*, the only regime where false negatives exist, and
the small margins keep single-bin misses consequential.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.reliable import ChernoffConfirm, NoRetry, ReliableThreshold
from repro.core.two_t_bins import TwoTBins
from repro.experiments.common import ExperimentResult, Series
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population
from repro.radio.irregularity import HackMissModel
from repro.sim.rng import RngRegistry

DEFAULT_P_SINGLES = (0.0, 0.02, 0.05, 0.1, 0.15, 0.2)


def run(
    *,
    runs: int = 400,
    seed: int = 4041,
    n: int = 24,
    threshold: int = 4,
    p_singles: Sequence[float] = DEFAULT_P_SINGLES,
    decay: float = 0.1,
    delta: float = 0.001,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Sweep fault severity against plain and reliability-wrapped 2tBins.

    Args:
        runs: Sessions per severity level and arm.
        seed: Root seed.
        n: Population size.
        threshold: Threshold ``t``; workloads draw ``x`` in ``[t, 2t]``.
        p_singles: Lone-HACK miss probabilities to sweep.
        decay: Per-extra-HACK miss decay of the injected fault model.
        delta: Residual per-bin miss target of the Chernoff policy.
        jobs: Accepted for interface uniformity; this runner is not
            sweep-engine based and executes serially.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    root = RngRegistry(seed)
    fn_plain: list[float] = []
    fn_reliable: list[float] = []
    q_plain: list[float] = []
    q_reliable: list[float] = []
    retries_mean: list[float] = []
    for p in p_singles:
        miss = HackMissModel(p_single=p, decay=decay).miss_probability
        policy = NoRetry() if p == 0.0 else ChernoffConfirm(p, delta=delta)
        reliable = ReliableThreshold(TwoTBins(), policy)
        errs_plain = errs_rel = 0
        cost_plain = cost_rel = retries = 0
        for r in range(runs):
            reg = root.fork(f"p{p}/r{r}")
            x = int(reg.stream("workload").integers(threshold, 2 * threshold + 1))
            pop = Population.from_count(n, x, reg.stream("pop"))
            # Common workload, independent fault draws per arm.
            model_a = OnePlusModel(
                pop, reg.stream("model.plain"), detection_failure=miss
            )
            model_b = OnePlusModel(
                pop, reg.stream("model.rel"), detection_failure=miss
            )
            res_a = TwoTBins().decide(model_a, threshold, reg.stream("bins"))
            res_b = reliable.decide(model_b, threshold, reg.stream("bins.rel"))
            errs_plain += res_a.decision is not True
            errs_rel += res_b.decision is not True
            cost_plain += res_a.queries
            cost_rel += res_b.queries
            assert res_b.reliability is not None
            retries += res_b.reliability.retries
        fn_plain.append(errs_plain / runs)
        fn_reliable.append(errs_rel / runs)
        q_plain.append(cost_plain / runs)
        q_reliable.append(cost_rel / runs)
        retries_mean.append(retries / runs)
    xs = tuple(float(p) for p in p_singles)
    multipliers = tuple(
        qr / qp if qp else 1.0 for qp, qr in zip(q_plain, q_reliable)
    )
    return ExperimentResult(
        exp_id="ext_faults",
        title="fault injection vs the reliable-query layer (2tBins)",
        parameters={
            "n": n,
            "t": threshold,
            "runs": runs,
            "seed": seed,
            "decay": decay,
            "delta": delta,
        },
        series=(
            Series(label="2tBins FN rate", xs=xs, ys=tuple(fn_plain)),
            Series(label="reliable FN rate", xs=xs, ys=tuple(fn_reliable)),
            Series(label="2tBins mean queries", xs=xs, ys=tuple(q_plain)),
            Series(label="reliable mean queries", xs=xs, ys=tuple(q_reliable)),
            Series(label="mean retries", xs=xs, ys=tuple(retries_mean)),
        ),
        xlabel="p_single (lone-HACK miss probability)",
        ylabel="rate / queries",
        notes=(
            "cost multipliers (reliable/plain): "
            + ", ".join(
                f"p={p:g}: {m:.2f}x" for p, m in zip(xs, multipliers)
            ),
            "all errors are false negatives; x drawn uniformly in [t, 2t] "
            "so ground truth is always True",
        ),
    )
