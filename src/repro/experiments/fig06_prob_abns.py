"""Figure 6: the probabilistic-probe ABNS variant.

Probabilistic ABNS (one sampled probe picks between ``ABNS(p0 = t/4)``
and 2tBins) vs the two fixed-``p0`` ABNS variants and the oracle.
Expected shape (Sec V-D): the probe variant eliminates *both* penalties
-- the ``ABNS(p0=t)`` overhead for ``t < x < 2t`` and the
``ABNS(p0=2t)`` overhead for ``x < t/2`` -- tracking the oracle closely
across the whole sweep.

Implicit parameters: ``N = 128``, ``t = 16``.
"""

from __future__ import annotations

from typing import Optional

from repro.api import algorithm_factory
from repro.experiments.common import ExperimentResult, SweepEngine
from repro.group_testing.model import ModelSpec
from repro.workloads.scenarios import x_sweep

DEFAULT_N = 128
DEFAULT_T = 16


def run(
    *,
    runs: int = 400,
    seed: int = 2016,
    n: int = DEFAULT_N,
    threshold: int = DEFAULT_T,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Regenerate Figure 6's series.

    Args:
        runs: Repetitions per grid point.
        seed: Root seed.
        n: Population size.
        threshold: Threshold ``t``.
        jobs: Worker processes for the sweep (bit-identical to serial).
    """
    xs = x_sweep(n)
    engine = SweepEngine(n, threshold, runs=runs, seed=seed, jobs=jobs)
    one_plus = ModelSpec(kind="1+", max_queries=80 * n)

    series = (
        engine.query_curve(
            "ProbABNS", xs, algorithm_factory("prob-abns"), one_plus
        ),
        engine.query_curve(
            "ABNS(p0=t)", xs, algorithm_factory("abns", p0_multiple=1.0), one_plus
        ),
        engine.query_curve(
            "ABNS(p0=2t)", xs, algorithm_factory("abns", p0_multiple=2.0), one_plus
        ),
        engine.query_curve("Oracle", xs, algorithm_factory("oracle"), one_plus),
    )
    return ExperimentResult(
        exp_id="fig06",
        title="probabilistic ABNS vs fixed-p0 ABNS vs oracle",
        parameters={"n": n, "t": threshold, "runs": runs, "seed": seed},
        series=series,
    )
