"""Content-addressed on-disk cache for experiment results.

Re-running ``fig01`` with the same configuration recomputes hundreds of
thousands of trials that are fully determined by ``(experiment, config,
seed, code)``.  The cache stores each finished
:class:`~repro.experiments.common.ExperimentResult` as JSON under
``results/cache/``, keyed by a SHA-256 over:

* the experiment id,
* the runner's keyword configuration (``runs``, ``seed``, ...), and
* a fingerprint of the package's source tree (every ``.py`` under
  ``src/repro``), so **any** code change invalidates every entry --
  coarse but sound, and invalidation needs no bookkeeping.

Backend-only knobs (``jobs``) are excluded from the key: parallel and
serial runs produce bit-identical results, so they share entries.

Integrity: every entry embeds a SHA-256 checksum over its result
payload, and every store goes through the atomic tmp-file +
``os.replace`` discipline of :mod:`repro.experiments.atomicio` -- a
Ctrl-C (or ``kill -9``) mid-store can never leave a truncated entry
behind.  A corrupt, truncated or checksum-mismatched file found at load
time is *quarantined* to ``<cache-dir>/.quarantine/`` (for post-mortem
inspection) and counted as a miss, instead of crashing the run or
silently returning garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple

from repro.experiments.atomicio import atomic_write_text, quarantine_file
from repro.experiments.common import ExperimentResult
from repro.experiments.serialization import (
    experiment_result_from_dict,
    experiment_result_to_dict,
)
from repro.obs import get_registry

#: Import-time instruments (inert until metrics are enabled).
_OBS = get_registry()
_C_HITS = _OBS.counter("cache.hits")
_C_MISSES = _OBS.counter("cache.misses")
_C_STORES = _OBS.counter("cache.stores")
_C_QUARANTINED = _OBS.counter("resilience.cache_quarantined")

#: Subdirectory corrupt entries are moved to (never read back).
QUARANTINE_DIRNAME = ".quarantine"

#: Default cache directory, relative to the repository root (the cwd the
#: CLI is normally invoked from).
DEFAULT_CACHE_DIR = Path("results") / "cache"

#: Configuration keys that select the execution backend rather than the
#: computation; they never affect results and are excluded from keys.
#: ``backend``/``spool_dir`` cover the farm: a ``--backend farm`` run is
#: byte-identical to a local one, so they share cache entries (and the
#: farm's shard keys, derived from this key, stay comparable too).
_BACKEND_KEYS = frozenset({"jobs", "cache", "backend", "spool_dir"})

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over the package's source tree (cached per process).

    Hashes the relative path and contents of every ``*.py`` under the
    installed ``repro`` package, in sorted order, so any source edit --
    including to modules an experiment does not import directly --
    changes the fingerprint.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def cache_key(exp_id: str, params: Mapping[str, Any]) -> str:
    """Content hash identifying one experiment computation.

    Args:
        exp_id: Experiment id, e.g. ``"fig01"``.
        params: The runner's keyword configuration.  Backend-only keys
            (``jobs``) are dropped; the rest must be JSON-serialisable.

    Returns:
        A hex digest; equal keys guarantee bit-identical results.
    """
    payload = {
        "exp_id": exp_id,
        "params": {
            k: params[k] for k in sorted(params) if k not in _BACKEND_KEYS
        },
        "code": code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """A directory of cached :class:`ExperimentResult` JSON files.

    Args:
        directory: Cache root (created lazily on first store).

    Example:
        >>> cache = ResultCache("/tmp/doctest-cache")
        >>> cache.load("fig01", {"runs": 2}) is None
        True
    """

    def __init__(self, directory: os.PathLike | str = DEFAULT_CACHE_DIR) -> None:
        self._dir = Path(directory)
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Path:
        """The cache root."""
        return self._dir

    def _path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self._dir / QUARANTINE_DIRNAME

    @staticmethod
    def _result_checksum(result_payload: Any) -> str:
        """SHA-256 over the canonical JSON of an entry's result payload."""
        blob = json.dumps(result_payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it can never poison a run again.

        Quarantined copies get unique names (``<name>``, ``<name>.1``,
        ...): when a recomputed replacement turns out corrupt as well --
        a failing disk, say -- every generation survives for post-mortem
        instead of each new copy clobbering the previous one.
        """
        try:
            moved = quarantine_file(path, self.quarantine_dir)
        except OSError:
            # Quarantining is best-effort (e.g. an unwritable quarantine
            # dir); the entry was already rejected either way.
            return
        if moved is None:
            # The file vanished in a race -- already rejected either way.
            return
        _C_QUARANTINED.inc()

    def load(
        self, exp_id: str, params: Mapping[str, Any]
    ) -> Optional[ExperimentResult]:
        """Return the cached result for this computation, or ``None``.

        A missing entry is a plain miss.  An entry that is unreadable,
        unparseable, truncated, or whose embedded checksum does not
        match its result payload is quarantined to
        ``<cache-dir>/.quarantine/`` and counted as a miss -- it is
        never returned and never consulted again.
        """
        path = self._path(cache_key(exp_id, params))
        if not path.is_file():
            self.misses += 1
            _C_MISSES.inc()
            return None
        try:
            data = json.loads(path.read_text())
            stored_checksum = data["checksum"]
            payload = data["result"]
            if self._result_checksum(payload) != stored_checksum:
                raise ValueError(f"cache entry {path.name}: checksum mismatch")
            result = experiment_result_from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            _C_MISSES.inc()
            return None
        self.hits += 1
        _C_HITS.inc()
        return result

    def store(
        self, exp_id: str, params: Mapping[str, Any], result: ExperimentResult
    ) -> Path:
        """Write ``result`` under its content key; returns the file path.

        The envelope records the id and key inputs alongside the result
        so entries are self-describing when inspected by hand, plus a
        SHA-256 checksum of the result payload that :meth:`load`
        verifies.  The write is atomic (unique tmp file + fsync +
        ``os.replace``): an interrupt mid-store leaves either no entry
        or the complete previous one, never a truncated file.
        """
        key = cache_key(exp_id, params)
        path = self._path(key)
        payload = experiment_result_to_dict(result)
        envelope = {
            "exp_id": exp_id,
            "key": key,
            "code": code_fingerprint(),
            "checksum": self._result_checksum(payload),
            "result": payload,
        }
        atomic_write_text(path, json.dumps(envelope, indent=2))
        _C_STORES.inc()
        return path

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        if self._dir.is_dir():
            for path in sorted(self._dir.glob("*.json")):
                path.unlink()
                removed += 1
        return removed

    def stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` observed by this instance."""
        return self.hits, self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        if not self._dir.is_dir():
            return 0
        return sum(1 for _ in self._dir.glob("*.json"))

    def quarantine_count(self) -> int:
        """Number of corrupt entries parked in the quarantine directory.

        Counts every parked file, including the ``<name>.N`` copies a
        repeatedly corrupted entry accumulates.
        """
        if not self.quarantine_dir.is_dir():
            return 0
        return sum(1 for _ in self.quarantine_dir.iterdir())
