"""Content-addressed on-disk cache for experiment results.

Re-running ``fig01`` with the same configuration recomputes hundreds of
thousands of trials that are fully determined by ``(experiment, config,
seed, code)``.  The cache stores each finished
:class:`~repro.experiments.common.ExperimentResult` as JSON under
``results/cache/``, keyed by a SHA-256 over:

* the experiment id,
* the runner's keyword configuration (``runs``, ``seed``, ...), and
* a fingerprint of the package's source tree (every ``.py`` under
  ``src/repro``), so **any** code change invalidates every entry --
  coarse but sound, and invalidation needs no bookkeeping.

Backend-only knobs (``jobs``) are excluded from the key: parallel and
serial runs produce bit-identical results, so they share entries.
Corrupt or unreadable cache files count as misses and are ignored.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.serialization import (
    experiment_result_from_dict,
    experiment_result_to_dict,
)
from repro.obs import get_registry

#: Import-time instruments (inert until metrics are enabled).
_OBS = get_registry()
_C_HITS = _OBS.counter("cache.hits")
_C_MISSES = _OBS.counter("cache.misses")
_C_STORES = _OBS.counter("cache.stores")

#: Default cache directory, relative to the repository root (the cwd the
#: CLI is normally invoked from).
DEFAULT_CACHE_DIR = Path("results") / "cache"

#: Configuration keys that select the execution backend rather than the
#: computation; they never affect results and are excluded from keys.
_BACKEND_KEYS = frozenset({"jobs", "cache"})

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over the package's source tree (cached per process).

    Hashes the relative path and contents of every ``*.py`` under the
    installed ``repro`` package, in sorted order, so any source edit --
    including to modules an experiment does not import directly --
    changes the fingerprint.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def cache_key(exp_id: str, params: Mapping[str, Any]) -> str:
    """Content hash identifying one experiment computation.

    Args:
        exp_id: Experiment id, e.g. ``"fig01"``.
        params: The runner's keyword configuration.  Backend-only keys
            (``jobs``) are dropped; the rest must be JSON-serialisable.

    Returns:
        A hex digest; equal keys guarantee bit-identical results.
    """
    payload = {
        "exp_id": exp_id,
        "params": {
            k: params[k] for k in sorted(params) if k not in _BACKEND_KEYS
        },
        "code": code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """A directory of cached :class:`ExperimentResult` JSON files.

    Args:
        directory: Cache root (created lazily on first store).

    Example:
        >>> cache = ResultCache("/tmp/doctest-cache")
        >>> cache.load("fig01", {"runs": 2}) is None
        True
    """

    def __init__(self, directory: os.PathLike | str = DEFAULT_CACHE_DIR) -> None:
        self._dir = Path(directory)
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Path:
        """The cache root."""
        return self._dir

    def _path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def load(
        self, exp_id: str, params: Mapping[str, Any]
    ) -> Optional[ExperimentResult]:
        """Return the cached result for this computation, or ``None``.

        Malformed entries are treated as misses (and left for the next
        :meth:`store` to overwrite).
        """
        path = self._path(cache_key(exp_id, params))
        try:
            data = json.loads(path.read_text())
            result = experiment_result_from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            _C_MISSES.inc()
            return None
        self.hits += 1
        _C_HITS.inc()
        return result

    def store(
        self, exp_id: str, params: Mapping[str, Any], result: ExperimentResult
    ) -> Path:
        """Write ``result`` under its content key; returns the file path.

        The envelope records the id and key inputs alongside the result
        so entries are self-describing when inspected by hand.
        """
        key = cache_key(exp_id, params)
        path = self._path(key)
        self._dir.mkdir(parents=True, exist_ok=True)
        envelope = {
            "exp_id": exp_id,
            "key": key,
            "code": code_fingerprint(),
            "result": experiment_result_to_dict(result),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(envelope, indent=2))
        tmp.replace(path)
        _C_STORES.inc()
        return path

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        if self._dir.is_dir():
            for path in self._dir.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` observed by this instance."""
        return self.hits, self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        if not self._dir.is_dir():
            return 0
        return sum(1 for _ in self._dir.glob("*.json"))
