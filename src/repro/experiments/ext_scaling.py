"""Extension experiment: scaling with the neighbourhood size.

The asymptotic story behind the paper -- tcast needs ``O(t log(N/t))``
queries where sequential ordering needs ``Θ(N)`` -- is argued but never
plotted.  This extension sweeps ``N`` at fixed threshold and measures the
mean query cost in the regime where the gap is widest (``x = 0``: the
initiator must *certify* the negative, so sequential scans almost the
whole schedule while tcast discards log-many halves), alongside the
``2t·(log2(N/2t)+1)`` worst-case envelope.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analytic.bounds import upper_bound_queries
from repro.api import algorithm_factory
from repro.experiments.common import ExperimentResult, Series, SweepEngine
from repro.group_testing.model import ModelSpec
from repro.mac import SequentialOrdering

DEFAULT_T = 8
DEFAULT_NS = (32, 64, 128, 256, 512, 1024)
DEFAULT_X = 0


def run(
    *,
    runs: int = 200,
    seed: int = 2032,
    threshold: int = DEFAULT_T,
    ns: Sequence[int] = DEFAULT_NS,
    x: int = DEFAULT_X,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Measure query cost vs population size at fixed ``t`` and ``x``.

    Args:
        runs: Repetitions per population size.
        seed: Root seed.
        threshold: Fixed threshold ``t``.
        ns: Population sizes to sweep.
        x: Fixed positive count (default 0: the certification-heavy
            regime where the scaling gap is widest).
        jobs: Worker processes for the sweep (bit-identical to serial).
    """
    tcast_ys: List[float] = []
    prob_ys: List[float] = []
    seq_ys: List[float] = []
    bound_ys: List[float] = []
    two_t = algorithm_factory("2tbins")
    prob_abns = algorithm_factory("prob-abns")

    for n in ns:
        engine = SweepEngine(n, threshold, runs=runs, seed=seed + n, jobs=jobs)
        one_plus = ModelSpec(kind="1+", max_queries=100 * max(n, 1))

        tcast_ys.append(
            engine.query_curve("2tBins", [x], two_t, one_plus).ys[0]
        )
        prob_ys.append(
            engine.query_curve("ProbABNS", [x], prob_abns, one_plus).ys[0]
        )
        seq_ys.append(
            engine.baseline_curve("Sequential", [x], SequentialOrdering).ys[0]
        )
        bound_ys.append(float(upper_bound_queries(n, threshold)))

    fxs = tuple(float(n) for n in ns)
    return ExperimentResult(
        exp_id="ext_scaling",
        title=f"query cost vs neighbourhood size (t={threshold}, x={x})",
        parameters={"t": threshold, "x": x, "runs": runs, "seed": seed},
        series=(
            Series(label="2tBins", xs=fxs, ys=tuple(tcast_ys)),
            Series(label="ProbABNS", xs=fxs, ys=tuple(prob_ys)),
            Series(label="Sequential", xs=fxs, ys=tuple(seq_ys)),
            Series(label="2t(log2(N/2t)+1) bound", xs=fxs, ys=tuple(bound_ys)),
        ),
        xlabel="N (neighbourhood size)",
        ylabel="mean queries / slots",
        notes=(
            "sequential grows linearly in N; tcast logarithmically -- the "
            "O(t log(N/t)) vs Theta(N) separation of Sec I",
        ),
    )
