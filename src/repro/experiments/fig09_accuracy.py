"""Figure 9: accuracy of the probabilistic model vs mode separation.

The workload draws ``x`` from the symmetric bimodal mixture
``mu1 = n/2 - d``, ``mu2 = n/2 + d`` and the probabilistic scheme of
Sec VI classifies each draw as quiet/activity using ``r`` repeated
sampled probes.  Accuracy -- the fraction of correct classifications over
the runs -- is plotted against the half peak distance ``d`` for several
repeat counts.

Expected shape: accuracy rises with both ``r`` and ``d``; nine repeats
already exceed 90 % once ``d > 32``; around ``d ~ 8`` the modes overlap
so heavily that accuracy slumps to ~70 % regardless of ``r``.

Implicit parameters: ``n = 128``, common ``sigma = 8`` (Fig 11's visual
overlap at ``d = 8`` and near-separation at ``d = 16`` pins sigma to
this scale), equal mixture weights.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analytic.bimodal import BimodalSpec
from repro.core.probabilistic import ProbabilisticThreshold
from repro.experiments.common import (
    ExperimentResult,
    Series,
    _get_executor,
    resolve_jobs,
)
from repro.group_testing.model import OnePlusModel
from repro.sim.rng import derive_seed
from repro.workloads.bimodal import BimodalWorkload

DEFAULT_N = 128
DEFAULT_SIGMA = 8.0
DEFAULT_REPEATS = (1, 3, 9, 19)
DEFAULT_D_GRID = (4, 8, 12, 16, 24, 32, 48, 64)


def measure_accuracy(
    spec: BimodalSpec,
    repeats: int,
    *,
    runs: int,
    seed: int,
) -> float:
    """Monte-Carlo accuracy of the probabilistic scheme on one spec.

    Args:
        spec: The bimodal workload.
        repeats: Probe budget ``r``.
        runs: Number of draws scored.
        seed: Root seed.

    Returns:
        Fraction of draws whose quiet/activity classification matched the
        generating mixture component.
    """
    workload = BimodalWorkload(spec)
    scheme = ProbabilisticThreshold(spec, repeats=repeats)
    correct = 0
    for run_idx in range(runs):
        rng = np.random.default_rng(derive_seed(seed, f"r{repeats}/{run_idx}"))
        pop, draw = workload.draw_population(rng)
        model = OnePlusModel(pop, rng)
        decision = scheme.decide_detailed(model, spec.n // 2, rng)
        if decision.result.decision == draw.activity:
            correct += 1
    return correct / runs


def _accuracy_cell(task: Tuple[BimodalSpec, int, int, int]) -> float:
    """One (spec, r) cell for the process pool (module-level: picklable)."""
    spec, repeats, runs, seed = task
    return measure_accuracy(spec, repeats, runs=runs, seed=seed)


def run(
    *,
    runs: int = 400,
    seed: int = 2019,
    n: int = DEFAULT_N,
    sigma: float = DEFAULT_SIGMA,
    repeat_counts: Sequence[int] = DEFAULT_REPEATS,
    d_grid: Sequence[int] = DEFAULT_D_GRID,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Regenerate Figure 9's series.

    Args:
        runs: Draws per (d, r) cell (paper: 1000).
        seed: Root seed.
        n: Population size.
        sigma: Common mode standard deviation.
        repeat_counts: The ``r`` values to sweep.
        d_grid: Half peak distances to sweep.
        jobs: Worker processes; the (d, r) cells are independent Monte
            Carlo estimates, so sharding them is bit-identical to serial.
    """
    tasks = [
        (
            BimodalSpec.symmetric(n=n, d=float(d), sigma=sigma),
            r,
            runs,
            derive_seed(seed, f"d{d}"),
        )
        for r in repeat_counts
        for d in d_grid
    ]
    n_jobs = resolve_jobs(jobs)
    if n_jobs > 1 and len(tasks) > 1:
        accuracies = list(_get_executor(n_jobs).map(_accuracy_cell, tasks))
    else:
        accuracies = [_accuracy_cell(task) for task in tasks]
    series: List[Series] = []
    for i, r in enumerate(repeat_counts):
        ys = accuracies[i * len(d_grid) : (i + 1) * len(d_grid)]
        series.append(
            Series(
                label=f"r={r}",
                xs=tuple(float(d) for d in d_grid),
                ys=tuple(ys),
            )
        )
    return ExperimentResult(
        exp_id="fig09",
        title="probabilistic-model accuracy vs mode separation",
        parameters={
            "n": n,
            "sigma": sigma,
            "repeats": tuple(repeat_counts),
            "runs": runs,
            "seed": seed,
        },
        series=tuple(series),
        xlabel="d (half peak distance)",
        ylabel="accuracy",
    )
