"""Figure 1: performance of tcast in the 1+ scenario.

Queries (slots for the MAC baselines) vs the positive count ``x`` for
2tBins, Exponential Increase, CSMA and sequential ordering under the 1+
collision model.

Parameter choices the paper leaves implicit (recorded in EXPERIMENTS.md):
``N = 128``, ``t = 16``, 1000 runs per point in the paper (configurable
here), dense-then-geometric ``x`` grid.

Expected shape (Sec IV-C):
* every tcast curve peaks near ``x = t`` and is cheap at both extremes;
* Exponential Increase beats 2tBins for ``x << t`` and loses for
  ``x >> t``;
* CSMA grows roughly linearly in ``x``: fine for small ``x``,
  unacceptable past ``t``;
* sequential ordering starts near ``n - x`` and becomes competitive only
  for ``x >> t``.
"""

from __future__ import annotations

from typing import Optional

from repro.api import algorithm_factory
from repro.experiments.common import ExperimentResult, SweepEngine
from repro.group_testing.model import ModelSpec
from repro.mac import CsmaBaseline, SequentialOrdering
from repro.workloads.scenarios import x_sweep

#: Default population size (paper leaves it implicit).
DEFAULT_N = 128

#: Default threshold (paper leaves it implicit).
DEFAULT_T = 16


def run(
    *,
    runs: int = 400,
    seed: int = 2011,
    n: int = DEFAULT_N,
    threshold: int = DEFAULT_T,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Regenerate Figure 1's series.

    Args:
        runs: Repetitions per grid point (paper: 1000).
        seed: Root seed.
        n: Population size.
        threshold: Threshold ``t``.
        jobs: Worker processes for the sweep (bit-identical to serial).

    Returns:
        The four curves on a shared ``x`` grid.
    """
    xs = x_sweep(n)
    engine = SweepEngine(n, threshold, runs=runs, seed=seed, jobs=jobs)
    one_plus = ModelSpec(kind="1+", max_queries=50 * n)

    series = (
        engine.query_curve("2tBins", xs, algorithm_factory("2tbins"), one_plus),
        engine.query_curve(
            "ExpIncrease", xs, algorithm_factory("exponential"), one_plus
        ),
        engine.baseline_curve("CSMA", xs, CsmaBaseline),
        engine.baseline_curve("Sequential", xs, SequentialOrdering),
    )
    return ExperimentResult(
        exp_id="fig01",
        title="tcast vs baselines, 1+ collision model",
        parameters={"n": n, "t": threshold, "runs": runs, "seed": seed},
        series=series,
        xlabel="x (positive nodes)",
        ylabel="mean queries / slots",
    )
