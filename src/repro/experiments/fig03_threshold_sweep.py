"""Figure 3: performance of tcast as the threshold changes.

Mean 2tBins query cost vs the threshold ``t`` with the positive count
fixed at ``x = 4`` (the paper's choice), under both collision models.
Expected shape: the cost peaks around ``t = x`` and declines as ``t``
approaches 0 or ``n``; the 2+ curve stays at or below the 1+ curve for
every ``t``.

Implicit parameter: the population size.  The paper's described shape --
a single peak at ``t ~ x`` falling off toward both ends -- only holds for
*small* populations (the scale of their 12-14-mote testbed): we use
``N = 16``.  For large ``N`` a second, larger hump appears at
``t ~ N/2``, where ``2t`` bins degenerate to singletons and eliminating
the ``~N - t`` negatives costs one query each; the calibration sweep in
EXPERIMENTS.md documents this deviation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api import algorithm_factory
from repro.experiments.common import ExperimentResult, Series, SweepEngine
from repro.group_testing.model import ModelSpec

DEFAULT_N = 16
DEFAULT_X = 4


def threshold_grid(n: int) -> List[int]:
    """The ``t`` grid: every value near the peak, geometric afterwards."""
    grid = sorted(set(range(1, 13)) | {16, 20, 24, 32, 48, 64, 96} | {n})
    return [t for t in grid if t <= n]


def run(
    *,
    runs: int = 400,
    seed: int = 2013,
    n: int = DEFAULT_N,
    x: int = DEFAULT_X,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Regenerate Figure 3's series.

    Args:
        runs: Repetitions per grid point.
        seed: Root seed.
        n: Population size.
        x: Fixed positive count (paper: 4).
        jobs: Worker processes for the sweep (bit-identical to serial).
    """
    ts = threshold_grid(n)
    two_t = algorithm_factory("2tbins")

    curves = {
        "2tBins 1+": ModelSpec(kind="1+", max_queries=80 * n),
        "2tBins 2+": ModelSpec(kind="2+", max_queries=80 * n),
    }
    series = []
    for label, model_factory in curves.items():
        ys = []
        errs = []
        for t in ts:
            engine = SweepEngine(n, t, runs=runs, seed=seed, jobs=jobs)
            s = engine.query_curve(
                f"{label}/t{t}", [x], two_t, model_factory
            )
            ys.append(s.ys[0])
            errs.append(s.stderr[0])
        series.append(
            Series(
                label=label,
                xs=tuple(float(t) for t in ts),
                ys=tuple(ys),
                stderr=tuple(errs),
            )
        )
    return ExperimentResult(
        exp_id="fig03",
        title=f"query cost vs threshold (x={x} fixed)",
        parameters={"n": n, "x": x, "runs": runs, "seed": seed},
        series=tuple(series),
        xlabel="t (threshold)",
        ylabel="mean queries",
    )
