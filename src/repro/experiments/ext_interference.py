"""Extension experiment: tcast error profile under multihop interference.

The paper defers interference experiments to future work (the Kansei
testbed) but states the expected asymmetry: backcast-based tcast may
suffer false *negatives* under interfering traffic from neighbouring
regions, never false *positives* (Sec III-B).  This experiment sweeps
the interference rate and measures exactly that.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, Series
from repro.ext.multihop import InterferenceStudy

DEFAULT_RATES = (0.0, 0.02, 0.05, 0.1, 0.25, 0.5)


def run(
    *,
    runs: int = 60,
    seed: int = 2031,
    participants: int = 12,
    threshold: int = 4,
    rates: Sequence[float] = DEFAULT_RATES,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Sweep interference rates against full tcast sessions.

    Args:
        runs: tcast sessions per rate.
        seed: Root seed.
        participants: Neighbourhood size.
        threshold: Threshold ``t``.
        rates: Interference rates (frames per millisecond).
        jobs: Accepted for interface uniformity; this runner is not
            sweep-engine based and executes serially.
    """
    study = InterferenceStudy(
        participants=participants, threshold=threshold, seed=seed
    )
    results = study.sweep(list(rates), runs=runs)
    fxs = tuple(float(r.rate_per_ms) for r in results)
    total_fp = sum(r.false_positives for r in results)
    return ExperimentResult(
        exp_id="ext_interference",
        title="tcast error profile under interfering traffic",
        parameters={
            "participants": participants,
            "t": threshold,
            "runs": runs,
            "seed": seed,
        },
        series=(
            Series(
                label="false-negative rate",
                xs=fxs,
                ys=tuple(r.false_negative_rate for r in results),
            ),
            Series(
                label="mean queries",
                xs=fxs,
                ys=tuple(r.mean_queries for r in results),
            ),
        ),
        xlabel="interference rate (frames/ms)",
        ylabel="rate / queries",
        notes=(
            f"false positives across all rates: {total_fp} "
            "(backcast structurally cannot fabricate a HACK)",
        ),
    )
