"""Calibration of the radio-irregularity model against Fig 4's error rate.

EXPERIMENTS.md note C1 claims the HACK-miss parameters were "calibrated
so the paper's 12-mote suite lands near its reported 1.4 % false-negative
run rate"; this module *is* that calibration, kept executable so the
claim can be re-verified or re-fit after substrate changes:

1. :func:`measure_false_negative_rate` runs the full Fig 4 suite
   (participants, thresholds, uniform ``x``, reboots between runs) for
   one ``(p_single, decay)`` pair.
2. :func:`calibrate` sweeps ``p_single`` over a grid and returns the
   value whose measured rate is closest to the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core import TwoTBins
from repro.motes.testbed import Testbed, TestbedConfig
from repro.radio.irregularity import HackMissModel
from repro.sim.rng import derive_seed

#: The paper's reported rate: 102 false-negative runs out of 7200.
PAPER_TARGET_RATE = 102 / 7200


def measure_false_negative_rate(
    p_single: float,
    *,
    decay: float = 0.1,
    participants: int = 12,
    thresholds: Sequence[int] = (2, 4, 6),
    runs_per_cell: int = 25,
    seed: int = 0,
) -> Tuple[float, int]:
    """False-negative run rate of the Fig 4 suite for one miss model.

    Args:
        p_single: Lone-HACK miss probability.
        decay: Per-extra-HACK miss decay.
        participants: Participant mote count.
        thresholds: Thresholds swept (the paper's 2/4/6).
        runs_per_cell: Runs per (threshold, x) cell.
        seed: Root seed.

    Returns:
        ``(rate, total_runs)`` -- the measured false-negative fraction and
        the suite size it was measured over.
    """
    miss = HackMissModel(p_single=p_single, decay=decay)
    fn = 0
    total = 0
    for t in thresholds:
        for x in range(participants + 1):
            for r in range(runs_per_cell):
                cell = derive_seed(seed, f"p{p_single:g}/t{t}/x{x}/r{r}")
                tb = Testbed(
                    TestbedConfig(
                        num_participants=participants,
                        seed=cell,
                        hack_miss=miss,
                    )
                )
                rng = np.random.default_rng(derive_seed(cell, "wl"))
                positives = (
                    rng.choice(participants, size=x, replace=False) if x else []
                )
                tb.configure_positives(int(p) for p in positives)
                tb.reboot_all()
                run = tb.run_threshold_query(TwoTBins(), t)
                fn += run.false_negative
                total += 1
    return fn / total, total


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a calibration sweep.

    Attributes:
        best_p_single: Grid value whose rate is closest to the target.
        target_rate: The rate being matched (paper: 102/7200).
        table: ``(p_single, measured_rate)`` pairs across the grid.
        total_runs: Suite size behind each measurement.
    """

    best_p_single: float
    target_rate: float
    table: Tuple[Tuple[float, float], ...]
    total_runs: int

    def report(self) -> str:
        """Human-readable calibration table."""
        lines = [
            f"target false-negative rate: {self.target_rate:.2%} "
            f"(paper: 102/7200)",
            f"suite size per grid point: {self.total_runs} runs",
        ]
        for p, rate in self.table:
            marker = "  <-- selected" if p == self.best_p_single else ""
            lines.append(f"  p_single={p:<6g} rate={rate:.2%}{marker}")
        return "\n".join(lines)


def calibrate(
    *,
    target: float = PAPER_TARGET_RATE,
    grid: Sequence[float] = (0.01, 0.03, 0.05, 0.08, 0.12),
    decay: float = 0.1,
    participants: int = 12,
    runs_per_cell: int = 25,
    seed: int = 0,
) -> CalibrationResult:
    """Sweep ``p_single`` and pick the closest match to ``target``.

    Args:
        target: False-negative run rate to match.
        grid: Candidate ``p_single`` values.
        decay: Per-extra-HACK miss decay (held fixed; it is pinned by the
            paper's "misses concentrate on single-positive bins" finding
            rather than by the aggregate rate).
        participants: Participant mote count.
        runs_per_cell: Runs per (threshold, x) cell.
        seed: Root seed.

    Returns:
        The :class:`CalibrationResult`.

    Raises:
        ValueError: On an empty grid.
    """
    if not grid:
        raise ValueError("calibration grid must not be empty")
    table: List[Tuple[float, float]] = []
    total = 0
    for p in grid:
        rate, total = measure_false_negative_rate(
            p,
            decay=decay,
            participants=participants,
            runs_per_cell=runs_per_cell,
            seed=seed,
        )
        table.append((float(p), rate))
    best = min(table, key=lambda pair: abs(pair[1] - target))[0]
    return CalibrationResult(
        best_p_single=best,
        target_rate=target,
        table=tuple(table),
        total_runs=total,
    )
