"""Figure 8: the separation gap ``Δ`` as the modes move apart.

In the paper Fig 8 is a schematic: "Δ increases as the two
sub-distributions of the bimodal x distribution move away from each
other (m1 moves leftwards as mu1 decreases and m2 moves rightwards as
mu2 increases)."  This runner turns the schematic into data: for each
half peak distance ``d`` it computes the gap-optimal probe design and
reports the per-probe non-empty probabilities ``q1``/``q2`` of the two
modes and the usable tolerance ``eps = (q2 - q1)/2`` -- the quantities
``m1 = r q1``, ``m2 = r q2`` and ``Δ = m2 - m1`` are these scaled by the
repeat count.

All series are exact analytics (no Monte Carlo), so the runner is
instantaneous; the claim graded from it is the schematic's: ``Δ`` grows
monotonically with the separation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analytic.bimodal import BimodalSpec, analyze_separation
from repro.experiments.common import ExperimentResult, Series

DEFAULT_N = 128
DEFAULT_SIGMA = 8.0
DEFAULT_D_GRID = (18, 20, 24, 28, 32, 40, 48, 56, 64)


def run(
    *,
    runs: int = 0,
    seed: int = 2018,
    n: int = DEFAULT_N,
    sigma: float = DEFAULT_SIGMA,
    d_grid: Sequence[int] = DEFAULT_D_GRID,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Compute Fig 8's gap quantities across the separation sweep.

    Args:
        runs: Unused (analytic figure); kept for harness uniformity.
        seed: Unused (analytic figure); kept for harness uniformity.
        n: Population size.
        sigma: Common mode standard deviation.
        d_grid: Half peak distances (all must exceed ``2*sigma``).

        jobs: Accepted for interface uniformity; this runner is not
            sweep-engine based and executes serially.

    Returns:
        Three exact series over ``d``: ``q1``, ``q2`` and ``eps``.
    """
    q1s: List[float] = []
    q2s: List[float] = []
    epss: List[float] = []
    for d in d_grid:
        spec = BimodalSpec.symmetric(n=n, d=float(d), sigma=sigma)
        analysis = analyze_separation(spec)
        q1s.append(analysis.q1)
        q2s.append(analysis.q2)
        epss.append(analysis.eps)
    fxs = tuple(float(d) for d in d_grid)
    return ExperimentResult(
        exp_id="fig08",
        title="separation gap vs peak distance (the paper's schematic, "
        "computed)",
        parameters={"n": n, "sigma": sigma, "runs": runs, "seed": seed},
        series=(
            Series(label="q1 (quiet mode)", xs=fxs, ys=tuple(q1s)),
            Series(label="q2 (activity mode)", xs=fxs, ys=tuple(q2s)),
            Series(label="eps = (q2-q1)/2", xs=fxs, ys=tuple(epss)),
        ),
        xlabel="d (half peak distance)",
        ylabel="per-probe probability",
        notes=(
            "m1 = r*q1, m2 = r*q2, Delta = m2 - m1: the schematic's gap is "
            "eps scaled by the repeat count",
        ),
    )
