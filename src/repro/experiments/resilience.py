# tcast-lint: disable-file=TCL002 -- supervision deadlines, stall detection and backoff are real harness time (worker processes hang in wall-clock time), never simulated time
"""Crash-safe sweep execution: shard journal, worker supervision, shutdown.

PR 1 made the simulated *protocol* fault-tolerant; this module makes the
*execution harness* fault-tolerant, with the same determinism guarantee:
a resumed sweep is bit-identical to an uninterrupted one.  Three pieces:

**Shard journal** (:class:`ShardJournal`).  Every completed
``(label, x, run-block)`` shard is appended to an on-disk journal as one
CRC32-framed JSON record (see :mod:`repro.experiments.atomicio`), flushed
to the kernel before the run moves on (fsync is batched on a time
cadence; see :class:`ShardJournal`).  ``tcast-experiments run --resume``
reloads the journal and skips every cell whose runs are already recorded;
because shard costs derive statelessly from ``(seed, label, x, run)``,
the stitched-together result is byte-identical to an uninterrupted run.
Records are keyed per *run*, not per shard, so a resume with a different
``--jobs`` (different shard boundaries) still reuses everything covered.
A torn tail -- crash mid-append -- fails its CRC and is dropped on load;
the journal is then compacted with an atomic ``tmp + os.replace``.

**Worker supervision** (:func:`run_supervised`).  The parallel sweep path
submits shards through a supervised loop that detects crashed workers
(:class:`~concurrent.futures.process.BrokenProcessPool` -- ``kill -9``,
OOM) and hung workers (no shard completion within a stall deadline
derived from the ``sweep.shard_seconds`` observation histogram), recycles
the poisoned pool, and requeues the lost shards with exponential backoff.
A shard that fails more than :attr:`SupervisionPolicy.max_retries` times
is *quarantined*: the run completes with an explicit degraded report
instead of dying.  A shard that *raises* (a bug, not an infrastructure
failure) aborts immediately with the full remote traceback and the
failing coordinates -- never a bare ``BrokenProcessPool``.

**Graceful shutdown** (:class:`GracefulShutdown`).  SIGINT/SIGTERM raise
:class:`GracefulExit` in the main thread; the supervised loop drains
in-flight shards for a bounded grace period (journalling each), the CLI
flushes the journal and metrics snapshot, and prints the exact
``--resume`` command.  A second signal kills the process immediately.

The supervision state machine::

    SUBMITTED --completed--> JOURNALLED
        |                        ^
        |--worker crash/stall----|--retry <= max_retries--> REQUEUED
        |                        |
        |                        +--retry >  max_retries--> QUARANTINED
        +--in-shard exception--> ABORT (ShardExecutionError, remote tb)

Activation is context-based: the CLI (or a test) builds a
:class:`RunContext` and enters :func:`activate`; the sweep engine in
:mod:`repro.experiments.common` picks it up via :func:`current_context`.
Library callers that never activate a context get the original
unsupervised fast path, so the fault-free overhead is zero by default.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, CancelledError, Future, wait
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.atomicio import (
    atomic_write_text,
    checksum_line,
    parse_checksum_line,
)
from repro.obs import MetricsSnapshot, get_registry

#: Import-time instruments (inert until metrics are enabled).
_OBS = get_registry()
_R_JOURNAL_RECORDS = _OBS.counter("resilience.journal_records")
_R_RESUMED_RECORDS = _OBS.counter("resilience.journal_resumed_records")
_R_DROPPED_RECORDS = _OBS.counter("resilience.journal_dropped_records")
_R_RESUME_SKIPS = _OBS.counter("resilience.resume_skips")
_R_REQUEUES = _OBS.counter("resilience.requeues")
_R_QUARANTINED = _OBS.counter("resilience.quarantined_shards")
_R_WORKER_FAILURES = _OBS.counter("resilience.worker_failures")
_R_STALLS = _OBS.counter("resilience.stalls")
_R_POOL_RECYCLES = _OBS.counter("resilience.pool_recycles")
_R_GRACEFUL_EXITS = _OBS.counter("resilience.graceful_exits")
_R_DRAIN_LOSSES = _OBS.counter("resilience.drain_losses")
_R_JOURNAL_TIMER = _OBS.timer("resilience.journal_write")

_LOG = logging.getLogger(__name__)

#: Journal file format version (bumped on incompatible record changes).
JOURNAL_FORMAT = 1

#: Cold-start no-progress deadline, in seconds.  Applied by
#: :meth:`SupervisionPolicy.stall_deadline` when *no* shard duration has
#: been observed anywhere -- metrics collection disabled, or the
#: ``sweep.shard_seconds`` histogram still empty at the very start of a
#: run.  It must be generous: with nothing observed there is no basis to
#: distinguish a slow first shard from a hung pool, and a premature
#: recycle on a cold cache costs far more than five idle minutes.  The
#: fallback is logged once per process so operators can tell a
#: cold-start deadline apart from an adaptive one.
STALL_COLD_START_DEFAULT = 300.0

#: Process-wide flag so the cold-start fallback is logged exactly once.
_stall_cold_start_logged = False


class GracefulExit(BaseException):
    """Raised in the main thread when SIGINT/SIGTERM requests shutdown.

    Derives from :class:`BaseException` (like :class:`KeyboardInterrupt`)
    so ordinary ``except Exception`` recovery code cannot swallow it.
    """

    def __init__(self, signum: int) -> None:
        self.signum = signum
        super().__init__(f"graceful shutdown requested ({signal.Signals(signum).name})")


class ShardExecutionError(RuntimeError):
    """A sweep shard raised inside a worker process.

    Carries the failing ``(label, x, run-block)`` coordinates and the
    full remote traceback, so the parent's error message is actionable
    instead of a bare :class:`BrokenProcessPool`.
    """

    def __init__(
        self,
        label: str,
        x: int,
        run_lo: int,
        run_hi: int,
        error_type: str,
        remote_traceback: str,
    ) -> None:
        self.label = label
        self.x = x
        self.run_lo = run_lo
        self.run_hi = run_hi
        self.error_type = error_type
        self.remote_traceback = remote_traceback
        super().__init__(
            f"shard {label!r} x={x} runs [{run_lo},{run_hi}) raised "
            f"{error_type} in a worker process; remote traceback:\n"
            f"{remote_traceback}"
        )


@dataclass(frozen=True)
class ShardOutcome:
    """What one guarded shard execution produced (picklable).

    Exactly one of ``costs`` / ``error_type`` is set: workers catch every
    in-shard exception and ship it home as a formatted traceback rather
    than letting an unpicklable exception take down the pool channel.
    """

    costs: Optional[List[float]] = None
    snapshot: Optional[MetricsSnapshot] = None
    error_type: Optional[str] = None
    remote_traceback: Optional[str] = None


def shard_coords(task: Any) -> Tuple[str, int, int, int]:
    """``(label, x, run_lo, run_hi)`` of a sweep task (duck-typed)."""
    return (
        str(getattr(task, "label", "?")),
        int(getattr(task, "x", -1)),
        int(getattr(task, "run_lo", -1)),
        int(getattr(task, "run_hi", -1)),
    )


# ---------------------------------------------------------------------------
# Shard journal
# ---------------------------------------------------------------------------


class ShardJournal:
    """A crash-safe, append-only record of completed sweep shards.

    File layout: a CRC32-framed header line identifying ``(format,
    exp_id, key)`` followed by one CRC32-framed JSON record per completed
    shard (``label``, ``x``, ``lo``, ``hi``, per-run ``costs``).  Appends
    are flushed so a completed shard survives ``kill -9`` of the run,
    with fsync batched per ``fsync_interval`` against host failure; the
    file itself is created (and compacted after torn-tail repair) via
    atomic ``tmp + os.replace``.

    Records are merged into a per-``(label, x)`` run -> cost map, so
    :meth:`lookup` can answer for *any* shard boundaries, not just the
    ones the interrupted run happened to use.

    Args:
        path: Journal file location.
        exp_id: Experiment the journal belongs to.
        key: Content key of the computation (same derivation as the
            result cache: config + seed + code fingerprint), so a stale
            journal can never leak records into a different computation.
        resume: Load existing records (``--resume``); otherwise any
            existing file for this key is discarded.
        fsync: Fsync the journal (disable only in tests).
        fsync_interval: Minimum seconds between fsyncs.  Every append is
            flushed to the kernel immediately (so a completed shard
            survives any *process* death, ``kill -9`` included); the
            fsync -- which guards against host/power failure -- is
            batched to at most one per interval, plus one on close,
            keeping the fault-free journal overhead bounded.  A record
            lost to a host crash inside the interval simply fails its
            CRC (or is absent) and gets recomputed on ``--resume``.
    """

    def __init__(
        self,
        path: os.PathLike | str,
        *,
        exp_id: str,
        key: str,
        resume: bool = False,
        fsync: bool = True,
        fsync_interval: float = 2.0,
    ) -> None:
        self._path = Path(path)
        self._exp_id = exp_id
        self._key = key
        self._fsync = fsync
        self._fsync_interval = fsync_interval
        self._last_fsync = 0.0
        self._fh: Optional[Any] = None
        self._cells: Dict[Tuple[str, int], Dict[int, float]] = {}
        self.appended_records = 0
        self.resumed_records = 0
        self.dropped_records = 0
        #: Quarantine records seen (loaded plus appended this run).
        #: Quarantines are *advisory*: a resumed run retries the shard
        #: from scratch (fresh workers may well succeed where a sick
        #: host gave up), the record only documents the prior failure.
        self.quarantined_records = 0
        if resume:
            self._load()
        elif self._path.exists():
            self._path.unlink()

    @property
    def path(self) -> Path:
        """The journal file location."""
        return self._path

    def _header_payload(self) -> str:
        return json.dumps(
            {"format": JOURNAL_FORMAT, "exp_id": self._exp_id, "key": self._key},
            sort_keys=True,
            separators=(",", ":"),
        )

    def _load(self) -> None:
        """Replay a journal from disk, dropping torn or corrupt records."""
        if not self._path.exists():
            return
        lines = self._path.read_text(encoding="utf-8").splitlines()
        if not lines:
            return
        header = parse_checksum_line(lines[0])
        if header is None:
            self.dropped_records += len(lines)
            _R_DROPPED_RECORDS.inc(len(lines))
            self._path.unlink()
            return
        try:
            meta = json.loads(header)
        except ValueError:
            meta = None
        if (
            not isinstance(meta, dict)
            or meta.get("format") != JOURNAL_FORMAT
            or meta.get("exp_id") != self._exp_id
            or meta.get("key") != self._key
        ):
            # A journal for a different computation (code or config
            # changed since the crash): start fresh rather than resume
            # records that no longer mean anything.
            self._path.unlink()
            return
        valid_payloads: List[str] = []
        for line in lines[1:]:
            payload = parse_checksum_line(line)
            if payload is not None and self._parse_quarantine(payload):
                # Prior-run quarantine: keep the record (post-mortem
                # trail) but do not skip the shard -- resume retries it.
                self.quarantined_records += 1
                valid_payloads.append(payload)
                continue
            record = self._parse_record(payload) if payload is not None else None
            if record is None:
                self.dropped_records += 1
                _R_DROPPED_RECORDS.inc()
                continue
            label, x, lo, costs = record
            cell = self._cells.setdefault((label, x), {})
            for offset, cost in enumerate(costs):
                cell[lo + offset] = cost
            self.resumed_records += 1
            _R_RESUMED_RECORDS.inc()
            assert payload is not None
            valid_payloads.append(payload)
        if self.dropped_records:
            # Compact: rewrite only the valid prefix atomically so the
            # next append lands on a clean file.
            text = checksum_line(self._header_payload()) + "".join(
                checksum_line(p) for p in valid_payloads
            )
            atomic_write_text(self._path, text, fsync=self._fsync)

    @staticmethod
    def _parse_quarantine(payload: str) -> bool:
        """Whether a framed payload is a well-formed quarantine record."""
        try:
            data = json.loads(payload)
        except ValueError:
            return False
        return (
            isinstance(data, dict)
            and data.get("kind") == "quarantine"
            and all(k in data for k in ("label", "x", "lo", "hi", "reason"))
        )

    @staticmethod
    def _parse_record(
        payload: str,
    ) -> Optional[Tuple[str, int, int, List[float]]]:
        try:
            data = json.loads(payload)
            label = str(data["label"])
            x = int(data["x"])
            lo = int(data["lo"])
            hi = int(data["hi"])
            costs = [float(c) for c in data["costs"]]
        except (ValueError, KeyError, TypeError):
            return None
        if hi - lo != len(costs):
            return None
        return label, x, lo, costs

    def _open(self) -> Any:
        if self._fh is None:
            if not self._path.exists():
                atomic_write_text(
                    self._path,
                    checksum_line(self._header_payload()),
                    fsync=self._fsync,
                )
            self._fh = open(self._path, "a", encoding="utf-8")
        return self._fh

    def record(
        self, label: str, x: int, lo: int, hi: int, costs: Sequence[float]
    ) -> None:
        """Durably append one completed shard (flush + batched fsync)."""
        payload = json.dumps(
            {"label": label, "x": int(x), "lo": int(lo), "hi": int(hi),
             "costs": [float(c) for c in costs]},
            separators=(",", ":"),
        )
        with _R_JOURNAL_TIMER.time():
            fh = self._open()
            fh.write(checksum_line(payload))
            fh.flush()
            now = time.monotonic()
            if self._fsync and now - self._last_fsync >= self._fsync_interval:
                os.fsync(fh.fileno())
                self._last_fsync = now
        cell = self._cells.setdefault((label, int(x)), {})
        for offset, cost in enumerate(costs):
            cell[int(lo) + offset] = float(cost)
        self.appended_records += 1
        _R_JOURNAL_RECORDS.inc()

    def record_quarantine(
        self, label: str, x: int, lo: int, hi: int, reason: str
    ) -> None:
        """Durably append a quarantine record for a given-up shard.

        Quarantine records share the journal's CRC framing and survive
        compaction, but never satisfy :meth:`lookup`: a later
        ``--resume`` retries the shard from scratch.  They feed the
        degraded/quarantined counts of ``tcast-experiments journal
        info`` so an operator can see *why* a crashed run was degraded
        without reconstructing it from logs.
        """
        payload = json.dumps(
            {"kind": "quarantine", "label": label, "x": int(x),
             "lo": int(lo), "hi": int(hi), "reason": str(reason)},
            separators=(",", ":"),
        )
        with _R_JOURNAL_TIMER.time():
            fh = self._open()
            fh.write(checksum_line(payload))
            fh.flush()
            now = time.monotonic()
            if self._fsync and now - self._last_fsync >= self._fsync_interval:
                os.fsync(fh.fileno())
                self._last_fsync = now
        self.quarantined_records += 1

    def lookup(
        self, label: str, x: int, lo: int, hi: int
    ) -> Optional[List[float]]:
        """Recorded per-run costs for ``[lo, hi)``, or ``None`` if any
        run in the range is missing (shard must then be recomputed)."""
        cell = self._cells.get((label, int(x)))
        if cell is None:
            return None
        try:
            return [cell[run] for run in range(int(lo), int(hi))]
        except KeyError:
            return None

    def close(self) -> None:
        """Flush, fsync and close the append handle."""
        if self._fh is not None:
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def discard(self) -> None:
        """Close and delete the journal (after a fully successful run)."""
        self.close()
        if self._path.exists():
            self._path.unlink()


def journal_summary(path: os.PathLike | str) -> Optional[Dict[str, Any]]:
    """Read-only summary of a journal file for ``journal info``.

    Lenient by design: it reads *any* journal regardless of which
    experiment it belongs to (no ``exp_id``/``key`` to match against),
    skips corrupt records instead of failing, and never mutates the
    file -- inspecting a crashed run must not change what ``--resume``
    will see.

    Returns:
        ``None`` when the file is missing or its header is unreadable;
        otherwise a dict with ``exp_id``, ``key``, ``format``,
        ``shard_records``, ``quarantined_records``, ``corrupt_records``,
        ``cells`` (distinct ``(label, x)`` grid points with journalled
        costs) and ``runs`` (total individual run costs recorded).
    """
    file = Path(path)
    try:
        lines = file.read_text(encoding="utf-8").splitlines()
    except OSError:
        return None
    if not lines:
        return None
    header = parse_checksum_line(lines[0])
    if header is None:
        return None
    try:
        meta = json.loads(header)
    except ValueError:
        return None
    if not isinstance(meta, dict):
        return None
    shard_records = 0
    quarantined = 0
    corrupt = 0
    cells: Dict[Tuple[str, int], set] = {}
    for line in lines[1:]:
        payload = parse_checksum_line(line)
        if payload is None:
            corrupt += 1
            continue
        if ShardJournal._parse_quarantine(payload):
            quarantined += 1
            continue
        record = ShardJournal._parse_record(payload)
        if record is None:
            corrupt += 1
            continue
        label, x, lo, costs = record
        shard_records += 1
        cells.setdefault((label, x), set()).update(
            range(lo, lo + len(costs))
        )
    return {
        "exp_id": meta.get("exp_id"),
        "key": meta.get("key"),
        "format": meta.get("format"),
        "shard_records": shard_records,
        "quarantined_records": quarantined,
        "corrupt_records": corrupt,
        "cells": len(cells),
        "runs": sum(len(runs) for runs in cells.values()),
    }


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------


class GracefulShutdown:
    """Installs SIGINT/SIGTERM handlers that raise :class:`GracefulExit`.

    The first signal raises in the main thread, giving the supervised
    loop a chance to drain in-flight shards and the CLI a chance to
    flush the journal, write the metrics snapshot and print the exact
    ``--resume`` command.  A second signal restores the default handler
    and re-delivers itself: the operator can always force-quit.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.requested: Optional[int] = None
        self._previous: Dict[int, Any] = {}

    def _handler(self, signum: int, frame: Any) -> None:
        if self.requested is not None:
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        self.requested = signum
        _R_GRACEFUL_EXITS.inc()
        raise GracefulExit(signum)

    def __enter__(self) -> "GracefulShutdown":
        for signum in self.SIGNALS:
            self._previous[signum] = signal.signal(signum, self._handler)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()


# ---------------------------------------------------------------------------
# Supervision policy & context
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SupervisionPolicy:
    """Tunables of the supervised execution loop.

    The stall deadline -- how long the loop waits without *any* shard
    completing before declaring the pool wedged -- is derived from the
    ``sweep.shard_seconds`` observation histogram (and from completion
    times the supervisor itself has seen): ``stall_factor`` times the
    slowest shard on record, floored at ``stall_floor``.  Until any
    shard has completed anywhere -- metrics disabled, or the histogram
    still empty -- ``stall_default`` applies (the documented
    :data:`STALL_COLD_START_DEFAULT` floor, logged once on first use).
    Set ``stall_timeout`` to pin it explicitly (chaos tests do).
    """

    max_retries: int = 3
    stall_timeout: Optional[float] = None
    stall_floor: float = 30.0
    stall_factor: float = 8.0
    stall_default: float = STALL_COLD_START_DEFAULT
    poll_interval: float = 0.25
    #: Submitted-but-unfinished shards per worker; bounds how much work
    #: a pool recycle can lose.
    submit_ahead: int = 2
    backoff_base: float = 0.5
    backoff_cap: float = 8.0
    #: How long a graceful shutdown waits for in-flight shards.
    drain_grace: float = 5.0

    def stall_deadline(self, observed_max: float) -> float:
        """The current no-progress deadline in seconds."""
        if self.stall_timeout is not None:
            return self.stall_timeout
        slowest = observed_max
        hist = get_registry().snapshot().histograms.get("sweep.shard_seconds")
        if hist is not None and hist.max is not None:
            slowest = max(slowest, hist.max)
        if slowest <= 0.0:
            # Cold start: nothing observed yet (metrics disabled, or no
            # shard has completed anywhere).  Log the fallback once so a
            # 300 s deadline in the field is explainable.
            global _stall_cold_start_logged
            if not _stall_cold_start_logged:
                _stall_cold_start_logged = True
                _LOG.info(
                    "stall deadline cold start: no shard duration "
                    "observed yet; using the default of %.0f s until "
                    "the first shard completes",
                    self.stall_default,
                )
            return self.stall_default
        return max(self.stall_floor, self.stall_factor * slowest)


@dataclass
class RunContext:
    """Everything resilient execution needs for one experiment run.

    Built by the CLI (or a test) and installed with :func:`activate`;
    the sweep engine discovers it via :func:`current_context`.
    """

    journal: Optional[ShardJournal] = None
    policy: SupervisionPolicy = field(default_factory=SupervisionPolicy)
    shutdown: Optional[GracefulShutdown] = None
    resumed: bool = False
    #: Human-readable coordinates of quarantined shards (degraded run).
    degraded: List[str] = field(default_factory=list)
    #: A started :class:`repro.farm.coordinator.FarmCoordinator` when
    #: the run uses ``--backend farm``; the sweep engine then routes
    #: shard batches through it instead of a local process pool.  Typed
    #: loosely to keep :mod:`repro.farm` importing *this* module, not
    #: the other way around.
    farm: Optional[Any] = None

    def lookup_shard(self, task: Any) -> Optional[List[float]]:
        """Journal hit for ``task``'s run block, or ``None``."""
        if self.journal is None:
            return None
        label, x, lo, hi = shard_coords(task)
        costs = self.journal.lookup(label, x, lo, hi)
        if costs is not None:
            _R_RESUME_SKIPS.inc()
        return costs

    def record_shard(self, task: Any, costs: Sequence[float]) -> None:
        """Durably journal ``task``'s completed run block."""
        if self.journal is not None:
            label, x, lo, hi = shard_coords(task)
            self.journal.record(label, x, lo, hi, costs)

    def mark_degraded(self, task: Any, reason: str) -> None:
        """Record a quarantined shard for the degraded report.

        Also journals a quarantine record (when a journal is attached),
        so ``tcast-experiments journal info`` can report why the run
        was degraded after the process is long gone.
        """
        label, x, lo, hi = shard_coords(task)
        self.degraded.append(
            f"{label!r} x={x} runs [{lo},{hi}): {reason}"
        )
        if self.journal is not None:
            self.journal.record_quarantine(label, x, lo, hi, reason)


_ACTIVE: Optional[RunContext] = None


def current_context() -> Optional[RunContext]:
    """The :class:`RunContext` installed by :func:`activate`, if any."""
    return _ACTIVE


@contextmanager
def activate(ctx: RunContext) -> Iterator[RunContext]:
    """Install ``ctx`` as the process's active run context."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ctx
    try:
        yield ctx
    finally:
        _ACTIVE = previous
        if ctx.journal is not None:
            ctx.journal.close()


# ---------------------------------------------------------------------------
# Supervised process pools
# ---------------------------------------------------------------------------

#: Supervised pools, one per worker count.  Kept separate from the
#: unsupervised executor cache in :mod:`repro.experiments.common`
#: because supervision must be able to kill and replace a wedged pool.
_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(jobs)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=jobs)
        _POOLS[jobs] = pool
    return pool


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if its workers are hung or dead."""
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        if proc.is_alive():
            proc.kill()
    for proc in processes:
        proc.join(timeout=2.0)


def _recycle_pool(jobs: int) -> ProcessPoolExecutor:
    """Replace the supervised pool for ``jobs`` with a fresh one."""
    stale = _POOLS.pop(jobs, None)
    if stale is not None:
        _kill_pool(stale)
    _R_POOL_RECYCLES.inc()
    return _get_pool(jobs)


def shutdown_pools() -> None:
    """Tear down every supervised pool (test/interpreter hygiene)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        _kill_pool(pool)


# ---------------------------------------------------------------------------
# The supervised execution loop
# ---------------------------------------------------------------------------


def _requeue_or_quarantine(
    pending: Deque[Tuple[int, Any, int]],
    idx: int,
    task: Any,
    attempts: int,
    policy: SupervisionPolicy,
    on_quarantine: Callable[[int, Any, str], None],
    reason: str,
) -> None:
    attempts += 1
    if attempts > policy.max_retries:
        _R_QUARANTINED.inc()
        on_quarantine(
            idx, task, f"{reason}; gave up after {attempts} attempts"
        )
    else:
        _R_REQUEUES.inc()
        pending.append((idx, task, attempts))


def _drain_in_flight(
    in_flight: Dict["Future[ShardOutcome]", Tuple[int, Any, int, float]],
    on_complete: Callable[[int, Any, ShardOutcome], None],
    grace: float,
) -> None:
    """Best-effort drain during graceful shutdown: journal what finishes."""
    for fut in in_flight:
        fut.cancel()  # queued-but-unstarted shards stop here
    done, _ = wait(set(in_flight), timeout=grace)
    for fut in done:
        idx, task, _, _ = in_flight[fut]
        try:
            outcome = fut.result()
        except (CancelledError, Exception):
            # Shutdown already in progress: a shard lost here is simply
            # not journalled and will be recomputed on --resume.
            _R_DRAIN_LOSSES.inc()
            continue
        if outcome.error_type is None and outcome.costs is not None:
            on_complete(idx, task, outcome)


def run_supervised(
    fn: Callable[[Any], ShardOutcome],
    items: Sequence[Tuple[int, Any]],
    *,
    jobs: int,
    context: RunContext,
    on_complete: Callable[[int, Any, ShardOutcome], None],
    on_quarantine: Callable[[int, Any, str], None],
) -> None:
    """Execute shards on a supervised process pool.

    Args:
        fn: Module-level guarded shard function (returns
            :class:`ShardOutcome`, never raises for in-shard errors).
        items: ``(index, task)`` pairs; ``task`` must expose
            ``label``/``x``/``run_lo``/``run_hi`` for error reporting.
        jobs: Worker-process count.
        context: Active run context (policy, journal).
        on_complete: Called in submission-completion order with
            ``(index, task, outcome)`` for every successful shard --
            the caller journals and aggregates there.
        on_quarantine: Called with ``(index, task, reason)`` when a
            shard exhausts its retries.

    Raises:
        ShardExecutionError: A shard raised inside a worker (a bug, not
            an infrastructure failure) -- carries coordinates and the
            remote traceback.
        GracefulExit: Re-raised after draining when SIGINT/SIGTERM
            arrived mid-run.
    """
    policy = context.policy
    pending: Deque[Tuple[int, Any, int]] = deque(
        (idx, task, 0) for idx, task in items
    )
    in_flight: Dict["Future[ShardOutcome]", Tuple[int, Any, int, float]] = {}
    observed_max = 0.0
    consecutive_recycles = 0
    pool = _get_pool(jobs)
    last_progress = time.monotonic()
    try:
        while pending or in_flight:
            while pending and len(in_flight) < jobs * policy.submit_ahead:
                idx, task, attempts = pending.popleft()
                fut = pool.submit(fn, task)
                in_flight[fut] = (idx, task, attempts, time.monotonic())
            done, _ = wait(
                set(in_flight),
                timeout=policy.poll_interval,
                return_when=FIRST_COMPLETED,
            )
            pool_broken = False
            for fut in done:
                idx, task, attempts, submitted = in_flight.pop(fut)
                try:
                    outcome = fut.result()
                except (BrokenProcessPool, CancelledError):
                    # The worker died (kill -9, OOM) or the future fell
                    # victim to a recycle race; either way the shard did
                    # not run to completion.
                    pool_broken = True
                    _requeue_or_quarantine(
                        pending, idx, task, attempts, policy,
                        on_quarantine, "worker process crashed",
                    )
                    continue
                if outcome.error_type is not None:
                    label, x, lo, hi = shard_coords(task)
                    for other in in_flight:
                        other.cancel()
                    raise ShardExecutionError(
                        label, x, lo, hi,
                        outcome.error_type,
                        outcome.remote_traceback or "<no traceback captured>",
                    )
                observed_max = max(
                    observed_max, time.monotonic() - submitted
                )
                last_progress = time.monotonic()
                consecutive_recycles = 0
                on_complete(idx, task, outcome)
            if pool_broken:
                _R_WORKER_FAILURES.inc()
                for fut, (idx, task, attempts, _) in list(in_flight.items()):
                    _requeue_or_quarantine(
                        pending, idx, task, attempts, policy,
                        on_quarantine, "lost to a broken worker pool",
                    )
                in_flight.clear()
                _backoff(policy, consecutive_recycles)
                consecutive_recycles += 1
                pool = _recycle_pool(jobs)
                last_progress = time.monotonic()
                continue
            if (
                in_flight
                and not done
                and time.monotonic() - last_progress
                > policy.stall_deadline(observed_max)
            ):
                _R_STALLS.inc()
                for fut, (idx, task, attempts, _) in list(in_flight.items()):
                    _requeue_or_quarantine(
                        pending, idx, task, attempts, policy,
                        on_quarantine, "shard deadline exceeded (hung worker)",
                    )
                in_flight.clear()
                _backoff(policy, consecutive_recycles)
                consecutive_recycles += 1
                pool = _recycle_pool(jobs)
                last_progress = time.monotonic()
    except GracefulExit:
        _drain_in_flight(in_flight, on_complete, policy.drain_grace)
        raise


def _backoff(policy: SupervisionPolicy, consecutive: int) -> None:
    """Sleep before resubmitting after a pool failure (exponential)."""
    delay = min(policy.backoff_cap, policy.backoff_base * (2 ** consecutive))
    if delay > 0:
        time.sleep(delay)
