"""JSON (de)serialisation for results.

Experiment artefacts need to survive outside the Python process (CI
archives, cross-run comparisons, notebooks).  Everything here is plain
``json``-module compatible: no numpy scalars leak into the output.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.result import RoundRecord, ThresholdResult
from repro.experiments.common import ExperimentResult, Series


def threshold_result_to_dict(result: ThresholdResult) -> dict[str, Any]:
    """Plain-dict form of a :class:`ThresholdResult` (JSON-safe)."""
    return {
        "decision": bool(result.decision),
        "queries": int(result.queries),
        "rounds": int(result.rounds),
        "threshold": int(result.threshold),
        "confirmed_positives": int(result.confirmed_positives),
        "exact": bool(result.exact),
        "algorithm": result.algorithm,
        "history": [
            {
                "index": r.index,
                "bins_requested": r.bins_requested,
                "bins_queried": r.bins_queried,
                "silent_bins": r.silent_bins,
                "captured": r.captured,
                "evidence": r.evidence,
                "eliminated": r.eliminated,
                "candidates_after": r.candidates_after,
                "p_estimate": r.p_estimate,
            }
            for r in result.history
        ],
    }


def threshold_result_from_dict(data: Mapping[str, Any]) -> ThresholdResult:
    """Inverse of :func:`threshold_result_to_dict`.

    Raises:
        KeyError: On missing required fields.
    """
    history = tuple(
        RoundRecord(
            index=int(r["index"]),
            bins_requested=int(r["bins_requested"]),
            bins_queried=int(r["bins_queried"]),
            silent_bins=int(r["silent_bins"]),
            captured=int(r["captured"]),
            evidence=int(r["evidence"]),
            eliminated=int(r["eliminated"]),
            candidates_after=int(r["candidates_after"]),
            p_estimate=(
                None if r.get("p_estimate") is None else float(r["p_estimate"])
            ),
        )
        for r in data.get("history", [])
    )
    return ThresholdResult(
        decision=bool(data["decision"]),
        queries=int(data["queries"]),
        rounds=int(data["rounds"]),
        threshold=int(data["threshold"]),
        confirmed_positives=int(data.get("confirmed_positives", 0)),
        exact=bool(data.get("exact", True)),
        algorithm=str(data.get("algorithm", "")),
        history=history,
    )


def experiment_result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Plain-dict form of an :class:`ExperimentResult` (JSON-safe)."""
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "parameters": {k: _jsonable(v) for k, v in result.parameters.items()},
        "xlabel": result.xlabel,
        "ylabel": result.ylabel,
        "notes": list(result.notes),
        "series": [
            {
                "label": s.label,
                "xs": [float(v) for v in s.xs],
                "ys": [float(v) for v in s.ys],
                "stderr": [float(v) for v in s.stderr],
            }
            for s in result.series
        ],
    }


def experiment_result_from_dict(data: Mapping[str, Any]) -> ExperimentResult:
    """Inverse of :func:`experiment_result_to_dict`."""
    series = tuple(
        Series(
            label=str(s["label"]),
            xs=tuple(float(v) for v in s["xs"]),
            ys=tuple(float(v) for v in s["ys"]),
            stderr=tuple(float(v) for v in s.get("stderr", ())),
        )
        for s in data["series"]
    )
    return ExperimentResult(
        exp_id=str(data["exp_id"]),
        title=str(data["title"]),
        parameters=dict(data.get("parameters", {})),
        series=series,
        xlabel=str(data.get("xlabel", "x")),
        ylabel=str(data.get("ylabel", "y")),
        notes=tuple(data.get("notes", ())),
    )


def experiment_result_to_json(result: ExperimentResult, *, indent: int = 2) -> str:
    """Serialise an :class:`ExperimentResult` to a JSON string."""
    return json.dumps(experiment_result_to_dict(result), indent=indent)


def experiment_result_from_json(text: str) -> ExperimentResult:
    """Parse an :class:`ExperimentResult` from a JSON string.

    Raises:
        json.JSONDecodeError: On malformed JSON.
        KeyError: On missing required fields.
    """
    return experiment_result_from_dict(json.loads(text))


def _jsonable(value: Any) -> Any:
    """Coerce parameter values to JSON-safe types."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)
