"""Experiment registry: figure id -> runner, plus the cached entry point.

:func:`run_experiment` is the one seam every consumer (CLI, report,
benchmarks, tests) goes through: it resolves the runner, consults the
optional on-disk :class:`~repro.experiments.cache.ResultCache`, and
threads the ``jobs`` backend knob to runners that sweep.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.experiments import resilience
from repro.experiments.cache import ResultCache

from repro.experiments import (
    ext_faults,
    ext_interference,
    ext_latency,
    ext_scaling,
    fig01_one_plus,
    fig02_two_plus,
    fig03_threshold_sweep,
    fig04_testbed,
    fig05_abns,
    fig06_prob_abns,
    fig07_prob_abns_vs_csma,
    fig08_gap,
    fig09_accuracy,
    fig10_repeats,
    fig11_distributions,
)
from repro.experiments.common import ExperimentResult

#: Figure id -> runner.  Fig 8 (the paper's schematic of the separation
#: gap) is computed analytically by its runner rather than swept.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig01": fig01_one_plus.run,
    "fig02": fig02_two_plus.run,
    "fig03": fig03_threshold_sweep.run,
    "fig04": fig04_testbed.run,
    "fig05": fig05_abns.run,
    "fig06": fig06_prob_abns.run,
    "fig07": fig07_prob_abns_vs_csma.run,
    "fig08": fig08_gap.run,
    "fig09": fig09_accuracy.run,
    "fig10": fig10_repeats.run,
    "fig11": fig11_distributions.run,
    # Extensions beyond the paper's figures (future-work directions).
    "ext_latency": ext_latency.run,
    "ext_interference": ext_interference.run,
    "ext_scaling": ext_scaling.run,
    "ext_faults": ext_faults.run,
}


def list_experiments() -> list[str]:
    """Sorted experiment ids."""
    return sorted(EXPERIMENTS)


def get_experiment(exp_id: str) -> Callable[..., ExperimentResult]:
    """Look up a runner by id.

    Raises:
        KeyError: For unknown ids (message lists valid ones).
    """
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; valid: {list_experiments()}"
        ) from None


def run_experiment(
    exp_id: str,
    *,
    cache: Optional[ResultCache] = None,
    jobs: Optional[int] = None,
    **kwargs: Any,
) -> Tuple[ExperimentResult, bool]:
    """Run (or load) one experiment.

    Args:
        exp_id: Figure id, e.g. ``"fig01"``.
        cache: Optional result cache; hits skip the computation entirely.
            Backend-only keys (``jobs``, ``backend``) are excluded from
            cache keys (they cannot change results), so serial, parallel
            and farm runs all share entries.
        jobs: Worker processes for the sweep backend (``None`` = runner
            default, i.e. serial).
        **kwargs: Forwarded to the runner (``runs=``, ``seed=``, ...).

    Returns:
        ``(result, from_cache)``.

    When an active :class:`~repro.experiments.resilience.RunContext`
    reports quarantined shards, the result is **degraded**: an explicit
    ``DEGRADED`` note is attached per quarantined shard and the result
    is *not* cached (a complete rerun must be able to replace it).
    """
    runner = get_experiment(exp_id)
    params = dict(kwargs)
    if jobs is not None:
        params["jobs"] = jobs
    if cache is not None:
        cached = cache.load(exp_id, params)
        if cached is not None:
            return cached, True
    result = runner(**params)
    ctx = resilience.current_context()
    if ctx is not None and ctx.degraded:
        result = replace(
            result,
            notes=result.notes
            + tuple(f"DEGRADED: quarantined shard {d}" for d in ctx.degraded),
        )
        return result, False
    if cache is not None:
        cache.store(exp_id, params, result)
    return result, False
