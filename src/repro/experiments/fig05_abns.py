"""Figure 5: Adaptive Bin Number Selection (ABNS) performance.

2tBins vs ABNS with ``p0 = t`` and ``p0 = 2t`` vs the oracle, 1+ model.
Expected shape (Sec V-C):

* 2tBins tracks the oracle closely for ``x > t/2``;
* the 2tBins-vs-oracle gap opens as ``x`` shrinks below ``t/2``;
* ``ABNS(p0 = t)`` narrows that left-edge gap at the price of some
  overhead around ``t < x < 2t``.

Implicit parameters: ``N = 128``, ``t = 16``.
"""

from __future__ import annotations

from repro.core import Abns, OracleBins, TwoTBins
from repro.experiments.common import ExperimentResult, SweepEngine
from repro.group_testing.model import OnePlusModel
from repro.workloads.scenarios import x_sweep

DEFAULT_N = 128
DEFAULT_T = 16


def run(
    *,
    runs: int = 400,
    seed: int = 2015,
    n: int = DEFAULT_N,
    threshold: int = DEFAULT_T,
) -> ExperimentResult:
    """Regenerate Figure 5's series.

    Args:
        runs: Repetitions per grid point.
        seed: Root seed.
        n: Population size.
        threshold: Threshold ``t``.
    """
    xs = x_sweep(n)
    engine = SweepEngine(n, threshold, runs=runs, seed=seed)

    def one_plus(pop, rng):
        return OnePlusModel(pop, rng, max_queries=80 * n)

    series = (
        engine.query_curve("2tBins", xs, lambda x: TwoTBins(), one_plus),
        engine.query_curve(
            "ABNS(p0=t)", xs, lambda x: Abns(p0_multiple=1.0), one_plus
        ),
        engine.query_curve(
            "ABNS(p0=2t)", xs, lambda x: Abns(p0_multiple=2.0), one_plus
        ),
        engine.query_curve("Oracle", xs, OracleBins, one_plus),
    )
    return ExperimentResult(
        exp_id="fig05",
        title="ABNS vs 2tBins vs oracle",
        parameters={"n": n, "t": threshold, "runs": runs, "seed": seed},
        series=series,
    )
