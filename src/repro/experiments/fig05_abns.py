"""Figure 5: Adaptive Bin Number Selection (ABNS) performance.

2tBins vs ABNS with ``p0 = t`` and ``p0 = 2t`` vs the oracle, 1+ model.
Expected shape (Sec V-C):

* 2tBins tracks the oracle closely for ``x > t/2``;
* the 2tBins-vs-oracle gap opens as ``x`` shrinks below ``t/2``;
* ``ABNS(p0 = t)`` narrows that left-edge gap at the price of some
  overhead around ``t < x < 2t``.

Implicit parameters: ``N = 128``, ``t = 16``.
"""

from __future__ import annotations

from typing import Optional

from repro.api import algorithm_factory
from repro.experiments.common import ExperimentResult, SweepEngine
from repro.group_testing.model import ModelSpec
from repro.workloads.scenarios import x_sweep

DEFAULT_N = 128
DEFAULT_T = 16


def run(
    *,
    runs: int = 400,
    seed: int = 2015,
    n: int = DEFAULT_N,
    threshold: int = DEFAULT_T,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Regenerate Figure 5's series.

    Args:
        runs: Repetitions per grid point.
        seed: Root seed.
        n: Population size.
        threshold: Threshold ``t``.
        jobs: Worker processes for the sweep (bit-identical to serial).
    """
    xs = x_sweep(n)
    engine = SweepEngine(n, threshold, runs=runs, seed=seed, jobs=jobs)
    one_plus = ModelSpec(kind="1+", max_queries=80 * n)

    series = (
        engine.query_curve("2tBins", xs, algorithm_factory("2tbins"), one_plus),
        engine.query_curve(
            "ABNS(p0=t)", xs, algorithm_factory("abns", p0_multiple=1.0), one_plus
        ),
        engine.query_curve(
            "ABNS(p0=2t)", xs, algorithm_factory("abns", p0_multiple=2.0), one_plus
        ),
        engine.query_curve("Oracle", xs, algorithm_factory("oracle"), one_plus),
    )
    return ExperimentResult(
        exp_id="fig05",
        title="ABNS vs 2tBins vs oracle",
        parameters={"n": n, "t": threshold, "runs": runs, "seed": seed},
        series=series,
    )
