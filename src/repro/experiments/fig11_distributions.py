"""Figure 11: the bimodal ``x`` distributions at ``d = 8`` vs ``d = 16``.

Draws large samples from the two symmetric mixtures and reports their
empirical densities over the ``x`` axis.  At ``d = 8`` (with
``sigma = 8``) the modes blur into one hump -- the regime where Fig 9's
accuracy collapses -- while at ``d = 16`` two distinct peaks emerge.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analytic.bimodal import BimodalSpec
from repro.experiments.common import ExperimentResult, Series
from repro.sim.rng import derive_seed
from repro.workloads.bimodal import BimodalWorkload

DEFAULT_N = 128
DEFAULT_SIGMA = 8.0
DEFAULT_DS = (8.0, 16.0)


def run(
    *,
    runs: int = 20_000,
    seed: int = 2021,
    n: int = DEFAULT_N,
    sigma: float = DEFAULT_SIGMA,
    ds: Sequence[float] = DEFAULT_DS,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Regenerate Figure 11's empirical densities.

    Args:
        runs: Sample size per distribution.
        seed: Root seed.
        n: Population size.
        sigma: Common mode standard deviation.
        ds: Half peak distances to contrast (paper: 8 and 16).
        jobs: Accepted for interface uniformity; this runner is not
            sweep-engine based and executes serially.
    """
    xs = tuple(float(v) for v in range(n + 1))
    series = []
    for d in ds:
        spec = BimodalSpec.symmetric(n=n, d=d, sigma=sigma)
        workload = BimodalWorkload(spec)
        rng = np.random.default_rng(derive_seed(seed, f"d{d:g}"))
        counts = workload.sample_counts(runs, rng)
        hist = np.bincount(counts, minlength=n + 1) / max(1, runs)
        series.append(
            Series(label=f"d={d:g}", xs=xs, ys=tuple(float(v) for v in hist))
        )
    return ExperimentResult(
        exp_id="fig11",
        title="bimodal x distributions (mode overlap vs separation)",
        parameters={"n": n, "sigma": sigma, "runs": runs, "seed": seed},
        series=tuple(series),
        xlabel="x (positive nodes)",
        ylabel="empirical probability",
    )
