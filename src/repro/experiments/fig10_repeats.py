"""Figure 10: estimated repeats for a 95 % success rate vs separation.

Pure analytics: for each half peak distance ``d``, size the probe via the
gap-optimal bin count and invert Eq 10 at ``delta = 5 %``.  Expected
shape: the required repeat count falls steeply as the modes separate; it
blows up (and Eq 10 stops applying) as ``d`` approaches ``2 * sigma``
where the 2-sigma boundaries ``t_l`` and ``t_r`` collide -- the paper's
"total separation occurs when d > 16" remark for ``sigma = 8``.

A second, Monte-Carlo series cross-checks the analytic sizing: for each
``d`` it reports the smallest ``r`` whose measured accuracy (over
``runs`` draws) reaches 95 %.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analytic.bimodal import BimodalSpec, analyze_separation
from repro.experiments.common import (
    ExperimentResult,
    Series,
    _get_executor,
    resolve_jobs,
)
from repro.experiments.fig09_accuracy import measure_accuracy
from repro.sim.rng import derive_seed

DEFAULT_N = 128
DEFAULT_SIGMA = 8.0
DEFAULT_DELTA = 0.05
DEFAULT_D_GRID = (18, 20, 24, 32, 40, 48, 56, 64)
_SEARCH_GRID = (1, 2, 3, 5, 7, 9, 12, 15, 19, 25, 31, 41, 51)


def analytic_repeats(
    n: int, d: float, sigma: float, delta: float
) -> Optional[int]:
    """Eq 10 repeat count for one spec, or ``None`` when inapplicable."""
    spec = BimodalSpec.symmetric(n=n, d=d, sigma=sigma)
    analysis = analyze_separation(spec)
    if not analysis.feasible:
        return None
    return analysis.repeats(delta)


def _min_repeats_cell(task: Tuple[BimodalSpec, int, int, float]) -> float:
    """Search the repeat grid for one ``d`` (module-level: picklable).

    Runs the same early-exit search the serial path uses, so the result
    (and the Monte-Carlo evaluations performed) are identical regardless
    of which process computes it.
    """
    spec, runs, seed, delta = task
    for candidate in _SEARCH_GRID:
        acc = measure_accuracy(spec, candidate, runs=runs, seed=seed)
        if acc >= 1.0 - delta:
            return float(candidate)
    return float("nan")


def run(
    *,
    runs: int = 300,
    seed: int = 2020,
    n: int = DEFAULT_N,
    sigma: float = DEFAULT_SIGMA,
    delta: float = DEFAULT_DELTA,
    d_grid: Sequence[int] = DEFAULT_D_GRID,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Regenerate Figure 10's series.

    Args:
        runs: Draws per measured-accuracy evaluation (0 skips the
            Monte-Carlo cross-check and reports only the analytic curve).
        seed: Root seed.
        n: Population size.
        sigma: Common mode standard deviation.
        delta: Target failure probability (paper: 5 %).
        d_grid: Half peak distances (all must exceed ``2*sigma`` so the
            boundaries are separated).
        jobs: Worker processes; the per-``d`` searches are independent,
            so sharding them is bit-identical to serial.
    """
    analytic_ys: List[float] = [
        float(r) if (r := analytic_repeats(n, float(d), sigma, delta)) is not None
        else float("nan")
        for d in d_grid
    ]
    measured_ys: List[float] = []
    if runs > 0:
        tasks = [
            (
                BimodalSpec.symmetric(n=n, d=float(d), sigma=sigma),
                runs,
                derive_seed(seed, f"d{d}"),
                delta,
            )
            for d in d_grid
        ]
        n_jobs = resolve_jobs(jobs)
        if n_jobs > 1 and len(tasks) > 1:
            measured_ys = list(
                _get_executor(n_jobs).map(_min_repeats_cell, tasks)
            )
        else:
            measured_ys = [_min_repeats_cell(task) for task in tasks]

    series = [
        Series(
            label=f"Eq10 (delta={delta:g})",
            xs=tuple(float(d) for d in d_grid),
            ys=tuple(analytic_ys),
        )
    ]
    if runs > 0:
        series.append(
            Series(
                label="measured min r",
                xs=tuple(float(d) for d in d_grid),
                ys=tuple(measured_ys),
            )
        )
    return ExperimentResult(
        exp_id="fig10",
        title=f"repeats needed for {1 - delta:.0%} success vs separation",
        parameters={
            "n": n,
            "sigma": sigma,
            "delta": delta,
            "runs": runs,
            "seed": seed,
        },
        series=tuple(series),
        xlabel="d (half peak distance)",
        ylabel="repeats r",
    )
