"""Figure 10: estimated repeats for a 95 % success rate vs separation.

Pure analytics: for each half peak distance ``d``, size the probe via the
gap-optimal bin count and invert Eq 10 at ``delta = 5 %``.  Expected
shape: the required repeat count falls steeply as the modes separate; it
blows up (and Eq 10 stops applying) as ``d`` approaches ``2 * sigma``
where the 2-sigma boundaries ``t_l`` and ``t_r`` collide -- the paper's
"total separation occurs when d > 16" remark for ``sigma = 8``.

A second, Monte-Carlo series cross-checks the analytic sizing: for each
``d`` it reports the smallest ``r`` whose measured accuracy (over
``runs`` draws) reaches 95 %.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analytic.bimodal import BimodalSpec, analyze_separation
from repro.experiments.common import ExperimentResult, Series
from repro.experiments.fig09_accuracy import measure_accuracy
from repro.sim.rng import derive_seed

DEFAULT_N = 128
DEFAULT_SIGMA = 8.0
DEFAULT_DELTA = 0.05
DEFAULT_D_GRID = (18, 20, 24, 32, 40, 48, 56, 64)
_SEARCH_GRID = (1, 2, 3, 5, 7, 9, 12, 15, 19, 25, 31, 41, 51)


def analytic_repeats(
    n: int, d: float, sigma: float, delta: float
) -> Optional[int]:
    """Eq 10 repeat count for one spec, or ``None`` when inapplicable."""
    spec = BimodalSpec.symmetric(n=n, d=d, sigma=sigma)
    analysis = analyze_separation(spec)
    if not analysis.feasible:
        return None
    return analysis.repeats(delta)


def run(
    *,
    runs: int = 300,
    seed: int = 2020,
    n: int = DEFAULT_N,
    sigma: float = DEFAULT_SIGMA,
    delta: float = DEFAULT_DELTA,
    d_grid: Sequence[int] = DEFAULT_D_GRID,
) -> ExperimentResult:
    """Regenerate Figure 10's series.

    Args:
        runs: Draws per measured-accuracy evaluation (0 skips the
            Monte-Carlo cross-check and reports only the analytic curve).
        seed: Root seed.
        n: Population size.
        sigma: Common mode standard deviation.
        delta: Target failure probability (paper: 5 %).
        d_grid: Half peak distances (all must exceed ``2*sigma`` so the
            boundaries are separated).
    """
    analytic_ys: List[float] = []
    measured_ys: List[float] = []
    for d in d_grid:
        r = analytic_repeats(n, float(d), sigma, delta)
        analytic_ys.append(float(r) if r is not None else float("nan"))
        if runs > 0:
            spec = BimodalSpec.symmetric(n=n, d=float(d), sigma=sigma)
            found = float("nan")
            for candidate in _SEARCH_GRID:
                acc = measure_accuracy(
                    spec,
                    candidate,
                    runs=runs,
                    seed=derive_seed(seed, f"d{d}"),
                )
                if acc >= 1.0 - delta:
                    found = float(candidate)
                    break
            measured_ys.append(found)

    series = [
        Series(
            label=f"Eq10 (delta={delta:g})",
            xs=tuple(float(d) for d in d_grid),
            ys=tuple(analytic_ys),
        )
    ]
    if runs > 0:
        series.append(
            Series(
                label="measured min r",
                xs=tuple(float(d) for d in d_grid),
                ys=tuple(measured_ys),
            )
        )
    return ExperimentResult(
        exp_id="fig10",
        title=f"repeats needed for {1 - delta:.0%} success vs separation",
        parameters={
            "n": n,
            "sigma": sigma,
            "delta": delta,
            "runs": runs,
            "seed": seed,
        },
        series=tuple(series),
        xlabel="d (half peak distance)",
        ylabel="repeats r",
    )
