"""Experiment harness: one module per paper figure.

Every ``figNN_*`` module exposes ``run(runs=..., seed=...) ->
ExperimentResult`` that regenerates the corresponding figure's series,
plus a module docstring recording the parameter choices the paper leaves
implicit.  :mod:`repro.experiments.registry` maps experiment ids to their
runners; :mod:`repro.experiments.cli` is the ``tcast-experiments``
console entry point.
"""

from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache, code_fingerprint
from repro.experiments.common import (
    ExperimentResult,
    Series,
    SweepEngine,
    baseline_curve,
    mean_query_curve,
    resolve_jobs,
    shutdown_executors,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "EXPERIMENTS",
    "ExperimentResult",
    "ResultCache",
    "Series",
    "SweepEngine",
    "baseline_curve",
    "code_fingerprint",
    "get_experiment",
    "list_experiments",
    "mean_query_curve",
    "resolve_jobs",
    "run_experiment",
    "shutdown_executors",
]
