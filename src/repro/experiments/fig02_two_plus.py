"""Figure 2: performance of tcast in the 2+ scenario (1+ vs 2+).

2tBins and Exponential Increase under both collision models.  Expected
shape (Sec IV-C2): the 2+ curves sit at or below their 1+ counterparts
everywhere, with the largest advantage for 2tBins around ``x = t - 1``
(bins then mostly hold exactly one positive, every reply is captured and
excluded, and the second round starts almost resolved).

Implicit parameters as in Figure 1: ``N = 128``, ``t = 16``, capture
probability ``1/k``.
"""

from __future__ import annotations

from typing import Optional

from repro.api import algorithm_factory
from repro.experiments.common import ExperimentResult, SweepEngine
from repro.group_testing.model import ModelSpec
from repro.workloads.scenarios import x_sweep

DEFAULT_N = 128
DEFAULT_T = 16


def run(
    *,
    runs: int = 400,
    seed: int = 2012,
    n: int = DEFAULT_N,
    threshold: int = DEFAULT_T,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Regenerate Figure 2's series.

    Args:
        runs: Repetitions per grid point.
        seed: Root seed.
        n: Population size.
        threshold: Threshold ``t``.
        jobs: Worker processes for the sweep (bit-identical to serial).
    """
    xs = x_sweep(n)
    engine = SweepEngine(n, threshold, runs=runs, seed=seed, jobs=jobs)
    one_plus = ModelSpec(kind="1+", max_queries=50 * n)
    two_plus = ModelSpec(kind="2+", max_queries=50 * n)
    two_t = algorithm_factory("2tbins")
    exp_inc = algorithm_factory("exponential")

    series = (
        engine.query_curve("2tBins 1+", xs, two_t, one_plus),
        engine.query_curve("2tBins 2+", xs, two_t, two_plus),
        engine.query_curve("ExpIncrease 1+", xs, exp_inc, one_plus),
        engine.query_curve("ExpIncrease 2+", xs, exp_inc, two_plus),
    )
    return ExperimentResult(
        exp_id="fig02",
        title="1+ vs 2+ collision models",
        parameters={"n": n, "t": threshold, "runs": runs, "seed": seed},
        series=series,
    )
