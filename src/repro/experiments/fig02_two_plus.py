"""Figure 2: performance of tcast in the 2+ scenario (1+ vs 2+).

2tBins and Exponential Increase under both collision models.  Expected
shape (Sec IV-C2): the 2+ curves sit at or below their 1+ counterparts
everywhere, with the largest advantage for 2tBins around ``x = t - 1``
(bins then mostly hold exactly one positive, every reply is captured and
excluded, and the second round starts almost resolved).

Implicit parameters as in Figure 1: ``N = 128``, ``t = 16``, capture
probability ``1/k``.
"""

from __future__ import annotations

from repro.core import ExponentialIncrease, TwoTBins
from repro.experiments.common import ExperimentResult, SweepEngine
from repro.group_testing.model import OnePlusModel, TwoPlusModel
from repro.workloads.scenarios import x_sweep

DEFAULT_N = 128
DEFAULT_T = 16


def run(
    *,
    runs: int = 400,
    seed: int = 2012,
    n: int = DEFAULT_N,
    threshold: int = DEFAULT_T,
) -> ExperimentResult:
    """Regenerate Figure 2's series.

    Args:
        runs: Repetitions per grid point.
        seed: Root seed.
        n: Population size.
        threshold: Threshold ``t``.
    """
    xs = x_sweep(n)
    engine = SweepEngine(n, threshold, runs=runs, seed=seed)

    def one_plus(pop, rng):
        return OnePlusModel(pop, rng, max_queries=50 * n)

    def two_plus(pop, rng):
        return TwoPlusModel(pop, rng, max_queries=50 * n)

    series = (
        engine.query_curve("2tBins 1+", xs, lambda x: TwoTBins(), one_plus),
        engine.query_curve("2tBins 2+", xs, lambda x: TwoTBins(), two_plus),
        engine.query_curve(
            "ExpIncrease 1+", xs, lambda x: ExponentialIncrease(), one_plus
        ),
        engine.query_curve(
            "ExpIncrease 2+", xs, lambda x: ExponentialIncrease(), two_plus
        ),
    )
    return ExperimentResult(
        exp_id="fig02",
        title="1+ vs 2+ collision models",
        parameters={"n": n, "t": threshold, "runs": runs, "seed": seed},
        series=series,
    )
