"""Crash-safe file primitives shared by the cache and the run journal.

Everything durable the harness writes (cache entries, journal files,
metrics snapshots) goes through :func:`atomic_write_bytes` /
:func:`atomic_write_text`: the payload lands in a uniquely named
temporary file in the *same directory* (same filesystem, so the final
``os.replace`` is atomic), is flushed and fsync'd, and only then renamed
over the destination.  A crash -- ``kill -9``, OOM, power loss -- at any
point leaves either the old file or the new file, never a truncated
hybrid, and never clobbers the destination with a partial write.

:func:`checksum_line` / :func:`parse_checksum_line` implement the
per-record CRC32 framing the shard journal uses for its append-only
records, where whole-file replacement would be wasteful (see
:mod:`repro.experiments.resilience`).

:func:`quarantine_file` moves a corrupt artifact aside under a unique
name so repeated corruption of the same entry preserves every bad copy
for post-mortems instead of clobbering the previous one.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import Optional, Union

PathLike = Union[str, "os.PathLike[str]"]


def atomic_write_bytes(
    path: PathLike, data: bytes, *, fsync: bool = True
) -> Path:
    """Atomically replace ``path`` with ``data``; returns the final path.

    The temporary file name embeds the pid so concurrent writers (e.g.
    two sweep processes storing the same cache key) never stomp on each
    other's half-written temp file; last ``os.replace`` wins with a
    complete payload either way.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.parent / f".{target.name}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, target)
    finally:
        # A failure between open and replace leaves the temp file; never
        # leave droppings behind to be mistaken for entries.
        if tmp.exists():
            tmp.unlink(missing_ok=True)
    return target


def atomic_write_text(
    path: PathLike, text: str, *, fsync: bool = True
) -> Path:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def quarantine_file(path: PathLike, quarantine_dir: PathLike) -> Optional[Path]:
    """Move a corrupt artifact into ``quarantine_dir`` under a unique name.

    The destination is ``<name>``, or ``<name>.1``, ``<name>.2``, ... if
    earlier quarantined copies already occupy the plain name -- so when
    an entry is recomputed and the replacement is *also* corrupt (a bad
    disk, a torn mount), every generation is preserved for post-mortem
    instead of each new copy clobbering the last.  Uses ``os.replace``
    within the same filesystem, so the move is atomic and the source
    vanishes in the same step.

    Returns:
        The destination path, or ``None`` if the source disappeared
        first (e.g. a concurrent process quarantined it already).
    """
    src = Path(path)
    qdir = Path(quarantine_dir)
    qdir.mkdir(parents=True, exist_ok=True)
    suffix = 0
    while True:
        dest = qdir / (src.name if suffix == 0 else f"{src.name}.{suffix}")
        if not dest.exists():
            try:
                os.replace(src, dest)
            except FileNotFoundError:
                return None
            return dest
        suffix += 1


def checksum_line(payload: str) -> str:
    """Frame one journal record: ``<crc32 hex8> <payload>\\n``.

    The CRC covers the payload bytes only; a torn tail (partial last
    line after a crash mid-append) fails :func:`parse_checksum_line`
    and is discarded on load instead of poisoning the resume.
    """
    data = payload.encode("utf-8")
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x} {payload}\n"


def parse_checksum_line(line: str) -> Optional[str]:
    """Recover the payload of one framed line, or ``None`` if corrupt.

    Accepts lines with or without the trailing newline.  Any framing
    violation -- missing separator, bad hex, CRC mismatch, truncation --
    returns ``None``; callers treat that record as never written.
    """
    line = line.rstrip("\n")
    if len(line) < 10 or line[8] != " ":
        return None
    crc_hex, payload = line[:8], line[9:]
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    return payload
