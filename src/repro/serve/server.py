"""The asyncio front end: newline-JSON over TCP, drained shutdown.

Protocol -- one JSON object per line, in both directions.  Requests
carry an ``op``:

* ``{"op": "query", ...}`` -- a threshold query
  (:meth:`repro.serve.request.QueryRequest.from_wire` fields).  The
  response echoes ``id`` and carries ``decisions``/``queries``/
  ``exact``/``batched`` on success, or ``status`` 400/429 plus an
  ``error`` object on rejection.  Responses may arrive out of order
  relative to pipelined requests; correlate by ``id``.
* ``{"op": "metrics"}`` -- the live merged :mod:`repro.obs`
  :class:`~repro.obs.MetricsSnapshot` as JSON.
* ``{"op": "ping"}`` -- liveness probe.
* ``{"op": "shutdown"}`` -- ask the service to drain and exit (the
  programmatic twin of SIGTERM).

Shutdown -- on SIGTERM/SIGINT (or the ``shutdown`` op) the service
**drains**: admission sheds everything new with 429 ``draining``
rejections, every already-admitted query runs to completion and its
response is flushed, then connections close and the process exits 0.
In-flight work is never dropped.

:func:`serve_in_thread` runs the whole service on a background thread's
event loop -- the harness tests and the benchmark drive a real TCP
service in-process with it.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from repro.obs import enable_metrics, snapshot_metrics
from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.request import QueryRequest, RequestError
from repro.serve.scheduler import BatchScheduler

#: Cap on one request line; longer lines fail the connection (asyncio's
#: readline raises) rather than buffering without bound.
MAX_LINE_BYTES = 1 << 20


@dataclass(frozen=True)
class ServeConfig:
    """Everything the service needs, in one picklable bundle.

    Attributes:
        host: Bind address.
        port: Bind port; ``0`` picks a free one (read it back from
            :attr:`ThresholdQueryService.port`).
        max_pending: Global admitted-but-unfinished cap.
        tenant_rate: Per-tenant sustained requests/second (0 = off).
        tenant_burst: Per-tenant burst capacity.
        max_batch_runs: Cap on total trials per coalesced batch.
        workers: Scheduler executor lanes.
        vectorize: Allow the vectorized kernel.
        metrics: Enable the :mod:`repro.obs` registry on startup so the
            ``metrics`` endpoint reports live counters.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 1024
    tenant_rate: float = 0.0
    tenant_burst: float = 64.0
    max_batch_runs: int = 4096
    workers: int = 2
    vectorize: bool = True
    metrics: bool = True


def _error_response(
    rid: Optional[str], status: int, code: str, message: str
) -> Dict[str, Any]:
    """A failed-request payload (400-style parse errors, 429-style sheds)."""
    return {
        "id": rid,
        "ok": False,
        "status": status,
        "error": {"code": code, "message": message},
    }


class ThresholdQueryService:
    """The long-lived service: admission, scheduling, TCP front end.

    Construct, then either :meth:`run` (binds, installs signal
    handlers, blocks until drained shutdown -- the CLI path) or
    :meth:`start` / :meth:`shutdown` for embedded use.

    Args:
        config: The service configuration.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.admission = AdmissionController(
            AdmissionPolicy(
                max_pending=config.max_pending,
                tenant_rate=config.tenant_rate,
                tenant_burst=config.tenant_burst,
            )
        )
        self.scheduler = BatchScheduler(
            max_batch_runs=config.max_batch_runs,
            workers=config.workers,
            vectorize=config.vectorize,
        )
        self._server: Optional[asyncio.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._inflight: Set["asyncio.Task[None]"] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self.port: int = config.port

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the scheduler workers."""
        if self.config.metrics:
            enable_metrics()
        self._stop_event = asyncio.Event()
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = int(sock.getsockname()[1])
            break

    def request_shutdown(self) -> None:
        """Flip the stop flag (signal handlers, the ``shutdown`` op)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def wait_stopped(self) -> None:
        """Block until a shutdown has been requested."""
        assert self._stop_event is not None, "service not started"
        await self._stop_event.wait()

    async def shutdown(self) -> None:
        """Drain and stop: finish in-flight queries, flush, close.

        The drain order is the correctness argument: shed new work
        first, let every admitted query finish and write its response,
        only then tear down connections and the listener.
        """
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)
        await self.scheduler.drain()
        for writer in tuple(self._connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def run(self) -> int:
        """CLI path: serve until SIGTERM/SIGINT, drain, exit 0."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_shutdown)
        print(f"tcast-serve: listening on {self.config.host}:{self.port}", flush=True)
        try:
            await self.wait_stopped()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
            await self.shutdown()
        return 0

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: read lines, dispatch, write responses."""
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        tasks: Set["asyncio.Task[None]"] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._dispatch(stripped, writer, write_lock)
                )
                tasks.add(task)
                self._inflight.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._inflight.discard)
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> None:
        """Serialise one response line under the connection's write lock."""
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        async with lock:
            if writer.is_closing():
                return
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self,
        raw: bytes,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """Parse and answer one request line."""
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as exc:
            await self._write(
                writer,
                lock,
                _error_response(None, 400, "bad_json", f"invalid JSON: {exc}"),
            )
            return
        if not isinstance(obj, dict):
            await self._write(
                writer,
                lock,
                _error_response(None, 400, "bad_request", "expected a JSON object"),
            )
            return
        op = obj.get("op", "query")
        rid = obj.get("id") if isinstance(obj.get("id"), str) else None
        if op == "ping":
            await self._write(writer, lock, {"id": rid, "ok": True, "op": "ping"})
        elif op == "metrics":
            await self._write(
                writer,
                lock,
                {
                    "id": rid,
                    "ok": True,
                    "op": "metrics",
                    "metrics": snapshot_metrics().to_dict(),
                },
            )
        elif op == "shutdown":
            await self._write(
                writer, lock, {"id": rid, "ok": True, "op": "shutdown"}
            )
            self.request_shutdown()
        elif op == "query":
            await self._answer_query(obj, writer, lock)
        else:
            await self._write(
                writer,
                lock,
                _error_response(rid, 400, "bad_op", f"unknown op {op!r}"),
            )

    async def _answer_query(
        self,
        obj: Dict[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """Admit, schedule and answer one query request."""
        rid = obj.get("id") if isinstance(obj.get("id"), str) else None
        try:
            request = QueryRequest.from_wire(obj)
        except RequestError as exc:
            await self._write(
                writer, lock, _error_response(rid, 400, exc.code, str(exc))
            )
            return
        reason = self.admission.admit(request)
        if reason is not None:
            await self._write(
                writer,
                lock,
                _error_response(
                    request.id, 429, reason, f"request shed: {reason}"
                ),
            )
            return
        try:
            outcome = await self.scheduler.submit(request)
        except Exception as exc:
            await self._write(
                writer,
                lock,
                _error_response(request.id, 500, "internal", repr(exc)),
            )
            return
        finally:
            self.admission.release()
        await self._write(
            writer,
            lock,
            {
                "id": request.id,
                "ok": True,
                "status": 200,
                "decisions": list(outcome.decisions),
                "queries": list(outcome.queries),
                "exact": outcome.exact,
                "batched": outcome.batched,
            },
        )


class ServiceHandle:
    """A service running on a background thread's event loop.

    Built by :func:`serve_in_thread`; exposes the bound port and a
    blocking :meth:`stop` that performs the full graceful drain.
    """

    def __init__(
        self,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        service: ThresholdQueryService,
    ) -> None:
        self._thread = thread
        self._loop = loop
        self.service = service

    @property
    def port(self) -> int:
        """The service's bound TCP port."""
        return self.service.port

    def stop(self, timeout: float = 30.0) -> None:
        """Request shutdown and join the service thread (drains first)."""
        self._loop.call_soon_threadsafe(self.service.request_shutdown)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service thread did not stop in time")

    def __enter__(self) -> "ServiceHandle":
        """Context-manager entry: the handle itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: graceful stop."""
        self.stop()


def serve_in_thread(config: ServeConfig) -> ServiceHandle:
    """Start a service on a fresh background event loop; return its handle.

    Blocks until the listener is bound (so :attr:`ServiceHandle.port` is
    valid immediately), which makes it the natural harness for tests and
    the benchmark: real TCP, real scheduler, no subprocess.
    """
    service = ThresholdQueryService(config)
    started = threading.Event()
    boot_error: Dict[str, BaseException] = {}
    loop_box: Dict[str, asyncio.AbstractEventLoop] = {}

    def _thread_main() -> None:
        async def _amain() -> None:
            loop_box["loop"] = asyncio.get_running_loop()
            try:
                await service.start()
            except BaseException as exc:  # surface bind errors to the caller
                boot_error["error"] = exc
                started.set()
                raise
            started.set()
            await service.wait_stopped()
            await service.shutdown()

        try:
            asyncio.run(_amain())
        except BaseException:
            if not started.is_set():
                started.set()

    thread = threading.Thread(
        target=_thread_main, name="tcast-serve", daemon=True
    )
    thread.start()
    started.wait(timeout=30.0)
    if "error" in boot_error:
        thread.join(timeout=5.0)
        raise RuntimeError(
            f"service failed to start: {boot_error['error']!r}"
        ) from boot_error["error"]
    if "loop" not in loop_box:
        raise RuntimeError("service thread did not start in time")
    return ServiceHandle(thread, loop_box["loop"], service)
