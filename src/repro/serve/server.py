"""The asyncio front end: newline-JSON over TCP, drained shutdown.

Protocol -- one JSON object per line, in both directions.  Requests
carry an ``op``:

* ``{"op": "query", ...}`` -- a threshold query
  (:meth:`repro.serve.request.QueryRequest.from_wire` fields).  The
  response echoes ``id`` and carries ``decisions``/``queries``/
  ``exact``/``batched`` on success, or ``status`` 400/429/500/504 plus
  an ``error`` object on rejection.  Responses may arrive out of order
  relative to pipelined requests; correlate by ``id``.
* ``{"op": "metrics"}`` -- the live merged :mod:`repro.obs`
  :class:`~repro.obs.MetricsSnapshot` as JSON.
* ``{"op": "ping"}`` -- liveness probe.
* ``{"op": "shutdown"}`` -- ask the service to drain and exit (the
  programmatic twin of SIGTERM).

Connection hardening (DESIGN.md section 17) -- the read loop survives
hostile or broken clients:

* an **idle timeout** closes connections that stop sending
  (``serve.conn_idle_closed``), so a slow-loris client cannot pin a
  connection slot forever;
* a **max-connections cap** refuses new connections with an explicit
  503-style frame (``serve.rejected.conn_limit``) instead of letting
  accept backlogs grow unboundedly;
* an **oversized line** is discarded up to its terminating newline and
  answered with a 400 frame (``serve.rejected.oversized``) -- the
  connection lives on; a partial final frame at disconnect is simply
  dropped (there is no one left to answer);
* a **per-connection in-flight cap** applies backpressure: once a
  client has ``max_inflight_per_conn`` queries outstanding the read
  loop stops consuming its socket until one finishes
  (``serve.conn_throttled``), so a single pipelining client cannot
  monopolise the scheduler queue.

Shutdown -- on SIGTERM/SIGINT (or the ``shutdown`` op) the service
**drains**: admission sheds everything new with 429 ``draining``
rejections, every already-admitted query runs to completion and its
response is flushed, then connections close and the process exits 0.
In-flight work is never dropped -- though a request that exceeds its
``deadline_ms`` mid-drain still gets its 504 frame rather than an
answer.

:func:`serve_in_thread` runs the whole service on a background thread's
event loop -- the harness tests and the benchmark drive a real TCP
service in-process with it.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from repro.obs import enable_metrics, get_registry, snapshot_metrics
from repro.serve.admission import (
    REASON_DEADLINE,
    AdmissionController,
    AdmissionPolicy,
)
from repro.serve.errors import ServeError
from repro.serve.request import QueryRequest, RequestError
from repro.serve.scheduler import BatchScheduler

_OBS = get_registry()
_REJ_CONN_LIMIT = _OBS.counter("serve.rejected.conn_limit")
_REJ_OVERSIZED = _OBS.counter("serve.rejected.oversized")
_CONN_IDLE_CLOSED = _OBS.counter("serve.conn_idle_closed")
_CONN_THROTTLED = _OBS.counter("serve.conn_throttled")

#: Default cap on one request line; longer lines get a 400 frame and are
#: discarded up to their newline (the connection survives).
MAX_LINE_BYTES = 1 << 20

#: Statuses per admission rejection reason: deadline rejections are
#: 504-style (the request died of old age, not of load), all other
#: sheds are 429-style.
_REASON_STATUS = {REASON_DEADLINE: 504}

#: Sentinel returned by the frame reader for an oversized-but-recovered
#: line (distinct from EOF, which is ``None``).
_OVERSIZED = object()


class _FrameReader:
    """Newline framing over a stream, hardened against hostile input.

    Owns its buffer (instead of leaning on ``StreamReader.readuntil``)
    so an oversized line can be discarded up to its newline and the
    connection kept alive, and so pipelined frames arriving in one TCP
    segment are split correctly.

    Frames of up to ``max_line_bytes`` *content* bytes (the newline not
    counted) are accepted -- a line at exactly the cap is valid, one
    byte more is oversized.

    Args:
        reader: The connection's stream reader.
        max_line_bytes: Frame content cap.
        idle_timeout: Seconds with no bytes at all between frames
            before :class:`TimeoutError`; ``0`` disables.
        read_deadline: Seconds a started frame may take to complete
            before :class:`TimeoutError`; ``0`` disables.
    """

    _CHUNK = 1 << 16

    def __init__(
        self,
        reader: asyncio.StreamReader,
        *,
        max_line_bytes: int,
        idle_timeout: float,
        read_deadline: float,
    ) -> None:
        self._reader = reader
        self._max = max_line_bytes
        self._idle = idle_timeout
        self._deadline = read_deadline
        self._buf = bytearray()
        self._discarding = False

    async def next_frame(self) -> object:
        """The next complete frame.

        Returns:
            Frame bytes, ``None`` at EOF (a partial final frame at
            disconnect is dropped -- there is nobody left to answer),
            or :data:`_OVERSIZED` after a too-long line was discarded
            up to its newline (the caller answers with a 400 frame and
            the connection lives on).

        Raises:
            TimeoutError: On idle timeout or a blown frame deadline.
        """
        loop = asyncio.get_running_loop()
        frame_start = loop.time() if self._buf else None
        while True:
            newline = self._buf.find(b"\n")
            if newline != -1:
                if self._discarding:
                    del self._buf[: newline + 1]
                    self._discarding = False
                    return _OVERSIZED
                if newline > self._max:
                    # The whole oversized line arrived buffered at once.
                    del self._buf[: newline + 1]
                    return _OVERSIZED
                frame = bytes(self._buf[:newline])
                del self._buf[: newline + 1]
                return frame
            if self._discarding:
                self._buf.clear()
            elif len(self._buf) > self._max:
                self._discarding = True
                self._buf.clear()
            timeout: Optional[float] = self._idle or None
            if frame_start is not None and self._deadline > 0:
                remaining = self._deadline - (loop.time() - frame_start)
                if remaining <= 0:
                    raise TimeoutError("frame read deadline exceeded")
                timeout = min(timeout, remaining) if timeout else remaining
            chunk = await asyncio.wait_for(
                self._reader.read(self._CHUNK), timeout=timeout
            )
            if not chunk:
                return None
            if frame_start is None:
                frame_start = loop.time()
            self._buf.extend(chunk)


@dataclass(frozen=True)
class ServeConfig:
    """Everything the service needs, in one picklable bundle.

    Attributes:
        host: Bind address.
        port: Bind port; ``0`` picks a free one (read it back from
            :attr:`ThresholdQueryService.port`).
        max_pending: Global admitted-but-unfinished cap.
        tenant_rate: Per-tenant sustained requests/second (0 = off).
        tenant_burst: Per-tenant burst capacity.
        max_batch_runs: Cap on total trials per coalesced batch.
        workers: Scheduler executor lanes.
        vectorize: Allow the vectorized kernel.
        metrics: Enable the :mod:`repro.obs` registry on startup so the
            ``metrics`` endpoint reports live counters.
        max_connections: Cap on concurrently served connections;
            connections beyond it are refused with a 503-style frame.
        max_line_bytes: Cap on one request line (see module docstring).
        idle_timeout: Seconds a connection may sit between request
            lines before the service closes it; ``0`` disables.
        read_deadline: Seconds a *started* frame may take to reach its
            newline before the connection is closed -- the slow-loris
            bound (trickling bytes resets an idle timer but not this
            one); ``0`` disables.
        max_inflight_per_conn: Outstanding queries one connection may
            hold before its read loop is backpressured.
        codel_target_ms: Scheduler watchdog queue-wait p50 target;
            ``0`` disables CoDel shedding (see
            :class:`repro.serve.scheduler.BatchScheduler`).
        codel_interval_ms: Scheduler watchdog sampling period.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 1024
    tenant_rate: float = 0.0
    tenant_burst: float = 64.0
    max_batch_runs: int = 4096
    workers: int = 2
    vectorize: bool = True
    metrics: bool = True
    max_connections: int = 256
    max_line_bytes: int = MAX_LINE_BYTES
    idle_timeout: float = 300.0
    read_deadline: float = 30.0
    max_inflight_per_conn: int = 128
    codel_target_ms: float = 0.0
    codel_interval_ms: float = 100.0


def _error_response(
    rid: Optional[str], status: int, code: str, message: str
) -> Dict[str, Any]:
    """A failed-request payload (400-style parse errors, 429-style sheds)."""
    return {
        "id": rid,
        "ok": False,
        "status": status,
        "error": {"code": code, "message": message},
    }


class ThresholdQueryService:
    """The long-lived service: admission, scheduling, TCP front end.

    Construct, then either :meth:`run` (binds, installs signal
    handlers, blocks until drained shutdown -- the CLI path) or
    :meth:`start` / :meth:`shutdown` for embedded use.

    Args:
        config: The service configuration.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.admission = AdmissionController(
            AdmissionPolicy(
                max_pending=config.max_pending,
                tenant_rate=config.tenant_rate,
                tenant_burst=config.tenant_burst,
            )
        )
        self.scheduler = BatchScheduler(
            max_batch_runs=config.max_batch_runs,
            workers=config.workers,
            vectorize=config.vectorize,
            codel_target_ms=config.codel_target_ms,
            codel_interval_ms=config.codel_interval_ms,
        )
        self._server: Optional[asyncio.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._inflight: Set["asyncio.Task[None]"] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self.port: int = config.port

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the scheduler workers."""
        if self.config.metrics:
            enable_metrics()
        self._stop_event = asyncio.Event()
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes,
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = int(sock.getsockname()[1])
            break

    def request_shutdown(self) -> None:
        """Flip the stop flag (signal handlers, the ``shutdown`` op)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def wait_stopped(self) -> None:
        """Block until a shutdown has been requested."""
        assert self._stop_event is not None, "service not started"
        await self._stop_event.wait()

    async def shutdown(self) -> None:
        """Drain and stop: finish in-flight queries, flush, close.

        The drain order is the correctness argument: shed new work
        first, let every admitted query finish and write its response,
        only then tear down connections and the listener.
        """
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)
        await self.scheduler.drain()
        for writer in tuple(self._connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def run(self) -> int:
        """CLI path: serve until SIGTERM/SIGINT, drain, exit 0."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_shutdown)
        print(f"tcast-serve: listening on {self.config.host}:{self.port}", flush=True)
        try:
            await self.wait_stopped()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
            await self.shutdown()
        return 0

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: read lines, dispatch, write responses."""
        write_lock = asyncio.Lock()
        if len(self._connections) >= self.config.max_connections:
            _REJ_CONN_LIMIT.inc()
            await self._write(
                writer,
                write_lock,
                _error_response(
                    None,
                    503,
                    "conn_limit",
                    f"connection refused: {self.config.max_connections} "
                    "connections already open",
                ),
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return
        self._connections.add(writer)
        frames = _FrameReader(
            reader,
            max_line_bytes=self.config.max_line_bytes,
            idle_timeout=self.config.idle_timeout,
            read_deadline=self.config.read_deadline,
        )
        tasks: Set["asyncio.Task[None]"] = set()
        try:
            while True:
                if len(tasks) >= self.config.max_inflight_per_conn:
                    # Backpressure: stop reading this socket until one
                    # outstanding query finishes.  The client's own send
                    # buffer fills; the scheduler queue does not.
                    _CONN_THROTTLED.inc()
                    await asyncio.wait(
                        tasks, return_when=asyncio.FIRST_COMPLETED
                    )
                    continue
                try:
                    frame = await frames.next_frame()
                except (asyncio.TimeoutError, TimeoutError):
                    _CONN_IDLE_CLOSED.inc()
                    break
                except (ConnectionError, OSError, ValueError):
                    break
                if frame is None:
                    break
                if frame is _OVERSIZED:
                    _REJ_OVERSIZED.inc()
                    await self._write(
                        writer,
                        write_lock,
                        _error_response(
                            None,
                            400,
                            "line_too_long",
                            f"request line exceeded "
                            f"{self.config.max_line_bytes} bytes",
                        ),
                    )
                    continue
                assert isinstance(frame, bytes)
                stripped = frame.strip()
                if not stripped:
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._dispatch(stripped, writer, write_lock)
                )
                tasks.add(task)
                self._inflight.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._inflight.discard)
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> None:
        """Serialise one response line under the connection's write lock."""
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        async with lock:
            if writer.is_closing():
                return
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self,
        raw: bytes,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """Parse and answer one request line."""
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as exc:
            await self._write(
                writer,
                lock,
                _error_response(None, 400, "bad_json", f"invalid JSON: {exc}"),
            )
            return
        if not isinstance(obj, dict):
            await self._write(
                writer,
                lock,
                _error_response(None, 400, "bad_request", "expected a JSON object"),
            )
            return
        op = obj.get("op", "query")
        rid = obj.get("id") if isinstance(obj.get("id"), str) else None
        if op == "ping":
            await self._write(writer, lock, {"id": rid, "ok": True, "op": "ping"})
        elif op == "metrics":
            await self._write(
                writer,
                lock,
                {
                    "id": rid,
                    "ok": True,
                    "op": "metrics",
                    "metrics": snapshot_metrics().to_dict(),
                },
            )
        elif op == "shutdown":
            await self._write(
                writer, lock, {"id": rid, "ok": True, "op": "shutdown"}
            )
            self.request_shutdown()
        elif op == "query":
            await self._answer_query(obj, writer, lock)
        else:
            await self._write(
                writer,
                lock,
                _error_response(rid, 400, "bad_op", f"unknown op {op!r}"),
            )

    async def _answer_query(
        self,
        obj: Dict[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """Admit, schedule and answer one query request."""
        rid = obj.get("id") if isinstance(obj.get("id"), str) else None
        try:
            request = QueryRequest.from_wire(obj)
        except RequestError as exc:
            await self._write(
                writer, lock, _error_response(rid, 400, exc.code, str(exc))
            )
            return
        reason = self.admission.admit(request)
        if reason is not None:
            await self._write(
                writer,
                lock,
                _error_response(
                    request.id,
                    _REASON_STATUS.get(reason, 429),
                    reason,
                    f"request shed: {reason}",
                ),
            )
            return
        try:
            outcome = await self.scheduler.submit(request)
        except ServeError as exc:
            await self._write(
                writer,
                lock,
                _error_response(request.id, exc.status, exc.code, str(exc)),
            )
            return
        except Exception as exc:
            await self._write(
                writer,
                lock,
                _error_response(request.id, 500, "internal", repr(exc)),
            )
            return
        finally:
            self.admission.release()
        await self._write(
            writer,
            lock,
            {
                "id": request.id,
                "ok": True,
                "status": 200,
                "decisions": list(outcome.decisions),
                "queries": list(outcome.queries),
                "exact": outcome.exact,
                "batched": outcome.batched,
            },
        )


class ServiceHandle:
    """A service running on a background thread's event loop.

    Built by :func:`serve_in_thread`; exposes the bound port and a
    blocking :meth:`stop` that performs the full graceful drain.
    """

    def __init__(
        self,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        service: ThresholdQueryService,
    ) -> None:
        self._thread = thread
        self._loop = loop
        self.service = service

    @property
    def port(self) -> int:
        """The service's bound TCP port."""
        return self.service.port

    def stop(self, timeout: float = 30.0) -> None:
        """Request shutdown and join the service thread (drains first)."""
        self._loop.call_soon_threadsafe(self.service.request_shutdown)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service thread did not stop in time")

    def __enter__(self) -> "ServiceHandle":
        """Context-manager entry: the handle itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: graceful stop."""
        self.stop()


def serve_in_thread(config: ServeConfig) -> ServiceHandle:
    """Start a service on a fresh background event loop; return its handle.

    Blocks until the listener is bound (so :attr:`ServiceHandle.port` is
    valid immediately), which makes it the natural harness for tests and
    the benchmark: real TCP, real scheduler, no subprocess.
    """
    service = ThresholdQueryService(config)
    started = threading.Event()
    boot_error: Dict[str, BaseException] = {}
    loop_box: Dict[str, asyncio.AbstractEventLoop] = {}

    def _thread_main() -> None:
        async def _amain() -> None:
            loop_box["loop"] = asyncio.get_running_loop()
            try:
                await service.start()
            except BaseException as exc:  # surface bind errors to the caller
                boot_error["error"] = exc
                started.set()
                raise
            started.set()
            await service.wait_stopped()
            await service.shutdown()

        try:
            asyncio.run(_amain())
        except BaseException:
            if not started.is_set():
                started.set()

    thread = threading.Thread(
        target=_thread_main, name="tcast-serve", daemon=True
    )
    thread.start()
    started.wait(timeout=30.0)
    if "error" in boot_error:
        thread.join(timeout=5.0)
        raise RuntimeError(
            f"service failed to start: {boot_error['error']!r}"
        ) from boot_error["error"]
    if "loop" not in loop_box:
        raise RuntimeError("service thread did not start in time")
    return ServiceHandle(thread, loop_box["loop"], service)
