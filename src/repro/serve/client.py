"""Clients for the threshold-query service: plain and self-healing.

:class:`ServeClient` speaks the newline-JSON protocol of
:mod:`repro.serve.server` over a plain blocking socket.
:meth:`ServeClient.request` is the simple round-trip;
:meth:`ServeClient.send` / :meth:`ServeClient.recv` split the halves so
callers can pipeline many requests down one connection (the benchmark's
throughput driver does exactly that, correlating responses by ``id``).
Every socket operation is bounded by a timeout -- a dead or wedged
server raises instead of blocking forever -- and :meth:`ServeClient.query`
threads a per-request ``deadline_ms`` through both the socket timeout
and the wire (so the server sheds the request too if it cannot answer
in time).

:class:`RetryingServeClient` wraps that transport in the repo's
reliability vocabulary (cf. :mod:`repro.core.reliable`: a declarative
policy object owns the numbers, the wrapper owns the loop):

* **jittered exponential backoff** on connect/timeout/connection
  errors, seeded and injectable so tests are deterministic;
* a **circuit breaker** -- after ``breaker_threshold`` consecutive
  transport failures the circuit opens and calls fail fast with
  :class:`CircuitOpenError` for ``breaker_cooldown`` seconds, then a
  single half-open probe decides between closing it and re-opening;
* **per-request deadlines** -- a ``deadline_ms`` budget caps the whole
  retry loop, not just one attempt.

Application-level rejections (400/429/504 frames) are returned to the
caller, never retried: they are deterministic answers, and retrying a
rate-limit shed would only feed the stampede.  Only transport failures
-- the errors the paper's lossy-channel primitives exist for -- are
retried.

Deliberately thread-dumb: one client per thread.  Clocks and sleeps are
injectable; the defaults reference the host's wall clock, which is the
CLI-boundary place for it.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np


class CircuitOpenError(ConnectionError):
    """The client's circuit breaker is open: failing fast, not calling.

    Attributes:
        retry_after: Seconds until the next half-open probe is allowed.
    """

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RetriesExhausted(ConnectionError):
    """Every attempt the policy allowed failed at the transport level.

    Attributes:
        attempts: Transport attempts made before giving up.
    """

    def __init__(self, message: str, *, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


class ServeClient:
    """One blocking connection to a running service.

    Args:
        host: Service host.
        port: Service port.
        timeout: Socket timeout in seconds applied to connect and every
            read/write.  Defaults to 30 s -- a dead server must raise,
            never block a caller forever.  ``None`` disables the bound
            (only sensible inside tests that own both ends).

    Usage::

        with ServeClient("127.0.0.1", port) as client:
            reply = client.request({"op": "ping"})
    """

    def __init__(
        self, host: str, port: int, *, timeout: Optional[float] = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._timeout = timeout

    def send(self, payload: Mapping[str, Any]) -> None:
        """Write one request line (does not wait for the response)."""
        data = (json.dumps(dict(payload)) + "\n").encode("utf-8")
        self._sock.sendall(data)

    def recv(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Read the next response line (whatever request it answers).

        Args:
            timeout: Optional per-call override of the connection's
                socket timeout; the connection default is restored
                afterwards.  After a timeout fires the stream position
                is indeterminate -- reconnect rather than reuse.

        Raises:
            ConnectionError: If the server closed the connection.
            TimeoutError: If no line arrived within the timeout.
            ValueError: If the response line is not a JSON object.
        """
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            line = self._reader.readline()
        finally:
            if timeout is not None:
                self._sock.settimeout(self._timeout)
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            # A partial final line means the connection died mid-response
            # (e.g. a mid-frame cut): surface it as the transport failure
            # it is, never as a JSON parse error.
            raise ConnectionError("connection closed mid-response")
        obj = json.loads(line)
        if not isinstance(obj, dict):
            raise ValueError(f"expected a JSON object response, got {obj!r}")
        return obj

    def request(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """One request/response round trip."""
        self.send(payload)
        return self.recv()

    def query(
        self,
        payload: Mapping[str, Any],
        *,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One query round trip with an optional end-to-end deadline.

        The ``deadline_ms`` budget travels on the wire (the server
        rejects or expires work it cannot finish in time, DESIGN.md
        section 17) *and* bounds the local wait for the response, so a
        wedged server cannot hold the caller past the budget either.
        """
        wire = dict(payload)
        wire.setdefault("op", "query")
        if deadline_ms is not None:
            wire["deadline_ms"] = deadline_ms
        self.send(wire)
        return self.recv(
            timeout=None if deadline_ms is None else max(deadline_ms, 1) / 1e3
        )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the connection."""
        self.close()


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Declarative retry/breaker configuration (cf. ``core/reliable.py``).

    Attributes:
        max_attempts: Transport attempts per query (``>= 1``).
        base_delay: First backoff delay in seconds; attempt ``k`` waits
            ``base_delay * 2**k``, capped at ``max_delay``.
        max_delay: Backoff ceiling in seconds.
        jitter: Fractional jitter: each delay is scaled by a uniform
            factor in ``[1 - jitter, 1 + jitter]`` so synchronized
            clients do not retry in lockstep.
        breaker_threshold: Consecutive transport failures that open the
            circuit (``0`` disables the breaker).
        breaker_cooldown: Seconds the circuit stays open before one
            half-open probe is allowed.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    breaker_threshold: int = 5
    breaker_cooldown: float = 5.0

    def __post_init__(self) -> None:
        """Reject nonsensical configurations eagerly."""
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}/{self.max_delay}"
            )
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0, got {self.breaker_cooldown}"
            )

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """The jittered backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if self.jitter == 0:
            return raw
        return raw * (1.0 + self.jitter * float(rng.uniform(-1.0, 1.0)))


class RetryingServeClient:
    """A self-healing client: reconnects, backs off, breaks circuits.

    Owns (and replaces, on failure) an underlying :class:`ServeClient`
    connection.  See the module docstring for the semantics; see
    :class:`ClientRetryPolicy` for the knobs.

    Args:
        host: Service host.
        port: Service port.
        policy: Retry/breaker configuration.
        timeout: Per-attempt socket timeout (connect and response).
        rng: Jitter stream; seeded by default (pass a spawned child of
            your own seeded generator to decorrelate many clients).
        clock: Monotonic time source (injected by tests).
        sleep: Backoff sleeper (injected by tests).

    Usage::

        client = RetryingServeClient("127.0.0.1", port)
        reply = client.query(
            {"id": "q1", "n": 64, "x": 20, "threshold": 8},
            deadline_ms=2000,
        )
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: ClientRetryPolicy = ClientRetryPolicy(),
        timeout: float = 10.0,
        rng: Optional[np.random.Generator] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._host = host
        self._port = port
        self.policy = policy
        self._timeout = timeout
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._clock = clock
        self._sleep = sleep
        self._conn: Optional[ServeClient] = None
        self._consecutive_failures = 0
        self._open_until: Optional[float] = None
        self.attempts_made = 0
        self.breaker_trips = 0

    # -- breaker state -----------------------------------------------------

    @property
    def circuit_open(self) -> bool:
        """Whether calls currently fail fast (cooldown not yet elapsed)."""
        return (
            self._open_until is not None
            and self._clock() < self._open_until
        )

    def _check_breaker(self) -> None:
        if self._open_until is None:
            return
        remaining = self._open_until - self._clock()
        if remaining > 0:
            raise CircuitOpenError(
                f"circuit open for another {remaining:.2f}s after "
                f"{self._consecutive_failures} consecutive failures",
                retry_after=remaining,
            )
        # Cooldown elapsed: half-open.  The next attempt is the probe;
        # _record_failure re-opens on a miss, _record_success closes.

    def _record_failure(self) -> None:
        self._consecutive_failures += 1
        threshold = self.policy.breaker_threshold
        if threshold > 0 and self._consecutive_failures >= threshold:
            if self._open_until is None:
                self.breaker_trips += 1
            self._open_until = self._clock() + self.policy.breaker_cooldown

    def _record_success(self) -> None:
        self._consecutive_failures = 0
        self._open_until = None

    # -- transport ---------------------------------------------------------

    def _drop_connection(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _connection(self) -> ServeClient:
        if self._conn is None:
            self._conn = ServeClient(
                self._host, self._port, timeout=self._timeout
            )
        return self._conn

    def query(
        self,
        payload: Mapping[str, Any],
        *,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One query, retried across transport failures.

        Args:
            payload: Query fields (``op`` defaults to ``"query"``).
            deadline_ms: End-to-end budget across *all* attempts; also
                forwarded on the wire so the server can shed expired
                work.  ``None`` leaves only ``max_attempts`` bounding
                the loop.

        Returns:
            The response frame -- including 4xx/5xx error frames, which
            are answers, not transport failures.

        Raises:
            CircuitOpenError: Failing fast while the breaker is open.
            RetriesExhausted: After ``max_attempts`` transport failures
                or an exhausted deadline.
        """
        start = self._clock()
        budget = None if deadline_ms is None else deadline_ms / 1e3
        last_error: Optional[BaseException] = None
        for attempt in range(self.policy.max_attempts):
            self._check_breaker()
            remaining_ms: Optional[int] = None
            if budget is not None:
                remaining = budget - (self._clock() - start)
                if remaining <= 0:
                    break
                remaining_ms = max(1, int(remaining * 1e3))
            try:
                self.attempts_made += 1
                reply = self._connection().query(
                    payload, deadline_ms=remaining_ms
                )
            except (TimeoutError, ConnectionError, OSError) as exc:
                last_error = exc
                self._record_failure()
                self._drop_connection()
                if attempt + 1 >= self.policy.max_attempts:
                    break
                delay = self.policy.delay(attempt, self._rng)
                if budget is not None:
                    remaining = budget - (self._clock() - start)
                    if remaining <= delay:
                        break
                if delay > 0:
                    self._sleep(delay)
                continue
            self._record_success()
            return reply
        raise RetriesExhausted(
            f"query {payload.get('id')!r} failed after "
            f"{self.attempts_made} attempt(s): {last_error!r}",
            attempts=self.attempts_made,
        )

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        self._drop_connection()

    def __enter__(self) -> "RetryingServeClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the connection."""
        self.close()
