"""A small synchronous client for the threshold-query service.

Speaks the newline-JSON protocol of :mod:`repro.serve.server` over a
plain blocking socket.  :meth:`ServeClient.request` is the simple
round-trip; :meth:`ServeClient.send` / :meth:`ServeClient.recv` split
the halves so callers can pipeline many requests down one connection
(the benchmark's throughput driver does exactly that, correlating
responses by ``id``).

Deliberately dependency-free and thread-dumb: one client per thread.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Mapping, Optional


class ServeClient:
    """One blocking connection to a running service.

    Args:
        host: Service host.
        port: Service port.
        timeout: Socket timeout in seconds (``None`` blocks forever).

    Usage::

        with ServeClient("127.0.0.1", port) as client:
            reply = client.request({"op": "ping"})
    """

    def __init__(
        self, host: str, port: int, *, timeout: Optional[float] = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def send(self, payload: Mapping[str, Any]) -> None:
        """Write one request line (does not wait for the response)."""
        data = (json.dumps(dict(payload)) + "\n").encode("utf-8")
        self._sock.sendall(data)

    def recv(self) -> Dict[str, Any]:
        """Read the next response line (whatever request it answers).

        Raises:
            ConnectionError: If the server closed the connection.
            ValueError: If the response line is not a JSON object.
        """
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        obj = json.loads(line)
        if not isinstance(obj, dict):
            raise ValueError(f"expected a JSON object response, got {obj!r}")
        return obj

    def request(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """One request/response round trip."""
        self.send(payload)
        return self.recv()

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the connection."""
        self.close()
