"""Threshold querying as a service: the long-lived ``tcast-serve`` daemon.

The rest of the repository runs threshold queries as batch jobs --
figure sweeps, the farm, the benchmark harness.  This package turns the
same machinery into a *service*: a single asyncio process that
multiplexes many concurrent threshold queries over simulated testbeds,
the deployment shape the paper's Sec VII sketches for a base station
answering operator queries on demand.

The pipeline, front to back:

* :mod:`repro.serve.request` -- the wire-level request model
  (:class:`~repro.serve.request.QueryRequest`) and its validation.
* :mod:`repro.serve.admission` -- bounded admission: per-tenant
  token-bucket rate limits plus a global pending cap, shedding load with
  429-style rejections counted in :mod:`repro.obs`.
* :mod:`repro.serve.scheduler` -- the batching scheduler: admitted
  queries with the same ``(population, model, threshold)`` family
  coalesce into shared vectorized rounds.
* :mod:`repro.serve.executor` -- executes a coalesced group on the
  PR-7 vectorized kernel (scalar fallback included), bit-identical to
  running each request alone.
* :mod:`repro.serve.server` -- the newline-JSON-over-TCP front end with
  graceful SIGTERM/SIGINT drain and a live ``metrics`` endpoint.
* :mod:`repro.serve.errors` -- the typed failure hierarchy
  (:class:`~repro.serve.errors.ServeError`) the front end renders into
  wire frames mechanically.
* :mod:`repro.serve.client` -- synchronous clients: the plain
  :class:`~repro.serve.client.ServeClient` and the retrying,
  circuit-breaking :class:`~repro.serve.client.RetryingServeClient`.
* :mod:`repro.serve.chaos` -- a seeded TCP fault-injection proxy
  (:class:`~repro.serve.chaos.ChaosProxy`) for the resilience suite.
* :mod:`repro.serve.cli` -- the ``tcast-serve`` console entry point.

See DESIGN.md sections 16 (service) and 17 (resilience) for the
design rationale.
"""

from repro.serve.admission import AdmissionController, AdmissionPolicy, TokenBucket
from repro.serve.chaos import ChaosHandle, ChaosProxy, ChaosSpec, chaos_in_thread
from repro.serve.client import (
    CircuitOpenError,
    ClientRetryPolicy,
    RetriesExhausted,
    RetryingServeClient,
    ServeClient,
)
from repro.serve.errors import (
    CodelShed,
    DeadlineExceeded,
    QueryExecutionError,
    ServeError,
)
from repro.serve.executor import QueryOutcome, execute_group
from repro.serve.request import QueryRequest, RequestError
from repro.serve.scheduler import BatchScheduler
from repro.serve.server import ServeConfig, ServiceHandle, ThresholdQueryService, serve_in_thread

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BatchScheduler",
    "ChaosHandle",
    "ChaosProxy",
    "ChaosSpec",
    "CircuitOpenError",
    "ClientRetryPolicy",
    "CodelShed",
    "DeadlineExceeded",
    "QueryExecutionError",
    "QueryOutcome",
    "QueryRequest",
    "RequestError",
    "RetriesExhausted",
    "RetryingServeClient",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServiceHandle",
    "ThresholdQueryService",
    "TokenBucket",
    "chaos_in_thread",
    "execute_group",
    "serve_in_thread",
]
