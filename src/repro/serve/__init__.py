"""Threshold querying as a service: the long-lived ``tcast-serve`` daemon.

The rest of the repository runs threshold queries as batch jobs --
figure sweeps, the farm, the benchmark harness.  This package turns the
same machinery into a *service*: a single asyncio process that
multiplexes many concurrent threshold queries over simulated testbeds,
the deployment shape the paper's Sec VII sketches for a base station
answering operator queries on demand.

The pipeline, front to back:

* :mod:`repro.serve.request` -- the wire-level request model
  (:class:`~repro.serve.request.QueryRequest`) and its validation.
* :mod:`repro.serve.admission` -- bounded admission: per-tenant
  token-bucket rate limits plus a global pending cap, shedding load with
  429-style rejections counted in :mod:`repro.obs`.
* :mod:`repro.serve.scheduler` -- the batching scheduler: admitted
  queries with the same ``(population, model, threshold)`` family
  coalesce into shared vectorized rounds.
* :mod:`repro.serve.executor` -- executes a coalesced group on the
  PR-7 vectorized kernel (scalar fallback included), bit-identical to
  running each request alone.
* :mod:`repro.serve.server` -- the newline-JSON-over-TCP front end with
  graceful SIGTERM/SIGINT drain and a live ``metrics`` endpoint.
* :mod:`repro.serve.client` -- a small synchronous client used by the
  CLI, the tests and the benchmark harness.
* :mod:`repro.serve.cli` -- the ``tcast-serve`` console entry point.

See DESIGN.md section 16 for the design rationale.
"""

from repro.serve.admission import AdmissionController, AdmissionPolicy, TokenBucket
from repro.serve.client import ServeClient
from repro.serve.executor import QueryOutcome, execute_group
from repro.serve.request import QueryRequest, RequestError
from repro.serve.scheduler import BatchScheduler
from repro.serve.server import ServeConfig, ServiceHandle, ThresholdQueryService, serve_in_thread

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BatchScheduler",
    "QueryOutcome",
    "QueryRequest",
    "RequestError",
    "ServeClient",
    "ServeConfig",
    "ServiceHandle",
    "ThresholdQueryService",
    "TokenBucket",
    "execute_group",
]
