"""A seeded TCP chaos proxy for torturing the serve stack.

:class:`ChaosProxy` sits between a client and a running
:class:`~repro.serve.server.ThresholdQueryService`, forwarding bytes in
both directions while injecting transport faults drawn from seeded
random streams -- the serve-layer sibling of :mod:`repro.faults`, one
layer down the stack (TCP bytes instead of bin verdicts):

* **latency** -- every forwarded chunk is delayed by
  ``latency_ms`` plus a uniform jitter;
* **stalls** -- with probability ``p_stall`` a chunk is held for
  ``stall_ms`` before forwarding (a wedged middlebox, not a dead one);
* **truncation** -- with probability ``p_truncate`` a chunk is cut in
  half mid-frame and the connection aborted, so the victim sees a
  syntactically broken partial line followed by a reset;
* **disconnects** -- with probability ``p_disconnect`` the connection
  is aborted outright between chunks.

Faults are drawn per connection from streams rooted at
``SeedSequence((seed, connection_index))`` -- the :mod:`repro.faults`
idiom -- with one child stream per pump direction, so a run's fault
pattern is a function of the spec, not of scheduler interleaving.
Injected faults are counted per kind on the proxy
(:attr:`ChaosProxy.injected`), giving tests and the benchmark ground
truth to reconcile server-side ``serve.*`` counters against.

The proxy is deliberately protocol-blind: it never parses frames, so it
can cut a JSON line anywhere -- exactly the damage the server's
:class:`~repro.serve.server._FrameReader` and the retrying client must
survive.

:func:`chaos_in_thread` mirrors
:func:`~repro.serve.server.serve_in_thread`: it runs a proxy on a
background thread's event loop so blocking clients (the tests, the
benchmark) can dial through it.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

#: Forwarding chunk size; small enough that multi-frame pipelines span
#: several chunks (giving per-chunk faults several chances to fire).
_CHUNK = 1 << 14


class _Cut(Exception):
    """Internal: this connection was chosen for a hard abort."""


@dataclass(frozen=True)
class ChaosSpec:
    """Declarative fault mix for one :class:`ChaosProxy`.

    Attributes:
        latency_ms: Fixed delay added to every forwarded chunk.
        latency_jitter_ms: Extra uniform ``[0, jitter)`` delay per chunk.
        p_truncate: Per-chunk probability of a mid-frame cut: half the
            chunk is forwarded, then the connection is aborted.
        p_disconnect: Per-chunk probability of aborting the connection
            between chunks (the chunk is dropped whole).
        p_stall: Per-chunk probability of holding the chunk ``stall_ms``
            before forwarding it intact.
        stall_ms: Stall duration.
        seed: Root seed for all fault randomness.
    """

    latency_ms: float = 0.0
    latency_jitter_ms: float = 0.0
    p_truncate: float = 0.0
    p_disconnect: float = 0.0
    p_stall: float = 0.0
    stall_ms: float = 50.0
    seed: int = 0

    def __post_init__(self) -> None:
        """Reject nonsensical configurations eagerly."""
        if self.latency_ms < 0 or self.latency_jitter_ms < 0:
            raise ValueError("latency_ms and latency_jitter_ms must be >= 0")
        for name in ("p_truncate", "p_disconnect", "p_stall"):
            p = float(getattr(self, name))
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.stall_ms < 0:
            raise ValueError(f"stall_ms must be >= 0, got {self.stall_ms}")

    @classmethod
    def none(cls) -> "ChaosSpec":
        """A fault-free spec: the proxy forwards bytes untouched."""
        return cls()


class ChaosProxy:
    """The asyncio proxy itself (see the module docstring).

    Args:
        upstream_host: The real service's host.
        upstream_port: The real service's port.
        spec: The fault mix.
        host: Proxy bind address.
        port: Proxy bind port; ``0`` picks a free one (read it back
            from :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        spec: ChaosSpec = ChaosSpec(),
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._upstream = (upstream_host, upstream_port)
        self.spec = spec
        self._host = host
        self.port = port
        self._server: Optional[asyncio.Server] = None
        self._conn_index = 0
        self._counts: Dict[str, int] = {
            "connections": 0,
            "delays": 0,
            "stalls": 0,
            "truncations": 0,
            "disconnects": 0,
        }

    @property
    def injected(self) -> Dict[str, int]:
        """Ground-truth injected-fault counts, per kind (a copy)."""
        return dict(self._counts)

    async def start(self) -> None:
        """Bind the proxy listener."""
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=self.port
        )
        for sock in self._server.sockets or ():
            self.port = int(sock.getsockname()[1])
            break

    async def stop(self) -> None:
        """Close the listener (live connections die with the loop)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        """Proxy one client connection through the fault mix."""
        index = self._conn_index
        self._conn_index += 1
        self._counts["connections"] += 1
        # One stream per pump direction, both rooted at (seed, index):
        # asyncio interleaving between the directions cannot reorder
        # either direction's own draws.
        children = np.random.SeedSequence((self.spec.seed, index)).spawn(2)
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self._upstream
            )
        except (ConnectionError, OSError):
            client_writer.close()
            return
        pumps = [
            asyncio.ensure_future(
                self._pump(
                    client_reader, up_writer, np.random.default_rng(children[0])
                )
            ),
            asyncio.ensure_future(
                self._pump(
                    up_reader, client_writer, np.random.default_rng(children[1])
                )
            ),
        ]
        try:
            await asyncio.gather(*pumps)
        except (_Cut, ConnectionError, OSError):
            for pump in pumps:
                pump.cancel()
            for writer in (client_writer, up_writer):
                transport = writer.transport
                if transport is not None:
                    transport.abort()
        finally:
            await asyncio.gather(*pumps, return_exceptions=True)
            for writer in (client_writer, up_writer):
                writer.close()

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        rng: np.random.Generator,
    ) -> None:
        """Forward one direction, chunk by chunk, through the fault mix."""
        spec = self.spec
        while True:
            chunk = await reader.read(_CHUNK)
            if not chunk:
                break
            delay = spec.latency_ms
            if spec.latency_jitter_ms > 0:
                delay += float(rng.uniform(0.0, spec.latency_jitter_ms))
            if delay > 0:
                self._counts["delays"] += 1
                await asyncio.sleep(delay / 1e3)
            if spec.p_stall > 0 and float(rng.random()) < spec.p_stall:
                self._counts["stalls"] += 1
                await asyncio.sleep(spec.stall_ms / 1e3)
            if spec.p_truncate > 0 and float(rng.random()) < spec.p_truncate:
                self._counts["truncations"] += 1
                writer.write(chunk[: len(chunk) // 2])
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                raise _Cut()
            if spec.p_disconnect > 0 and float(rng.random()) < spec.p_disconnect:
                self._counts["disconnects"] += 1
                raise _Cut()
            writer.write(chunk)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                break
        # Clean EOF on this direction: half-close so the peer sees it,
        # while the opposite direction keeps flowing.
        try:
            if writer.can_write_eof():
                writer.write_eof()
        except (ConnectionError, OSError):
            pass


class ChaosHandle:
    """A proxy running on a background thread's event loop.

    Built by :func:`chaos_in_thread`; exposes the bound port, the live
    injected-fault counts, and a blocking :meth:`stop`.
    """

    def __init__(
        self,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        proxy: ChaosProxy,
        stop_event: "asyncio.Event",
    ) -> None:
        self._thread = thread
        self._loop = loop
        self.proxy = proxy
        self._stop_event = stop_event

    @property
    def port(self) -> int:
        """The proxy's bound TCP port."""
        return self.proxy.port

    @property
    def injected(self) -> Dict[str, int]:
        """Ground-truth injected-fault counts so far."""
        return self.proxy.injected

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the proxy down and join its thread."""
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("chaos proxy thread did not stop in time")

    def __enter__(self) -> "ChaosHandle":
        """Context-manager entry: the handle itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: stop the proxy."""
        self.stop()


def chaos_in_thread(
    upstream_host: str, upstream_port: int, spec: ChaosSpec = ChaosSpec()
) -> ChaosHandle:
    """Run a :class:`ChaosProxy` on a background event loop; return its handle.

    Blocks until the proxy is bound, mirroring
    :func:`~repro.serve.server.serve_in_thread` -- point a blocking
    client at :attr:`ChaosHandle.port` and every byte flows through the
    fault mix.
    """
    proxy = ChaosProxy(upstream_host, upstream_port, spec)
    started = threading.Event()
    boot_error: Dict[str, BaseException] = {}
    box: Dict[str, object] = {}

    def _thread_main() -> None:
        async def _amain() -> None:
            box["loop"] = asyncio.get_running_loop()
            stop_event = asyncio.Event()
            box["stop"] = stop_event
            try:
                await proxy.start()
            except BaseException as exc:
                boot_error["error"] = exc
                started.set()
                raise
            started.set()
            await stop_event.wait()
            await proxy.stop()

        try:
            asyncio.run(_amain())
        except BaseException:
            if not started.is_set():
                started.set()

    thread = threading.Thread(
        target=_thread_main, name="tcast-chaos", daemon=True
    )
    thread.start()
    started.wait(timeout=30.0)
    if "error" in boot_error:
        thread.join(timeout=5.0)
        raise RuntimeError(
            f"chaos proxy failed to start: {boot_error['error']!r}"
        ) from boot_error["error"]
    loop = box.get("loop")
    stop_event = box.get("stop")
    if not isinstance(loop, asyncio.AbstractEventLoop) or not isinstance(
        stop_event, asyncio.Event
    ):
        raise RuntimeError("chaos proxy thread did not start in time")
    return ChaosHandle(thread, loop, proxy, stop_event)
