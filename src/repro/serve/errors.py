"""The service's error vocabulary: typed failures that map to frames.

Everything the resilience layer can do *to* a request -- expire it,
shed it, fail it with a worker fault -- is expressed as a
:class:`ServeError` subclass carrying a stable wire ``code`` and an
HTTP-flavoured ``status``.  The front end
(:mod:`repro.serve.server`) renders any :class:`ServeError` raised out
of the scheduler into an error frame mechanically, so adding a failure
mode never touches the protocol code.

The hierarchy is deliberately small:

* :class:`DeadlineExceeded` -- a request outlived its ``deadline_ms``
  budget (504-style), with :attr:`~DeadlineExceeded.stage` recording
  where it died (``"queued"`` / ``"executing"``).
* :class:`CodelShed` -- the scheduler's CoDel watchdog dropped the
  request from the front of an over-target queue (429-style).
* :class:`QueryExecutionError` -- the executor failed while answering a
  coalesced group (500-style); :attr:`~QueryExecutionError.request_id`
  names the request whose execution raised, so members of a failed
  group are never left with an opaque shared error.  Subclasses
  :class:`RuntimeError` so callers treating executor failures as
  generic runtime faults keep working.
"""

from __future__ import annotations

from typing import Optional


class ServeError(Exception):
    """Base class for typed service-side request failures.

    Attributes:
        status: HTTP-flavoured status the front end reports (e.g. 504).
        code: Stable machine-readable reason for the error frame.
    """

    status: int = 500
    code: str = "internal"


class DeadlineExceeded(ServeError):
    """A request's ``deadline_ms`` budget ran out before it was answered.

    Args:
        message: Human-readable detail.
        stage: Where the deadline fired: ``"queued"`` (still in the
            scheduler queue) or ``"executing"`` (claimed into a group
            but expired before the thread-pool hop).
    """

    status = 504
    code = "deadline_exceeded"

    def __init__(self, message: str, *, stage: str) -> None:
        super().__init__(message)
        self.stage = stage


class CodelShed(ServeError):
    """The scheduler's watchdog shed this request to protect latency.

    Raised (as a future exception) for requests dropped from the front
    of the queue when the CoDel target is exceeded; the front end
    renders it as a 429 with code ``"codel"`` so clients can tell
    overload sheds from rate-limit sheds.
    """

    status = 429
    code = "codel"


class QueryExecutionError(ServeError, RuntimeError):
    """Executing a request (or its coalesced group) raised unexpectedly.

    Args:
        message: Human-readable detail; names the failing request.
        request_id: The id of the request whose execution raised --
            attached so every member of a failed group learns *which*
            sibling took the group down, not just that something did.
    """

    status = 500
    code = "execution_failed"

    def __init__(self, message: str, *, request_id: Optional[str] = None) -> None:
        super().__init__(message)
        self.request_id = request_id
