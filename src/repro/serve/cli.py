"""The ``tcast-serve`` console entry point.

Three subcommands::

    tcast-serve run [--host H] [--port P] [--workers N] [...]
    tcast-serve query --port P --n 64 --x 20 --threshold 8 [...]
    tcast-serve metrics --port P

``run`` starts the daemon and blocks until SIGTERM/SIGINT, then drains
gracefully (in-flight queries finish, responses flush) and exits 0; a
Ctrl-C during startup exits 130.  ``query`` and ``metrics`` are thin
:class:`~repro.serve.client.ServeClient` one-shots for smoke tests and
operations.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import uuid
from typing import Optional, Sequence

from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ThresholdQueryService


def _build_parser() -> argparse.ArgumentParser:
    """The ``tcast-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="tcast-serve",
        description="Threshold querying as a service (see DESIGN.md §16).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start the daemon (blocks until SIGTERM)")
    run.add_argument("--host", default="127.0.0.1", help="bind address")
    run.add_argument(
        "--port", type=int, default=7421,
        help="bind port (0 picks a free one and prints it)",
    )
    run.add_argument(
        "--max-pending", type=int, default=1024,
        help="global cap on admitted-but-unfinished requests",
    )
    run.add_argument(
        "--tenant-rate", type=float, default=0.0,
        help="per-tenant sustained requests/second (0 disables)",
    )
    run.add_argument(
        "--tenant-burst", type=float, default=64.0,
        help="per-tenant burst capacity",
    )
    run.add_argument(
        "--max-batch-runs", type=int, default=4096,
        help="cap on total trials per coalesced batch",
    )
    run.add_argument(
        "--workers", type=int, default=2, help="scheduler executor lanes"
    )
    run.add_argument(
        "--no-vectorize", action="store_true",
        help="force the scalar path (debugging/oracle runs)",
    )
    run.add_argument(
        "--no-metrics", action="store_true",
        help="leave the repro.obs registry disabled",
    )
    run.add_argument(
        "--max-connections", type=int, default=256,
        help="cap on concurrently open client connections",
    )
    run.add_argument(
        "--idle-timeout", type=float, default=300.0,
        help="close a connection idle for this many seconds (0 disables)",
    )
    run.add_argument(
        "--read-deadline", type=float, default=30.0,
        help="max seconds to finish one started frame (0 disables)",
    )
    run.add_argument(
        "--max-inflight-per-conn", type=int, default=128,
        help="per-connection cap on pipelined in-flight requests",
    )
    run.add_argument(
        "--codel-target-ms", type=float, default=0.0,
        help="CoDel queue-wait p50 target in ms (0 disables shedding)",
    )
    run.add_argument(
        "--codel-interval-ms", type=float, default=100.0,
        help="CoDel watchdog inspection interval in ms",
    )

    query = sub.add_parser("query", help="send one threshold query")
    query.add_argument("--host", default="127.0.0.1", help="service host")
    query.add_argument("--port", type=int, required=True, help="service port")
    query.add_argument("--n", type=int, required=True, help="population size")
    query.add_argument("--x", type=int, required=True, help="true positives")
    query.add_argument(
        "--threshold", type=int, required=True, help="the threshold t"
    )
    query.add_argument("--runs", type=int, default=1, help="Monte-Carlo trials")
    query.add_argument("--seed", type=int, default=0, help="request seed")
    query.add_argument(
        "--algorithm", default="2tbins", help="registry algorithm name"
    )
    query.add_argument(
        "--collision-model", default="1+", choices=("1+", "2+"),
        help="collision model",
    )
    query.add_argument(
        "--reliable", default=None, choices=("krepeat", "chernoff"),
        help="server-side reliability layer",
    )
    query.add_argument(
        "--tenant", default="cli", help="rate-limiting principal"
    )
    query.add_argument(
        "--deadline-ms", type=int, default=None,
        help="end-to-end budget in ms (server sheds expired work)",
    )

    metrics = sub.add_parser("metrics", help="dump the live metrics snapshot")
    metrics.add_argument("--host", default="127.0.0.1", help="service host")
    metrics.add_argument("--port", type=int, required=True, help="service port")

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    """Start the daemon and block until a drained shutdown."""
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        max_batch_runs=args.max_batch_runs,
        workers=args.workers,
        vectorize=not args.no_vectorize,
        metrics=not args.no_metrics,
        max_connections=args.max_connections,
        idle_timeout=args.idle_timeout,
        read_deadline=args.read_deadline,
        max_inflight_per_conn=args.max_inflight_per_conn,
        codel_target_ms=args.codel_target_ms,
        codel_interval_ms=args.codel_interval_ms,
    )
    return asyncio.run(ThresholdQueryService(config).run())


def _cmd_query(args: argparse.Namespace) -> int:
    """One-shot query against a running service."""
    payload = {
        "op": "query",
        "id": f"cli-{uuid.uuid4().hex[:12]}",
        "tenant": args.tenant,
        "n": args.n,
        "x": args.x,
        "threshold": args.threshold,
        "runs": args.runs,
        "seed": args.seed,
        "algorithm": args.algorithm,
        "collision_model": args.collision_model,
        "reliable": args.reliable,
    }
    with ServeClient(args.host, args.port) as client:
        reply = client.query(payload, deadline_ms=args.deadline_ms)
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0 if reply.get("ok") else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Dump the service's live metrics snapshot as JSON."""
    with ServeClient(args.host, args.port) as client:
        reply = client.request({"op": "metrics"})
    if not reply.get("ok"):
        print(json.dumps(reply, indent=2, sort_keys=True), file=sys.stderr)
        return 1
    print(json.dumps(reply.get("metrics", {}), indent=2, sort_keys=True))
    return 0


def _main(argv: Optional[Sequence[str]]) -> int:
    """Dispatch one parsed command."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "query":
        return _cmd_query(args)
    return _cmd_metrics(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point (``tcast-serve``).

    A ``KeyboardInterrupt`` anywhere -- typically Ctrl-C before the
    daemon's own signal handling is installed, or during a client
    round trip -- exits with the conventional ``130`` (= 128 + SIGINT)
    instead of a traceback, matching ``tcast-experiments``.
    """
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("\n[interrupted]", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
