"""Bounded admission: rate limits and load shedding at the front door.

The service refuses work it cannot absorb *before* queueing it, in two
layers:

* a **per-tenant token bucket** -- each tenant sustains ``tenant_rate``
  requests per second with bursts up to ``tenant_burst``; and
* a **global pending cap** -- at most ``max_pending`` admitted requests
  may be queued or in flight at once, bounding memory and tail latency.

Rejections are cheap, counted per reason in :mod:`repro.obs`
(``serve.rejected.rate_limited`` / ``serve.rejected.queue_full`` /
``serve.rejected.draining`` / ``serve.rejected.deadline``), and carry a
stable reason code the front end echoes to the client -- 429-style for
load sheds, 504-style for requests whose ``deadline_ms`` budget is
already spent on arrival.  A draining service (shutdown signal
received) sheds everything new while in-flight work finishes.

The controller is synchronous and lock-free by construction: it is only
called from the service's event-loop thread, so plain attribute updates
are safe.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs import get_registry
from repro.serve.request import QueryRequest

_OBS = get_registry()
_ADMITTED = _OBS.counter("serve.admitted")
_REJ_RATE = _OBS.counter("serve.rejected.rate_limited")
_REJ_FULL = _OBS.counter("serve.rejected.queue_full")
_REJ_DRAIN = _OBS.counter("serve.rejected.draining")
_REJ_DEADLINE = _OBS.counter("serve.rejected.deadline")

#: Rejection reason codes (stable wire values).
REASON_RATE_LIMITED = "rate_limited"
REASON_QUEUE_FULL = "queue_full"
REASON_DRAINING = "draining"
REASON_DEADLINE = "deadline"


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s, capacity ``burst``.

    Args:
        rate: Sustained refill rate in tokens per second (``> 0``).
        burst: Bucket capacity; the largest instantaneous burst.
        clock: Monotonic time source (injected by tests).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` sheds the request."""
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


@dataclass(frozen=True)
class AdmissionPolicy:
    """Declarative admission configuration.

    Attributes:
        max_pending: Global cap on admitted-but-unfinished requests.
        tenant_rate: Sustained per-tenant requests/second; ``0`` disables
            rate limiting entirely.
        tenant_burst: Per-tenant burst capacity.
    """

    max_pending: int = 1024
    tenant_rate: float = 0.0
    tenant_burst: float = 64.0

    def __post_init__(self) -> None:
        """Reject nonsensical configurations eagerly."""
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.tenant_rate < 0:
            raise ValueError(f"tenant_rate must be >= 0, got {self.tenant_rate}")
        if self.tenant_rate > 0 and self.tenant_burst < 1:
            raise ValueError(
                f"tenant_burst must be >= 1, got {self.tenant_burst}"
            )


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` to incoming requests.

    Args:
        policy: The admission configuration.
        clock: Monotonic time source shared by all tenant buckets.
    """

    def __init__(
        self,
        policy: AdmissionPolicy,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._pending = 0
        self._draining = False

    @property
    def pending(self) -> int:
        """Admitted requests not yet released (queued or in flight)."""
        return self._pending

    @property
    def draining(self) -> bool:
        """Whether the service has begun its shutdown drain."""
        return self._draining

    def begin_drain(self) -> None:
        """Shed all new work from now on; in-flight work is unaffected."""
        self._draining = True

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.policy.tenant_rate,
                self.policy.tenant_burst,
                clock=self._clock,
            )
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, request: QueryRequest) -> Optional[str]:
        """Admit ``request`` or return a rejection reason code.

        ``None`` means admitted: the caller owns one pending slot and
        must call :meth:`release` exactly once when the request finishes
        (successfully or not).  A string return is a shed
        (:data:`REASON_DRAINING` / :data:`REASON_DEADLINE` /
        :data:`REASON_RATE_LIMITED` / :data:`REASON_QUEUE_FULL`),
        already counted in the metrics.  Deadline rejections come
        before the token bucket so already-dead work never spends a
        tenant's rate budget.
        """
        if self._draining:
            _REJ_DRAIN.inc()
            return REASON_DRAINING
        if request.deadline_ms is not None and request.deadline_ms <= 0:
            _REJ_DEADLINE.inc()
            return REASON_DEADLINE
        if self.policy.tenant_rate > 0 and not self._bucket(
            request.tenant
        ).try_acquire():
            _REJ_RATE.inc()
            return REASON_RATE_LIMITED
        if self._pending >= self.policy.max_pending:
            _REJ_FULL.inc()
            return REASON_QUEUE_FULL
        self._pending += 1
        _ADMITTED.inc()
        return None

    def release(self) -> None:
        """Return one pending slot (the request left the system)."""
        if self._pending <= 0:
            raise RuntimeError("release() without a matching admit()")
        self._pending -= 1
