"""The batching scheduler: coalesce compatible queries into shared rounds.

Admitted requests land in a single FIFO queue.  Worker coroutines pull
the oldest request, then sweep the rest of the queue for every other
request with the same :attr:`~repro.serve.request.QueryRequest.coalesce_key`
(up to ``max_batch_runs`` total trials) and execute the whole group in
one :func:`repro.serve.executor.execute_group` call on a thread-pool
executor -- the event loop stays responsive while numpy crunches.

Because every request owns a private seed-rooted stream tree, this
opportunistic coalescing is pure mechanical sympathy: batch composition
affects throughput, never answers (see :mod:`repro.serve.executor`).

Resilience (DESIGN.md section 17) is layered on the same loop:

* **Deadlines.**  A request carrying ``deadline_ms`` gets an absolute
  expiry stamped at :meth:`BatchScheduler.submit`.  Queue sweeps purge
  expired entries before they can join a group
  (``serve.expired.queued``), and every claimed member is re-checked
  immediately before the thread-pool hop (``serve.expired.executing``);
  either way the request's future fails with
  :class:`~repro.serve.errors.DeadlineExceeded` and the front end
  renders a 504-style frame.
* **Supervision.**  Worker coroutines are supervised: an unexpected
  exception escaping a worker fails only the group it had claimed
  (each member's future gets a
  :class:`~repro.serve.errors.QueryExecutionError` naming the failing
  request, counted per member on ``serve.failed``), increments
  ``serve.worker_restarts``, and the worker is respawned.  A wedged or
  crashing executor therefore costs one group, never the daemon.
* **CoDel watchdog.**  A periodic coroutine samples the queue-wait
  distribution; when the p50 wait exceeds ``codel_target_ms`` the
  scheduler is falling behind (slow executor, wedged pool thread) and
  the watchdog sheds from the *front* of the queue -- the requests that
  have already waited longest and are most likely to miss their
  deadlines anyway -- failing each with
  :class:`~repro.serve.errors.CodelShed` (a 429 on the wire, counted on
  ``serve.rejected.codel``) until the median wait is back under target.

Lifecycle: :meth:`BatchScheduler.start` spawns the workers (tests may
enqueue first and start later to force specific coalescing),
:meth:`BatchScheduler.submit` returns a future per request, and
:meth:`BatchScheduler.drain` finishes queued work and stops the workers.
Latency from submit to completion is observed per request in the
``serve.latency_ms`` histogram; queue waits land in
``serve.queue_wait_ms``; batch sizes land in ``serve.batch.runs``.

All timing flows through an injectable monotonic ``clock`` so the
deadline and CoDel machinery is deterministic under test; only the
default argument references the host clock.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.obs import get_registry
from repro.serve.errors import CodelShed, DeadlineExceeded, QueryExecutionError
from repro.serve.executor import QueryOutcome, execute_group
from repro.serve.request import QueryRequest

_OBS = get_registry()
_COMPLETED = _OBS.counter("serve.completed")
_FAILED = _OBS.counter("serve.failed")
_EXPIRED_QUEUED = _OBS.counter("serve.expired.queued")
_EXPIRED_EXECUTING = _OBS.counter("serve.expired.executing")
_WORKER_RESTARTS = _OBS.counter("serve.worker_restarts")
_REJ_CODEL = _OBS.counter("serve.rejected.codel")
_LATENCY_MS = _OBS.histogram(
    "serve.latency_ms",
    edges=(1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0),
)
_QUEUE_WAIT_MS = _OBS.histogram(
    "serve.queue_wait_ms",
    edges=(1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0),
)


@dataclass
class _Item:
    """One queued unit of work.

    Attributes:
        request: The admitted request.
        future: Resolves to the request's :class:`QueryOutcome` (or an
            error from :mod:`repro.serve.errors`).
        submitted: Monotonic submit timestamp (latency accounting).
        expires: Absolute monotonic expiry, or ``None`` for no deadline.
    """

    request: QueryRequest
    future: "asyncio.Future[QueryOutcome]"
    submitted: float
    expires: Optional[float]


class _GroupFailure(Exception):
    """Internal: a claimed group's execution raised ``cause``.

    Carries the group so the supervisor can fail exactly its members;
    never escapes the scheduler.
    """

    def __init__(self, group: List[_Item], cause: BaseException) -> None:
        super().__init__(repr(cause))
        self.group = group
        self.cause = cause


class BatchScheduler:
    """Coalesces and executes admitted requests (see module docstring).

    Args:
        max_batch_runs: Cap on total trials per coalesced group.
        workers: Concurrent executor lanes (each drives one group at a
            time); also sizes the underlying thread pool.
        vectorize: Allow the vectorized kernel (``False`` forces the
            scalar oracle everywhere -- tests, benchmarks).
        clock: Monotonic time source for deadlines and queue waits
            (injected by tests; the default is the host clock).
        codel_target_ms: Queue-wait p50 above which the watchdog sheds
            from the front of the queue.  ``0`` disables the watchdog.
        codel_interval_ms: Watchdog sampling period.
    """

    def __init__(
        self,
        *,
        max_batch_runs: int = 4096,
        workers: int = 2,
        vectorize: bool = True,
        clock: Callable[[], float] = time.monotonic,
        codel_target_ms: float = 0.0,
        codel_interval_ms: float = 100.0,
    ) -> None:
        if max_batch_runs < 1:
            raise ValueError(f"max_batch_runs must be >= 1, got {max_batch_runs}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if codel_target_ms < 0:
            raise ValueError(
                f"codel_target_ms must be >= 0, got {codel_target_ms}"
            )
        if codel_interval_ms <= 0:
            raise ValueError(
                f"codel_interval_ms must be > 0, got {codel_interval_ms}"
            )
        self.max_batch_runs = max_batch_runs
        self.vectorize = vectorize
        self.codel_target_ms = codel_target_ms
        self.codel_interval_ms = codel_interval_ms
        self._clock = clock
        self._queue: Deque[_Item] = deque()
        self._wakeup = asyncio.Event()
        self._workers: List["asyncio.Task[None]"] = []
        self._watchdog: Optional["asyncio.Task[None]"] = None
        self._worker_count = workers
        self._worker_serial = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the (supervised) workers on the running event loop."""
        if self._workers:
            raise RuntimeError("scheduler already started")
        self._stopping = False
        self._pool = ThreadPoolExecutor(
            max_workers=self._worker_count,
            thread_name_prefix="serve-exec",
        )
        for _ in range(self._worker_count):
            self._spawn_worker()
        if self.codel_target_ms > 0:
            self._watchdog = asyncio.get_running_loop().create_task(
                self._watch(), name="serve-watchdog"
            )

    async def drain(self) -> None:
        """Finish all queued work, then stop the workers.

        Safe to call more than once.  New :meth:`submit` calls after the
        drain began fail fast (admission should already shed them).
        """
        self._stopping = True
        self._wakeup.set()
        # Workers may respawn while failing groups mid-drain; gather
        # until the supervised set is empty (respawns stop once
        # _stopping is set).
        while self._workers:
            await asyncio.gather(*tuple(self._workers), return_exceptions=True)
        if self._watchdog is not None:
            self._watchdog.cancel()
            try:
                await self._watchdog
            except asyncio.CancelledError:
                pass
            self._watchdog = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- submission --------------------------------------------------------

    def submit(self, request: QueryRequest) -> "asyncio.Future[QueryOutcome]":
        """Enqueue one admitted request; the future resolves to its answer.

        A request carrying ``deadline_ms`` gets its absolute expiry
        stamped here: the budget covers queueing *and* execution.
        """
        if self._stopping:
            raise RuntimeError("scheduler is draining; admission should shed")
        future: "asyncio.Future[QueryOutcome]" = (
            asyncio.get_running_loop().create_future()
        )
        now = self._clock()
        expires = (
            None
            if request.deadline_ms is None
            else now + request.deadline_ms / 1e3
        )
        self._queue.append(_Item(request, future, now, expires))
        self._wakeup.set()
        return future

    @property
    def backlog(self) -> int:
        """Requests enqueued but not yet claimed by a worker."""
        return len(self._queue)

    # -- deadline / shed plumbing ------------------------------------------

    def _expire(self, item: _Item, *, stage: str) -> None:
        """Fail one expired item with a 504-style deadline error."""
        if stage == "queued":
            _EXPIRED_QUEUED.inc()
        else:
            _EXPIRED_EXECUTING.inc()
        _FAILED.inc()
        if not item.future.done():
            item.future.set_exception(
                DeadlineExceeded(
                    f"request {item.request.id!r} exceeded its "
                    f"{item.request.deadline_ms}ms deadline while {stage}",
                    stage=stage,
                )
            )

    def _shed_codel(self, item: _Item) -> None:
        """Fail one watchdog-shed item with a 429-style codel error."""
        _REJ_CODEL.inc()
        _FAILED.inc()
        if not item.future.done():
            item.future.set_exception(
                CodelShed(
                    f"request {item.request.id!r} shed after "
                    f"{(self._clock() - item.submitted) * 1e3:.0f}ms queued "
                    f"(queue-wait p50 over {self.codel_target_ms:.0f}ms target)"
                )
            )

    # -- workers -----------------------------------------------------------

    def _claim_group(self) -> List[_Item]:
        """Pop the oldest live item plus every coalescable follower.

        A single linear sweep of the queue: expired entries are purged
        (failed with ``serve.expired.queued``) instead of claimed,
        followers sharing the leader's coalesce key are claimed
        (preserving order) until the group's total runs would exceed
        ``max_batch_runs``, and everything else keeps its queue
        position.
        """
        now = self._clock()
        lead: Optional[_Item] = None
        while self._queue:
            candidate = self._queue.popleft()
            if candidate.expires is not None and candidate.expires <= now:
                self._expire(candidate, stage="queued")
                continue
            lead = candidate
            break
        if lead is None:
            return []
        _QUEUE_WAIT_MS.observe((now - lead.submitted) * 1e3)
        group = [lead]
        budget = self.max_batch_runs - lead.request.runs
        keep: List[_Item] = []
        while self._queue:
            item = self._queue.popleft()
            if item.expires is not None and item.expires <= now:
                self._expire(item, stage="queued")
                continue
            if (
                item.request.coalesce_key == lead.request.coalesce_key
                and item.request.runs <= budget
            ):
                _QUEUE_WAIT_MS.observe((now - item.submitted) * 1e3)
                group.append(item)
                budget -= item.request.runs
            else:
                keep.append(item)
        self._queue.extend(keep)
        return group

    def _spawn_worker(self) -> None:
        """Create one supervised worker task."""
        serial = self._worker_serial
        self._worker_serial += 1
        task = asyncio.get_running_loop().create_task(
            self._work(), name=f"serve-worker-{serial}"
        )
        self._workers.append(task)
        task.add_done_callback(self._on_worker_done)

    def _on_worker_done(self, task: "asyncio.Task[None]") -> None:
        """Supervisor: fail the dead worker's group, respawn the lane.

        A clean return (drain) or cancellation removes the lane.  Any
        exception means the lane died mid-work: if it carried a claimed
        group (:class:`_GroupFailure`) every member's future is failed
        with a :class:`QueryExecutionError` naming the failing request,
        ``serve.failed`` counts each member, ``serve.worker_restarts``
        counts the lane, and -- unless the scheduler is draining -- a
        fresh worker takes its place.
        """
        try:
            self._workers.remove(task)
        except ValueError:  # pragma: no cover - defensive; never spawned twice
            pass
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        if isinstance(exc, _GroupFailure):
            cause = exc.cause
            failing_id = (
                cause.request_id
                if isinstance(cause, QueryExecutionError)
                else None
            )
            for item in exc.group:
                _FAILED.inc()
                if item.future.done():
                    continue
                if (
                    isinstance(cause, QueryExecutionError)
                    and failing_id == item.request.id
                ):
                    item.future.set_exception(cause)
                else:
                    blame = (
                        f"request {failing_id!r}"
                        if failing_id is not None
                        else "a coalesced sibling"
                    )
                    item.future.set_exception(
                        QueryExecutionError(
                            f"request {item.request.id!r} failed because "
                            f"{blame} raised in its group of "
                            f"{len(exc.group)}: {cause!r}",
                            request_id=item.request.id,
                        )
                    )
        _WORKER_RESTARTS.inc()
        if not self._stopping:
            self._spawn_worker()
        else:
            # Keep the drain loop honest: a lane dying mid-drain still
            # wakes any gatherer waiting on the old task set.
            self._wakeup.set()

    async def _work(self) -> None:
        """One worker lane: claim a group, execute it, deliver answers.

        Exceptions escaping this coroutine are the supervisor's problem
        (:meth:`_on_worker_done`): execution failures are wrapped in
        :class:`_GroupFailure` so only the claimed group pays for them.
        """
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if self._stopping:
                    return
                self._wakeup.clear()
                if self._queue or self._stopping:
                    continue
                await self._wakeup.wait()
                continue
            group = self._claim_group()
            if not group:
                continue
            # Deadline re-check at the thread-pool hop: queue purging
            # only sees a request when a sweep touches it, so a group
            # claimed after a long executor stall may already hold
            # corpses.
            now = self._clock()
            live: List[_Item] = []
            for item in group:
                if item.expires is not None and item.expires <= now:
                    self._expire(item, stage="executing")
                else:
                    live.append(item)
            if not live:
                continue
            requests = [item.request for item in live]
            assert self._pool is not None
            try:
                outcomes = await loop.run_in_executor(
                    self._pool,
                    self._execute,
                    requests,
                )
            except Exception as exc:
                raise _GroupFailure(live, exc) from exc
            now = self._clock()
            for item, outcome in zip(live, outcomes):
                _COMPLETED.inc()
                _LATENCY_MS.observe((now - item.submitted) * 1e3)
                if not item.future.done():
                    item.future.set_result(outcome)

    def _execute(self, requests: List[QueryRequest]) -> List[QueryOutcome]:
        """Thread-pool entry: run one coalesced group to completion."""
        return execute_group(requests, vectorize=self.vectorize)

    # -- watchdog ----------------------------------------------------------

    def _codel_tick(self) -> int:
        """One watchdog sample: shed from the front while p50 is over target.

        Returns:
            The number of requests shed this tick.
        """
        if not self._queue:
            return 0
        now = self._clock()
        waits = sorted((now - item.submitted) * 1e3 for item in self._queue)
        if waits[len(waits) // 2] <= self.codel_target_ms:
            return 0
        shed = 0
        # Drop-from-front: the oldest entries carry the largest waits;
        # shedding them is what actually moves the median.
        while self._queue:
            waits = sorted(
                (now - item.submitted) * 1e3 for item in self._queue
            )
            if waits[len(waits) // 2] <= self.codel_target_ms:
                break
            self._shed_codel(self._queue.popleft())
            shed += 1
        return shed

    async def _watch(self) -> None:
        """The CoDel watchdog loop (see module docstring)."""
        interval = self.codel_interval_ms / 1e3
        while not self._stopping:
            await asyncio.sleep(interval)
            self._codel_tick()
