"""The batching scheduler: coalesce compatible queries into shared rounds.

Admitted requests land in a single FIFO queue.  Worker coroutines pull
the oldest request, then sweep the rest of the queue for every other
request with the same :attr:`~repro.serve.request.QueryRequest.coalesce_key`
(up to ``max_batch_runs`` total trials) and execute the whole group in
one :func:`repro.serve.executor.execute_group` call on a thread-pool
executor -- the event loop stays responsive while numpy crunches.

Because every request owns a private seed-rooted stream tree, this
opportunistic coalescing is pure mechanical sympathy: batch composition
affects throughput, never answers (see :mod:`repro.serve.executor`).

Lifecycle: :meth:`BatchScheduler.start` spawns the workers (tests may
enqueue first and start later to force specific coalescing),
:meth:`BatchScheduler.submit` returns a future per request, and
:meth:`BatchScheduler.drain` finishes queued work and stops the workers.
Latency from submit to completion is observed per request in the
``serve.latency_ms`` histogram; batch sizes land in ``serve.batch.runs``.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, List, Optional, Tuple

from repro.obs import get_registry
from repro.serve.executor import QueryOutcome, execute_group
from repro.serve.request import QueryRequest

_OBS = get_registry()
_COMPLETED = _OBS.counter("serve.completed")
_FAILED = _OBS.counter("serve.failed")
_LATENCY_MS = _OBS.histogram(
    "serve.latency_ms",
    edges=(1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0),
)

#: One queued unit of work: the request, its answer future, and its
#: submit timestamp (monotonic) for the latency histogram.
_Item = Tuple[QueryRequest, "asyncio.Future[QueryOutcome]", float]


class BatchScheduler:
    """Coalesces and executes admitted requests (see module docstring).

    Args:
        max_batch_runs: Cap on total trials per coalesced group.
        workers: Concurrent executor lanes (each drives one group at a
            time); also sizes the underlying thread pool.
        vectorize: Allow the vectorized kernel (``False`` forces the
            scalar oracle everywhere -- tests, benchmarks).
    """

    def __init__(
        self,
        *,
        max_batch_runs: int = 4096,
        workers: int = 2,
        vectorize: bool = True,
    ) -> None:
        if max_batch_runs < 1:
            raise ValueError(f"max_batch_runs must be >= 1, got {max_batch_runs}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.max_batch_runs = max_batch_runs
        self.vectorize = vectorize
        self._queue: Deque[_Item] = deque()
        self._wakeup = asyncio.Event()
        self._workers: List["asyncio.Task[None]"] = []
        self._worker_count = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker coroutines on the running event loop."""
        if self._workers:
            raise RuntimeError("scheduler already started")
        self._stopping = False
        self._pool = ThreadPoolExecutor(
            max_workers=self._worker_count,
            thread_name_prefix="serve-exec",
        )
        self._workers = [
            asyncio.get_running_loop().create_task(
                self._work(), name=f"serve-worker-{i}"
            )
            for i in range(self._worker_count)
        ]

    async def drain(self) -> None:
        """Finish all queued work, then stop the workers.

        Safe to call more than once.  New :meth:`submit` calls after the
        drain began fail fast (admission should already shed them).
        """
        self._stopping = True
        self._wakeup.set()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
            self._workers = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- submission --------------------------------------------------------

    def submit(self, request: QueryRequest) -> "asyncio.Future[QueryOutcome]":
        """Enqueue one admitted request; the future resolves to its answer."""
        if self._stopping:
            raise RuntimeError("scheduler is draining; admission should shed")
        future: "asyncio.Future[QueryOutcome]" = (
            asyncio.get_running_loop().create_future()
        )
        self._queue.append((request, future, time.monotonic()))
        self._wakeup.set()
        return future

    @property
    def backlog(self) -> int:
        """Requests enqueued but not yet claimed by a worker."""
        return len(self._queue)

    # -- workers -----------------------------------------------------------

    def _claim_group(self) -> List[_Item]:
        """Pop the oldest item plus every coalescable follower.

        A single linear sweep of the queue: followers sharing the
        leader's coalesce key are claimed (preserving order) until the
        group's total runs would exceed ``max_batch_runs``; everything
        else keeps its queue position.
        """
        if not self._queue:
            return []
        lead = self._queue.popleft()
        group = [lead]
        budget = self.max_batch_runs - lead[0].runs
        keep: List[_Item] = []
        while self._queue:
            item = self._queue.popleft()
            if (
                item[0].coalesce_key == lead[0].coalesce_key
                and item[0].runs <= budget
            ):
                group.append(item)
                budget -= item[0].runs
            else:
                keep.append(item)
        self._queue.extend(keep)
        return group

    async def _work(self) -> None:
        """One worker lane: claim a group, execute it, deliver answers."""
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if self._stopping:
                    return
                self._wakeup.clear()
                if self._queue or self._stopping:
                    continue
                await self._wakeup.wait()
                continue
            group = self._claim_group()
            if not group:
                continue
            requests = [item[0] for item in group]
            assert self._pool is not None
            try:
                outcomes = await loop.run_in_executor(
                    self._pool,
                    self._execute,
                    requests,
                )
            except Exception as exc:
                _FAILED.inc(len(group))
                for _, future, _ in group:
                    if not future.cancelled():
                        future.set_exception(exc)
                continue
            now = time.monotonic()
            for (_, future, submitted), outcome in zip(group, outcomes):
                _COMPLETED.inc()
                _LATENCY_MS.observe((now - submitted) * 1e3)
                if not future.cancelled():
                    future.set_result(outcome)

    def _execute(self, requests: List[QueryRequest]) -> List[QueryOutcome]:
        """Thread-pool entry: run one coalesced group to completion."""
        return execute_group(requests, vectorize=self.vectorize)
