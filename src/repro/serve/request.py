"""Wire-level request model of the threshold-query service.

A request names one simulated testbed -- ``n`` participant nodes of
which ``x`` are positive -- and asks ``x >= threshold`` for ``runs``
Monte-Carlo trials under a chosen algorithm and collision model.  The
randomness contract matches :func:`repro.api.threshold_query_batch`
exactly: run ``r`` of a request is a deterministic function of
``(seed, r)`` alone, which is what lets the scheduler coalesce requests
from different clients into one vectorized round without changing any
answer (see :mod:`repro.serve.executor`).

Validation happens here, at the edge: :meth:`QueryRequest.from_wire`
turns an untrusted decoded-JSON mapping into a checked request or raises
:class:`RequestError`, so everything behind the front end handles only
well-formed work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.api import REGISTRY

#: Hard cap on ``runs`` per request: a single request may not monopolise
#: the scheduler (batch sizing is the scheduler's job, not the client's).
MAX_RUNS_PER_REQUEST = 10_000

#: Hard cap on the simulated population size.
MAX_POPULATION = 1_000_000

#: ``reliable=`` shortcuts the service accepts (server-side degradation
#: through :class:`repro.core.reliable.ReliableThreshold`).
RELIABLE_SHORTCUTS = ("krepeat", "chernoff")

#: Collision models the service accepts.
COLLISION_MODELS = ("1+", "2+")


class RequestError(ValueError):
    """A malformed or out-of-bounds request (400-style rejection).

    Attributes:
        code: Stable machine-readable reason, e.g. ``"bad_field"``.
    """

    def __init__(self, message: str, *, code: str = "bad_field") -> None:
        super().__init__(message)
        self.code = code


def _require_int(
    obj: Mapping[str, Any], key: str, default: Optional[int] = None
) -> int:
    """Fetch an integer field (bools are rejected: JSON ``true`` is not 1)."""
    value = obj.get(key, default)
    if value is None:
        raise RequestError(f"missing required field {key!r}", code="missing_field")
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"field {key!r} must be an integer, got {value!r}")
    return value


def _require_str(obj: Mapping[str, Any], key: str, default: str) -> str:
    """Fetch a string field with a default."""
    value = obj.get(key, default)
    if not isinstance(value, str):
        raise RequestError(f"field {key!r} must be a string, got {value!r}")
    return value


@dataclass(frozen=True)
class QueryRequest:
    """One validated threshold query (see the module docstring).

    Attributes:
        id: Client-chosen correlation id, echoed on the response.
        tenant: Rate-limiting principal (API-key stand-in).
        n: Simulated population size.
        x: True positive count of every trial's population.
        threshold: The queried threshold ``t``.
        runs: Number of Monte-Carlo trials to answer.
        algorithm: Registry name (see :data:`repro.api.REGISTRY`).
        collision_model: ``"1+"`` or ``"2+"``.
        seed: Root seed of the request's private spawn tree.
        reliable: Optional reliability shortcut (``"krepeat"`` /
            ``"chernoff"``); forces the scalar path.
        deadline_ms: Optional end-to-end latency budget in milliseconds,
            measured from admission.  ``None`` means no deadline.  A
            non-positive budget is *valid on the wire* but already
            expired: admission rejects it with a 504-style frame
            (``serve.rejected.deadline``) instead of a 400, so clients
            forwarding a nearly-exhausted budget get deadline semantics,
            not a validation error.
    """

    id: str
    tenant: str
    n: int
    x: int
    threshold: int
    runs: int = 1
    algorithm: str = "2tbins"
    collision_model: str = "1+"
    seed: int = 0
    reliable: Optional[str] = None
    deadline_ms: Optional[int] = None

    @property
    def coalesce_key(self) -> Tuple[int, int, int, str, str, Optional[str]]:
        """Everything that must match for two requests to share a batch.

        Requests agreeing on this key describe the same population
        shape, threshold, algorithm and model family; their per-run
        randomness still differs (each request owns a private
        ``seed``-rooted spawn tree), so coalescing them into one
        vectorized round changes no answer.
        """
        return (
            self.n,
            self.x,
            self.threshold,
            self.algorithm,
            self.collision_model,
            self.reliable,
        )

    @property
    def vectorizable(self) -> bool:
        """Whether this request may ride the vectorized kernel.

        Reliable sessions are scalar by design (the confirmation loop is
        adaptive), as are registry entries without batch support.
        """
        return self.reliable is None and REGISTRY[self.algorithm].vectorized

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "QueryRequest":
        """Validate one decoded-JSON mapping into a request.

        Raises:
            RequestError: On any missing, mistyped or out-of-bounds
                field; the message names the offending field and the
                ``code`` attribute gives a stable reason.
        """
        if not isinstance(obj, Mapping):
            raise RequestError(
                f"request must be a JSON object, got {type(obj).__name__}",
                code="bad_request",
            )
        rid = _require_str(obj, "id", "")
        if not rid:
            raise RequestError("missing required field 'id'", code="missing_field")
        tenant = _require_str(obj, "tenant", "anonymous")
        n = _require_int(obj, "n")
        x = _require_int(obj, "x")
        threshold = _require_int(obj, "threshold")
        runs = _require_int(obj, "runs", 1)
        seed = _require_int(obj, "seed", 0)
        algorithm = _require_str(obj, "algorithm", "2tbins").lower()
        collision_model = _require_str(obj, "collision_model", "1+")
        reliable_raw = obj.get("reliable", None)
        if reliable_raw is not None and not isinstance(reliable_raw, str):
            raise RequestError(
                f"field 'reliable' must be a string or null, got {reliable_raw!r}"
            )
        reliable = reliable_raw.lower() if reliable_raw else None
        deadline_raw = obj.get("deadline_ms", None)
        if deadline_raw is not None and (
            isinstance(deadline_raw, bool) or not isinstance(deadline_raw, int)
        ):
            raise RequestError(
                f"field 'deadline_ms' must be an integer or null, "
                f"got {deadline_raw!r}"
            )

        if not 1 <= n <= MAX_POPULATION:
            raise RequestError(f"n must be in [1, {MAX_POPULATION}], got {n}")
        if not 0 <= x <= n:
            raise RequestError(f"x must be in [0, n={n}], got {x}")
        if threshold < 0:
            raise RequestError(f"threshold must be >= 0, got {threshold}")
        if not 1 <= runs <= MAX_RUNS_PER_REQUEST:
            raise RequestError(
                f"runs must be in [1, {MAX_RUNS_PER_REQUEST}], got {runs}"
            )
        spec = REGISTRY.get(algorithm)
        if spec is None or not spec.decider or spec.needs_x:
            valid = sorted(
                key
                for key, s in REGISTRY.items()
                if s.decider and not s.needs_x
            )
            raise RequestError(
                f"unknown or unservable algorithm {algorithm!r}; valid: {valid}"
            )
        if collision_model not in COLLISION_MODELS:
            raise RequestError(
                f"collision_model must be one of {list(COLLISION_MODELS)}, "
                f"got {collision_model!r}"
            )
        if reliable is not None and reliable not in RELIABLE_SHORTCUTS:
            raise RequestError(
                f"reliable must be one of {list(RELIABLE_SHORTCUTS)} or null, "
                f"got {reliable!r}"
            )
        return cls(
            id=rid,
            tenant=tenant,
            n=n,
            x=x,
            threshold=threshold,
            runs=runs,
            algorithm=algorithm,
            collision_model=collision_model,
            seed=seed,
            reliable=reliable,
            deadline_ms=deadline_raw,
        )
