"""Executes coalesced request groups, bit-identical to solo execution.

The scheduler hands this module a *group*: one or more admitted requests
agreeing on :attr:`~repro.serve.request.QueryRequest.coalesce_key`
(population shape, threshold, algorithm, collision model, reliability).
:func:`execute_group` answers all of them at once:

* **Vectorized path** -- when the algorithm is batch-capable and no
  reliability wrapper is requested, the group's trials are concatenated
  into one :class:`~repro.group_testing.vectorized.QueryBatch` and
  executed on the PR-7 kernel in a single call.  Each request keeps its
  *own* ``seed``-rooted spawn tree (the exact stream layout of
  :func:`repro.api.threshold_query_batch`), so run ``r`` of request
  ``q`` consumes the same generators whether ``q`` rides alone, with
  nine strangers, or on the scalar path -- coalescing is invisible in
  the answers, bit for bit.
* **Scalar path** -- reliable sessions, scalar-only algorithms, and any
  batch the kernel declines (:class:`UnsupportedBatch`) fall back to a
  per-run loop identical to :func:`repro.api.threshold_query_batch`'s,
  with :func:`repro.api.make_algorithm` applying the reliability layer
  as server-side degradation.

The module is synchronous and thread-safe (no shared mutable state):
the scheduler calls it from worker threads via an executor.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.api import make_algorithm
from repro.core.base import BatchThresholdDecider, ThresholdDecider
from repro.group_testing.model import ModelSpec
from repro.group_testing.population import Population
from repro.group_testing.vectorized import (
    BatchDecision,
    QueryBatch,
    RunStreams,
    UnsupportedBatch,
)
from repro.obs import get_registry
from repro.serve.errors import QueryExecutionError
from repro.serve.request import QueryRequest

_OBS = get_registry()
_BATCHES = _OBS.counter("serve.batches")
_BATCHED_REQUESTS = _OBS.counter("serve.batched_requests")
_SCALAR_FALLBACKS = _OBS.counter("serve.scalar_fallbacks")
_BATCH_RUNS = _OBS.histogram(
    "serve.batch.runs", edges=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
)


@dataclass(frozen=True)
class QueryOutcome:
    """The service-side answer to one request.

    Attributes:
        decisions: Per-run verdicts, in run order.
        queries: Per-run charged query counts.
        exact: Whether the algorithm is exact (always-correct).
        batched: Whether this request was answered on the vectorized
            kernel (``False`` means the scalar path ran).
    """

    decisions: Tuple[bool, ...]
    queries: Tuple[int, ...]
    exact: bool
    batched: bool


class _ConcatStreams:
    """Maps a group-global run index onto the owning request's streams.

    Request boundaries are precomputed as cumulative offsets; lookup is
    a bisect plus the sub-batch's own ``streams`` call.  A class (not a
    closure) so the callable is introspectable and picklable.
    """

    def __init__(self, batches: Sequence[QueryBatch]) -> None:
        self._batches = list(batches)
        self._offsets: List[int] = []
        total = 0
        for batch in self._batches:
            self._offsets.append(total)
            total += batch.runs
        self.total = total

    def __call__(self, run: int) -> RunStreams:
        """The ``(pop, model, bins)`` triple of group-global run ``run``."""
        idx = bisect.bisect_right(self._offsets, run) - 1
        return self._batches[idx].streams(run - self._offsets[idx])


def _model_spec(request: QueryRequest) -> ModelSpec:
    """The declarative model configuration shared by both paths."""
    return ModelSpec(kind=request.collision_model)


def _spawned_batch(request: QueryRequest) -> QueryBatch:
    """The request's private batch over its own spawn-tree streams."""
    return QueryBatch.spawned(
        seed=request.seed,
        n=request.n,
        x=request.x,
        threshold=request.threshold,
        runs=request.runs,
        model=_model_spec(request),
    )


def _split(
    requests: Sequence[QueryRequest], decision: BatchDecision
) -> List[QueryOutcome]:
    """Slice a concatenated :class:`BatchDecision` back per request."""
    outcomes: List[QueryOutcome] = []
    offset = 0
    for request in requests:
        stop = offset + request.runs
        outcomes.append(
            QueryOutcome(
                decisions=tuple(
                    bool(d) for d in decision.decisions[offset:stop]
                ),
                queries=tuple(int(q) for q in decision.queries[offset:stop]),
                exact=decision.exact,
                batched=True,
            )
        )
        offset = stop
    return outcomes


def _run_scalar(request: QueryRequest) -> QueryOutcome:
    """One request on the scalar path (reliability layer included).

    Mirrors :func:`repro.api.threshold_query_batch`'s fallback loop over
    the same spawned streams, so scalar answers match vectorized ones
    bit for bit for batch-capable configurations.

    Raises:
        QueryExecutionError: Wrapping any unexpected failure, with
            :attr:`~repro.serve.errors.QueryExecutionError.request_id`
            naming this request -- a coalesced sibling must never
            inherit an anonymous error.
    """
    try:
        return _run_scalar_inner(request)
    except Exception as exc:
        raise QueryExecutionError(
            f"scalar execution of request {request.id!r} failed: {exc!r}",
            request_id=request.id,
        ) from exc


def _run_scalar_inner(request: QueryRequest) -> QueryOutcome:
    """The unwrapped scalar loop behind :func:`_run_scalar`."""
    algo = make_algorithm(request.algorithm, reliable=request.reliable)
    assert isinstance(algo, ThresholdDecider)
    batch = _spawned_batch(request)
    model_spec = batch.model
    decisions: List[bool] = []
    queries: List[int] = []
    exact = True
    for run in range(request.runs):
        pop_rng, model_rng, bins_rng = batch.streams(run)
        population = Population.from_count(request.n, request.x, pop_rng)
        model = model_spec(population, model_rng)
        result = algo.decide(model, request.threshold, bins_rng)
        decisions.append(bool(result.decision))
        queries.append(int(result.queries))
        exact = result.exact
    return QueryOutcome(
        decisions=tuple(decisions),
        queries=tuple(queries),
        exact=exact,
        batched=False,
    )


def execute_group(
    requests: Sequence[QueryRequest], *, vectorize: bool = True
) -> List[QueryOutcome]:
    """Answer every request of one coalesced group.

    Args:
        requests: A non-empty group agreeing on ``coalesce_key``.
        vectorize: Allow the vectorized kernel (tests and the benchmark
            force the scalar oracle with ``False``).

    Returns:
        One :class:`QueryOutcome` per request, in input order.

    Raises:
        ValueError: If the group is empty or mixes coalesce keys.
    """
    if not requests:
        raise ValueError("execute_group needs at least one request")
    lead = requests[0]
    for request in requests[1:]:
        if request.coalesce_key != lead.coalesce_key:
            raise ValueError(
                f"coalesce-key mismatch in group: {request.coalesce_key} "
                f"!= {lead.coalesce_key}"
            )
    total_runs = sum(request.runs for request in requests)
    _BATCHES.inc()
    _BATCH_RUNS.observe(float(total_runs))
    if vectorize and lead.vectorizable:
        algo = make_algorithm(lead.algorithm)
        if isinstance(algo, BatchThresholdDecider):
            streams = _ConcatStreams([_spawned_batch(r) for r in requests])
            combined = QueryBatch(
                n=lead.n,
                x=lead.x,
                threshold=lead.threshold,
                run_lo=0,
                run_hi=streams.total,
                model=_model_spec(lead),
                streams=streams,
            )
            try:
                decision = algo.decide_batch(combined)
            except UnsupportedBatch:
                _SCALAR_FALLBACKS.inc()
            except Exception as exc:
                # A vectorized batch fails as a unit; blame the lead
                # (the request whose claim formed the group) so the
                # error still carries a concrete request id.
                raise QueryExecutionError(
                    f"vectorized execution of a {len(requests)}-request "
                    f"group led by {lead.id!r} failed: {exc!r}",
                    request_id=lead.id,
                ) from exc
            else:
                _BATCHED_REQUESTS.inc(len(requests))
                return _split(requests, decision)
    return [_run_scalar(request) for request in requests]
