"""tcast: singlehop collaborative feedback primitives for threshold
querying in wireless sensor networks.

A from-scratch reproduction of Demirbas, Tasci, Gunes & Rudra (IPPS 2011):
the tcast threshold-querying algorithm family (2tBins, Exponential
Increase, ABNS, probabilistic ABNS, the bimodal probabilistic scheme),
the CSMA / sequential-ordering baselines, the receiver-side collision
detection primitives (pollcast, backcast), and a packet-level emulation
of the TelosB/CC2420 mote testbed -- plus a harness regenerating every
figure in the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import OnePlusModel, Population, TwoTBins

    rng = np.random.default_rng(0)
    population = Population.from_count(size=128, x=20, rng=rng)
    model = OnePlusModel(population, rng)
    result = TwoTBins().decide(model, threshold=16, rng=rng)
    print(result.summary())   # 'x >= t' in a few dozen queries
"""

from repro.api import (
    ALGORITHMS,
    make_algorithm,
    threshold_query,
    threshold_query_batch,
)
from repro.analytic import (
    BimodalSpec,
    SeparationAnalysis,
    analyze_separation,
    lower_bound_queries,
    upper_bound_queries,
)
from repro.core import (
    Abns,
    AbnsBinPolicy,
    AdaptiveSplittingCounter,
    IntervalQuery,
    ExponentialIncrease,
    FourFoldIncrease,
    OracleBins,
    PauseAndContinue,
    ProbabilisticAbns,
    ProbabilisticThreshold,
    RoundRecord,
    ThresholdAlgorithm,
    ThresholdResult,
    TwoTBins,
)
from repro.group_testing import (
    BatchDecision,
    BinObservation,
    KPlusModel,
    ObservationKind,
    OnePlusModel,
    Population,
    QueryBatch,
    TwoPlusModel,
)
from repro.mac import CsmaBaseline, CsmaConfig, SequentialOrdering
from repro.motes import Testbed, TestbedConfig

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "Abns",
    "AbnsBinPolicy",
    "AdaptiveSplittingCounter",
    "BatchDecision",
    "BimodalSpec",
    "BinObservation",
    "CsmaBaseline",
    "CsmaConfig",
    "ExponentialIncrease",
    "FourFoldIncrease",
    "IntervalQuery",
    "KPlusModel",
    "ObservationKind",
    "OnePlusModel",
    "OracleBins",
    "PauseAndContinue",
    "Population",
    "ProbabilisticAbns",
    "ProbabilisticThreshold",
    "QueryBatch",
    "RoundRecord",
    "SeparationAnalysis",
    "SequentialOrdering",
    "Testbed",
    "TestbedConfig",
    "ThresholdAlgorithm",
    "ThresholdResult",
    "TwoPlusModel",
    "TwoTBins",
    "analyze_separation",
    "make_algorithm",
    "threshold_query",
    "threshold_query_batch",
    "lower_bound_queries",
    "upper_bound_queries",
    "__version__",
]
