"""Intrusion-detection scenario generation and sweep helpers.

The paper's motivating application (Sec I): nodes spread over an area,
an intruder triggers detections at every node whose sensing disc covers
it, plus a sprinkle of false-positive detections elsewhere.  The
initiator (the first detector) runs a threshold query over its singlehop
neighbourhood to separate real events from false alarms.

:class:`IntrusionField` generates spatial deployments and converts events
into :class:`~repro.group_testing.population.Population` ground truths;
:func:`x_sweep` provides the ``x`` grids the figure harness sweeps over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.group_testing.population import Population
from repro.sim.rng import derive_seed


def x_sweep(n: int, *, points: Optional[int] = None) -> List[int]:
    """Positive-count grid for a queries-vs-``x`` sweep.

    Dense at the small-``x`` end (where the interesting buckling happens)
    and logarithmically thinning toward ``n``; always includes 0 and
    ``n``.

    Args:
        n: Population size.
        points: Approximate number of grid points (default: a dense grid
            of every integer up to 2 sqrt(n), then geometric).

    Returns:
        Sorted unique ``x`` values in ``[0, n]``.
    """
    if n < 1:
        raise ValueError(f"population must be >= 1, got {n}")
    dense_top = min(n, max(8, int(2 * np.sqrt(n))))
    grid = set(range(0, dense_top + 1))
    value = float(dense_top)
    while value < n:
        value *= 1.25
        grid.add(min(n, int(round(value))))
    grid.add(n)
    out = sorted(grid)
    if points is not None and points >= 2 and len(out) > points:
        idx = np.linspace(0, len(out) - 1, points).round().astype(int)
        out = sorted({out[i] for i in idx})
    return out


@dataclass(frozen=True)
class IntrusionScenario:
    """One intrusion event realised against a deployment.

    Attributes:
        population: The resulting ground truth (detectors are positive).
        intruder_xy: Intruder position, or ``None`` for a no-event
            (false alarms only) scenario.
        true_detections: Nodes whose sensing disc covered the intruder.
        false_detections: Nodes that mis-detected (noise).
    """

    population: Population
    intruder_xy: Optional[tuple[float, float]]
    true_detections: frozenset[int]
    false_detections: frozenset[int]

    @property
    def x(self) -> int:
        """Total positive (detecting) node count."""
        return self.population.x


class IntrusionField:
    """A random uniform deployment over a square field.

    Args:
        num_nodes: Number of deployed sensor nodes.
        field_size: Side length of the square deployment area (metres).
        sensing_range: Detection disc radius (metres).
        false_positive_rate: Per-node probability of a spurious detection
            in any scenario.
        rng: Randomness for node placement.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        field_size: float = 100.0,
        sensing_range: float = 20.0,
        false_positive_rate: float = 0.01,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if field_size <= 0 or sensing_range <= 0:
            raise ValueError("field_size and sensing_range must be > 0")
        if not 0.0 <= false_positive_rate <= 1.0:
            raise ValueError(
                f"false_positive_rate must be in [0,1], got {false_positive_rate}"
            )
        if rng is None:
            # Deterministic default placement; pass a registry stream for
            # per-experiment variation.
            rng = np.random.default_rng(derive_seed(0, "scenarios.field"))
        self._n = num_nodes
        self._field = field_size
        self._range = sensing_range
        self._fp_rate = false_positive_rate
        self._xy = rng.random((num_nodes, 2)) * field_size

    @property
    def num_nodes(self) -> int:
        """Deployed node count."""
        return self._n

    @property
    def positions(self) -> np.ndarray:
        """Node coordinates, shape ``(n, 2)`` (copy)."""
        return self._xy.copy()

    def event(
        self,
        rng: np.random.Generator,
        *,
        intruder: bool = True,
    ) -> IntrusionScenario:
        """Realise one scenario.

        Args:
            rng: Randomness for intruder placement and noise.
            intruder: Whether a real intruder is present (``False`` gives
                a false-alarm-only scenario).

        Returns:
            The scenario with ground truth attached.
        """
        true_det: set[int] = set()
        intruder_xy: Optional[tuple[float, float]] = None
        if intruder:
            pos = rng.random(2) * self._field
            intruder_xy = (float(pos[0]), float(pos[1]))
            dist = np.linalg.norm(self._xy - pos, axis=1)
            true_det = {int(i) for i in np.flatnonzero(dist <= self._range)}
        noise = rng.random(self._n) < self._fp_rate
        false_det = {int(i) for i in np.flatnonzero(noise)} - true_det
        population = Population(
            size=self._n, positives=frozenset(true_det | false_det)
        )
        return IntrusionScenario(
            population=population,
            intruder_xy=intruder_xy,
            true_detections=frozenset(true_det),
            false_detections=frozenset(false_det),
        )

    def neighbourhood(self, node: int, radio_range: float) -> List[int]:
        """Ids of nodes within ``radio_range`` of ``node`` (excl. itself).

        Used by the multihop example to pick a singlehop neighbourhood for
        the initiating detector.
        """
        if not 0 <= node < self._n:
            raise ValueError(f"node {node} outside [0, {self._n})")
        if radio_range <= 0:
            raise ValueError(f"radio_range must be > 0, got {radio_range}")
        dist = np.linalg.norm(self._xy - self._xy[node], axis=1)
        out = [int(i) for i in np.flatnonzero(dist <= radio_range)]
        return [i for i in out if i != node]
