"""Bimodal positive-count workloads (Sec VI / Figs 9-11).

Draws the number of positive nodes ``x`` from the two-component normal
mixture of the paper's system model: a quiet mode (false detections,
``mu1 ~ 0``) and an activity mode (true detections, ``mu2 >> mu1``).
Each draw carries its ground-truth component label so accuracy -- the
percentage of correct quiet/activity classifications -- can be scored
exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytic.bimodal import BimodalSpec
from repro.group_testing.population import Population


@dataclass(frozen=True)
class BimodalDraw:
    """One realisation of the bimodal workload.

    Attributes:
        x: The drawn positive count (clipped to ``[0, n]`` and rounded).
        activity: Ground truth -- ``True`` if the draw came from the
            activity mode (``mu2``), ``False`` for the quiet mode.
    """

    x: int
    activity: bool


class BimodalWorkload:
    """Sampler for a :class:`repro.analytic.bimodal.BimodalSpec`.

    Args:
        spec: The mixture parameters.

    Example:
        >>> import numpy as np
        >>> spec = BimodalSpec.symmetric(n=128, d=32, sigma=8)
        >>> wl = BimodalWorkload(spec)
        >>> draw = wl.draw(np.random.default_rng(0))
        >>> 0 <= draw.x <= 128
        True
    """

    def __init__(self, spec: BimodalSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> BimodalSpec:
        """The mixture parameters."""
        return self._spec

    def draw(self, rng: np.random.Generator) -> BimodalDraw:
        """Draw one ``(x, activity)`` realisation."""
        s = self._spec
        quiet = bool(rng.random() < s.weight1)
        mu, sigma = (s.mu1, s.sigma1) if quiet else (s.mu2, s.sigma2)
        raw = rng.normal(mu, sigma) if sigma > 0 else mu
        x = int(np.clip(round(raw), 0, s.n))
        return BimodalDraw(x=x, activity=not quiet)

    def draw_population(
        self, rng: np.random.Generator
    ) -> tuple[Population, BimodalDraw]:
        """Draw a realisation and materialise it as a :class:`Population`."""
        d = self.draw(rng)
        return Population.from_count(self._spec.n, d.x, rng), d

    def sample_counts(self, runs: int, rng: np.random.Generator) -> np.ndarray:
        """Vectorised draw of ``runs`` positive counts (for Fig 11
        histograms); component labels are not tracked here."""
        if runs < 0:
            raise ValueError(f"runs must be >= 0, got {runs}")
        s = self._spec
        quiet = rng.random(runs) < s.weight1
        mus = np.where(quiet, s.mu1, s.mu2)
        sigmas = np.where(quiet, s.sigma1, s.sigma2)
        raw = rng.normal(mus, np.maximum(sigmas, 1e-12))
        return np.clip(np.rint(raw), 0, s.n).astype(np.int64)
