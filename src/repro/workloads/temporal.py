"""Temporal deployment traces: the bimodal model unrolled over time.

Sec VI motivates the probabilistic scheme with deployment *history*: most
query instants are quiet (a few false detections), and occasionally a
real event drives many detections.  This module materialises that history
as a timeline: real events arrive as a Poisson process, each lasting a
random duration, and every periodic query instant samples a positive
count from the appropriate mode of a :class:`~repro.analytic.bimodal.BimodalSpec`.

The trace gives stream-processing tests and examples temporally coherent
input (consecutive queries during one event see correlated activity),
which the memoryless per-draw :class:`~repro.workloads.bimodal.BimodalWorkload`
cannot provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.analytic.bimodal import BimodalSpec
from repro.group_testing.population import Population


@dataclass(frozen=True)
class TraceSample:
    """One query instant of a deployment trace.

    Attributes:
        time_s: Query time (seconds from trace start).
        population: The realised ground truth at this instant.
        activity: Whether a real event was in progress (the label the
            probabilistic scheme tries to recover).
    """

    time_s: float
    population: Population
    activity: bool

    @property
    def x(self) -> int:
        """Positive count at this instant."""
        return self.population.x


class DeploymentTrace:
    """A day-in-the-life event timeline for one deployment.

    Args:
        spec: The bimodal mixture governing per-instant positive counts
            (quiet mode outside events, activity mode during them; the
            mixture weight is ignored -- the duty cycle comes from the
            event process instead).
        horizon_s: Trace length in seconds.
        query_interval_s: Spacing of query instants.
        event_rate_per_hour: Poisson arrival rate of real events.
        event_duration_s: Mean event duration (exponential).
    """

    def __init__(
        self,
        spec: BimodalSpec,
        *,
        horizon_s: float = 86_400.0,
        query_interval_s: float = 60.0,
        event_rate_per_hour: float = 0.5,
        event_duration_s: float = 120.0,
    ) -> None:
        if horizon_s <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon_s}")
        if query_interval_s <= 0:
            raise ValueError(
                f"query interval must be > 0, got {query_interval_s}"
            )
        if event_rate_per_hour < 0:
            raise ValueError(
                f"event rate must be >= 0, got {event_rate_per_hour}"
            )
        if event_duration_s <= 0:
            raise ValueError(
                f"event duration must be > 0, got {event_duration_s}"
            )
        self._spec = spec
        self._horizon = horizon_s
        self._interval = query_interval_s
        self._rate = event_rate_per_hour
        self._duration = event_duration_s

    @property
    def spec(self) -> BimodalSpec:
        """The governing mixture parameters."""
        return self._spec

    def event_windows(
        self, rng: np.random.Generator
    ) -> List[tuple[float, float]]:
        """Draw the real-event intervals for one trace realisation."""
        windows: List[tuple[float, float]] = []
        t = 0.0
        rate_per_s = self._rate / 3600.0
        if rate_per_s <= 0:
            return windows
        while True:
            t += float(rng.exponential(1.0 / rate_per_s))
            if t >= self._horizon:
                return windows
            windows.append(
                (t, t + float(rng.exponential(self._duration)))
            )

    def samples(self, rng: np.random.Generator) -> Iterator[TraceSample]:
        """Generate the trace's query-instant samples in time order."""
        windows = self.event_windows(rng)
        s = self._spec
        t = 0.0
        while t < self._horizon:
            active = any(lo <= t < hi for lo, hi in windows)
            mu = s.mu2 if active else s.mu1
            sigma = s.sigma2 if active else s.sigma1
            raw = rng.normal(mu, sigma) if sigma > 0 else mu
            x = int(np.clip(round(raw), 0, s.n))
            yield TraceSample(
                time_s=t,
                population=Population.from_count(s.n, x, rng),
                activity=active,
            )
            t += self._interval

    def generate(self, rng: np.random.Generator) -> List[TraceSample]:
        """Materialise the whole trace as a list."""
        return list(self.samples(rng))
