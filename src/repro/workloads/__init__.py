"""Workload generators.

* :mod:`repro.workloads.bimodal` -- bimodal positive-count draws for the
  Sec VI probabilistic model (Figs 9-11).
* :mod:`repro.workloads.scenarios` -- intrusion-detection scenario
  generation (sensing-disc detections plus false-positive noise) and the
  parameter sweeps the figure harness iterates over.
* :mod:`repro.workloads.temporal` -- day-long deployment traces (Poisson
  event arrivals over the bimodal model) for stream-processing tests.
"""

from repro.workloads.bimodal import BimodalDraw, BimodalWorkload
from repro.workloads.temporal import DeploymentTrace, TraceSample
from repro.workloads.scenarios import (
    IntrusionScenario,
    IntrusionField,
    x_sweep,
)

__all__ = [
    "BimodalDraw",
    "BimodalWorkload",
    "DeploymentTrace",
    "TraceSample",
    "IntrusionField",
    "IntrusionScenario",
    "x_sweep",
]
