"""Dependency-free terminal visualisation helpers."""

from repro.viz.ascii import ascii_chart, histogram, render_table

__all__ = ["ascii_chart", "histogram", "render_table"]
