"""ASCII charts and tables for experiment reports.

The benchmark harness runs in terminals and CI, so figures are rendered
as monospace line charts and aligned tables rather than image files.
Rendering is intentionally simple: nearest-cell rasterisation of each
series onto a character grid, one glyph per series.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

#: Glyphs assigned to series in order.
_GLYPHS = "ox+*#@%&"


def ascii_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 18,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render one or more series as an ASCII line chart.

    Args:
        xs: Shared x grid.
        series: Mapping of label -> y values (same length as ``xs``).
        width: Plot-area width in characters.
        height: Plot-area height in rows.
        title: Optional chart title.
        xlabel: X-axis label.
        ylabel: Y-axis label (printed in the legend line).

    Returns:
        The rendered multi-line string.

    Raises:
        ValueError: On empty input or mismatched lengths.
    """
    if len(xs) == 0 or not series:
        raise ValueError("need at least one point and one series")
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {label!r} has {len(ys)} points, expected {len(xs)}"
            )
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4")

    x_arr = np.asarray(xs, dtype=np.float64)
    all_y = np.concatenate(
        [np.asarray(ys, dtype=np.float64) for ys in series.values()]
    )
    finite = all_y[np.isfinite(all_y)]
    if finite.size == 0:
        raise ValueError("no finite y values to plot")
    y_min, y_max = float(finite.min()), float(finite.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x_arr.min()), float(x_arr.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, ys), glyph in zip(series.items(), _GLYPHS):
        y_arr = np.asarray(ys, dtype=np.float64)
        for xv, yv in zip(x_arr, y_arr):
            if not np.isfinite(yv):
                continue
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{glyph}={label}" for (label, _), glyph in zip(series.items(), _GLYPHS)
    )
    lines.append(f"{ylabel}  [{legend}]")
    for i, row_chars in enumerate(grid):
        y_val = y_max - i * (y_max - y_min) / (height - 1)
        lines.append(f"{y_val:9.1f} |{''.join(row_chars)}")
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f" {x_min:<12.4g}{xlabel:^{max(1, width - 26)}}{x_max:>12.4g}"
    )
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    *,
    bins: int = 32,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a horizontal-bar histogram of ``values``.

    Args:
        values: Samples.
        bins: Number of equal-width bins.
        width: Maximum bar width in characters.
        title: Optional title.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot histogram an empty sample")
    counts, edges = np.histogram(arr, bins=bins)
    peak = max(1, counts.max())
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{lo:8.1f},{hi:8.1f}) {count:6d} {bar}")
    return "\n".join(lines)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: Column headers.
        rows: Row values; floats are formatted with ``float_fmt``.
        float_fmt: Format applied to float cells.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
