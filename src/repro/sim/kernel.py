"""The discrete-event simulation kernel.

A minimal, deterministic event-heap simulator in the classic style: a
priority queue of timestamped callbacks and a clock that jumps from event
to event.  The packet-level radio/mote substrate drives everything through
this kernel, which keeps the whole emulation single-threaded and exactly
reproducible for a given seed.

Design notes (per the "make it work, make it reliably work" workflow of the
scientific-Python optimisation guide): the kernel is intentionally simple
and fully covered by unit tests; the hot loops of the *abstract* simulations
(the paper's Figures 1-3 and 5-7) bypass the kernel entirely and are
vectorised separately.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.sim.events import Event, EventHandle


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Events scheduled at the same timestamp fire in scheduling (FIFO) order.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._running: bool = False
        self._events_fired: int = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now.

        Args:
            delay: Non-negative offset from the current simulated time.
            callback: Zero-argument callable.
            label: Optional tag for tracing/debugging.

        Returns:
            An :class:`EventHandle` that can cancel the event.

        Raises:
            SimulationError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time.

        Raises:
            SimulationError: If ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time=time, seq=self._seq, callback=callback, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns:
            ``True`` if an event was executed, ``False`` if the heap was
            empty (clock unchanged).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until exhaustion, a time horizon, or an event budget.

        Args:
            until: If given, stop before executing any event scheduled
                strictly after this time; the clock is advanced to ``until``.
            max_events: If given, execute at most this many events (a guard
                against runaway simulations).

        Raises:
            SimulationError: If re-entered while already running.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    return
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    self._now = max(self._now, until)
                    return
                heapq.heappop(self._heap)
                self._now = event.time
                self._events_fired += 1
                executed += 1
                event.callback()
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def run_until_idle(self, *, max_events: int = 10_000_000) -> None:
        """Run until no events remain, with a hard safety budget.

        Raises:
            SimulationError: If the budget is exhausted before the heap
                drains, which almost always indicates an event loop.
        """
        self.run(max_events=max_events)
        if self._heap and not all(e.cancelled for e in self._heap):
            raise SimulationError(
                f"event budget of {max_events} exhausted with "
                f"{self.pending} events pending"
            )

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero."""
        self._heap.clear()
        self._now = 0.0
        self._seq = 0
        self._events_fired = 0
