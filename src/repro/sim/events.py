"""Event records for the discrete-event kernel.

Events are lightweight records placed on the simulator's heap.  Each event
carries the simulated time at which it fires, a monotonically increasing
sequence number (used to break time ties deterministically, FIFO within a
timestamp), and the zero-argument callback to invoke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is ``(time, seq)`` so that events at the same simulated time
    fire in the order they were scheduled, which keeps runs deterministic.

    Attributes:
        time: Absolute simulated time (microseconds by convention in the
            radio substrate, but the kernel is unit-agnostic).
        seq: Tie-breaking sequence number assigned by the simulator.
        callback: Zero-argument callable executed when the event fires.
        cancelled: Set by :meth:`EventHandle.cancel`; cancelled events are
            skipped (lazy deletion) when popped from the heap.
        label: Optional human-readable tag used in traces and error
            messages.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Cancellation handle returned by :meth:`Simulator.schedule`.

    The handle keeps a reference to the underlying :class:`Event`; calling
    :meth:`cancel` marks it so the kernel discards it instead of firing it.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulated time at which the event would fire."""
        return self._event.time

    @property
    def label(self) -> str:
        """The label given at scheduling time (may be empty)."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Safe to call multiple times and after the event has fired (in which
        case it has no effect).
        """
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time!r}, label={self.label!r}, {state})"
