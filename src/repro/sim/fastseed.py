"""Batch reconstruction of ``PCG64(SeedSequence(seed))`` states.

The vectorized kernel (:mod:`repro.group_testing.vectorized`) must hand
every Monte-Carlo run the *exact* generator the scalar path builds with
``np.random.default_rng(derive_seed(...))``.  Constructing thousands of
``SeedSequence``/``PCG64`` objects per cell costs ~13 microseconds each
and dominates the kernel's budget, so this module reproduces the two
deterministic steps of that construction as array math over all seeds at
once:

* ``SeedSequence(seed).generate_state(4, uint64)`` -- O'Neill's entropy
  pool mixing plus the output hash, all 32-bit multiply/xor/shift
  operations whose hash-constant schedule is data-independent, hence
  trivially vectorizable across seeds; and
* PCG64's ``srandom`` seeding -- two 128-bit multiply-adds per seed.

The reconstructed ``(state, inc)`` pairs are loaded into pooled
:class:`~numpy.random.Generator` objects via the documented
``BitGenerator.state`` property, so every downstream draw is made by
numpy's own PCG64, not a reimplementation.

Because the mixing constants are numpy implementation details (stable
since numpy 1.17, but not a documented API), :func:`available` replays a
fixed probe set against real ``SeedSequence``/``PCG64`` objects once per
process and callers must fall back to ordinary construction when it
returns ``False``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: SeedSequence pool/mixing constants (numpy ``_bit_generator.pyx``).
_POOL_SIZE = 4
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)
_U32 = 0xFFFFFFFF

#: PCG 128-bit LCG constants (``pcg64.h``).
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK128 = (1 << 128) - 1

_verified: bool | None = None


def _generate_state8(seeds: np.ndarray) -> np.ndarray:
    """``SeedSequence(seed).generate_state(8, uint32)`` for every seed.

    ``seeds`` must be non-negative and ``< 2**64``.  Seeds below ``2**32``
    coerce to a single entropy word; hashing the absent second word is
    identical to hashing an explicit zero, so one fixed-shape pass covers
    both layouts.
    """
    lo = (seeds & np.uint64(_U32)).astype(np.uint32)
    hi = (seeds >> np.uint64(32)).astype(np.uint32)
    zero = np.zeros(seeds.size, dtype=np.uint32)
    entropy = (lo, hi, zero, zero)

    # hash_const advances once per hashmix call regardless of the data,
    # so it stays a (python-int) scalar threaded through the schedule.
    hash_const = _INIT_A

    def hashmix(value):
        nonlocal hash_const
        value = value ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_A) & _U32
        value = value * np.uint32(hash_const)
        return value ^ (value >> _XSHIFT)

    def mix(x, y):
        result = x * _MIX_MULT_L - y * _MIX_MULT_R
        return result ^ (result >> _XSHIFT)

    pool = [hashmix(entropy[i]) for i in range(_POOL_SIZE)]
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))

    out = np.empty((seeds.size, 2 * _POOL_SIZE), dtype=np.uint32)
    hash_const = _INIT_B
    for i_dst in range(2 * _POOL_SIZE):
        data = pool[i_dst % _POOL_SIZE] ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_B) & _U32
        data = data * np.uint32(hash_const)
        out[:, i_dst] = data ^ (data >> _XSHIFT)
    return out


def _srandom_batch(
    words: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """PCG's ``srandom`` over ``generate_state(8, uint32)`` word matrices.

    Returns ``(state_hi, state_lo, inc_hi, inc_lo)`` uint64 arrays -- the
    two 64-bit halves of each seed's 128-bit LCG state and increment.
    The 128-bit arithmetic (``state = (inc + initstate) * MULT + inc``)
    runs column-wise on 32-bit limbs held in uint64 accumulators, so no
    limb product or column sum can overflow.
    """
    w = words.astype(np.uint64)
    m32 = np.uint64(_U32)
    s32 = np.uint64(32)
    # Little-endian 32-bit limbs.  generate_state word pairs are
    # little-endian uint64s: (w0, w1) -> first output uint64, etc.; the
    # first two uint64s form initstate (high word first), the last two
    # the stream selector.
    init = (w[:, 2], w[:, 3], w[:, 0], w[:, 1])  # initstate limbs 0..3
    seq = (w[:, 6], w[:, 7], w[:, 4], w[:, 5])  # initseq limbs 0..3
    # inc = (initseq << 1) | 1
    inc = [np.uint64(0)] * 4
    inc[0] = ((seq[0] << np.uint64(1)) & m32) | np.uint64(1)
    for i in range(1, 4):
        inc[i] = ((seq[i] << np.uint64(1)) | (seq[i - 1] >> np.uint64(31))) & m32
    # t = inc + initstate (mod 2**128)
    t = []
    carry = np.uint64(0)
    for i in range(4):
        acc = inc[i] + init[i] + carry
        t.append(acc & m32)
        carry = acc >> s32
    # state = t * MULT + inc (mod 2**128), schoolbook on 32-bit limbs.
    mult = [np.uint64((_PCG_MULT >> (32 * i)) & _U32) for i in range(4)]
    limbs = []
    carry = np.uint64(0)
    hi_prev: list = [np.uint64(0)] * 4
    for k in range(4):
        acc = carry
        for i in range(k + 1):
            p = t[i] * mult[k - i]
            acc = acc + (p & m32)
        for h in hi_prev[: k + 1]:
            acc = acc + h
        hi_prev = [
            (t[i] * mult[k - i]) >> s32 for i in range(k + 1)
        ]
        acc = acc + inc[k]
        limbs.append(acc & m32)
        carry = acc >> s32
    state_lo = limbs[0] | (limbs[1] << s32)
    state_hi = limbs[2] | (limbs[3] << s32)
    inc_lo = inc[0] | (inc[1] << s32)
    inc_hi = inc[2] | (inc[3] << s32)
    return state_hi, state_lo, inc_hi, inc_lo


def pcg64_states(seeds: Sequence[int]) -> List[Tuple[int, int]]:
    """The ``(state, inc)`` pair of ``PCG64(SeedSequence(s))`` per seed.

    Bit-exact by construction (and guarded by :func:`available`): the
    first two ``generate_state`` uint64 words seed the LCG state, the
    last two its stream, through PCG's two-step ``srandom`` advance.
    """
    arr = np.asarray(seeds, dtype=np.uint64)
    state_hi, state_lo, inc_hi, inc_lo = _srandom_batch(_generate_state8(arr))
    # Widening to python ints through object arrays beats a per-row
    # shift/or comprehension ~4x.
    states = (state_hi.astype(object) << 64) | state_lo.astype(object)
    incs = (inc_hi.astype(object) << 64) | inc_lo.astype(object)
    return list(zip(states.tolist(), incs.tolist()))


def pcg64_raw(
    seeds: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`pcg64_states`, but as uint64 half arrays.

    Returns ``(state_hi, state_lo, inc_hi, inc_lo)`` -- the form the
    bulk output emulation (:func:`choice_bulk`) consumes directly,
    skipping the python-int widening of :func:`pcg64_states`.
    """
    arr = np.asarray(seeds, dtype=np.uint64)
    return _srandom_batch(_generate_state8(arr))


def pairs_from_raw(
    raw: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
) -> List[Tuple[int, int]]:
    """``(state, inc)`` python-int pairs from :func:`pcg64_raw` output."""
    state_hi, state_lo, inc_hi, inc_lo = raw
    states = (state_hi.astype(object) << 64) | state_lo.astype(object)
    incs = (inc_hi.astype(object) << 64) | inc_lo.astype(object)
    return list(zip(states.tolist(), incs.tolist()))


#: LCG jump tables: ``_JUMP_A[k] = MULT**k mod 2**128`` and
#: ``state_k = _JUMP_A[k] * state_0 + _JUMP_B[k] * inc`` -- so a whole
#: block of PCG64 states (hence outputs) is one broadcasted multiply-add
#: instead of ``k`` sequential steps.
_JUMP_A: List[int] = [1]
_JUMP_B: List[int] = [0]
_jump_limb_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None


def _jump_limbs(count: int) -> Tuple[np.ndarray, np.ndarray]:
    """32-bit limb matrices of the jump constants for steps ``0..count``."""
    global _jump_limb_cache
    if _jump_limb_cache is None or _jump_limb_cache[0].shape[0] <= count:
        target = max(count + 1, 2 * len(_JUMP_A), 64)
        while len(_JUMP_A) < target:
            _JUMP_A.append((_JUMP_A[-1] * _PCG_MULT) & _MASK128)
            _JUMP_B.append((_JUMP_B[-1] * _PCG_MULT + 1) & _MASK128)
        size = len(_JUMP_A)
        a = np.empty((size, 4), dtype=np.uint64)
        b = np.empty((size, 4), dtype=np.uint64)
        for i in range(size):
            av, bv = _JUMP_A[i], _JUMP_B[i]
            for c in range(4):
                a[i, c] = (av >> (32 * c)) & _U32
                b[i, c] = (bv >> (32 * c)) & _U32
        _jump_limb_cache = (a, b)
    return _jump_limb_cache


def _half_limbs(hi: np.ndarray, lo: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Little-endian 32-bit limbs of 128-bit values given as uint64 halves."""
    m32 = np.uint64(_U32)
    s32 = np.uint64(32)
    return (lo & m32, lo >> s32, hi & m32, hi >> s32)


def _lcg_jump(
    s: Sequence[np.ndarray],
    inc: Sequence[np.ndarray],
    a: Sequence[np.ndarray],
    b: Sequence[np.ndarray],
) -> List[np.ndarray]:
    """``(a * s + b * inc) mod 2**128`` limbwise -- the LCG jump formula.

    All four operands are little-endian 32-bit limb quadruples (uint64
    arrays with mutually broadcastable shapes); with ``a = MULT**k`` and
    ``b = sum(MULT**j for j < k)`` the result is the LCG state ``k``
    steps ahead of ``s``.  Same 32-bit schoolbook with carry chains as
    :func:`_srandom_batch`, generalised to array coefficients.
    """
    m32 = np.uint64(_U32)
    s32 = np.uint64(32)
    limbs: List[np.ndarray] = []
    carry: object = np.uint64(0)
    hi_prev: List[np.ndarray] = []
    for c in range(4):
        acc = carry
        his: List[np.ndarray] = []
        for i in range(c + 1):
            p = a[i] * s[c - i]
            acc = acc + (p & m32)
            q = b[i] * inc[c - i]
            acc = acc + (q & m32)
            if c < 3:
                his.append(p >> s32)
                his.append(q >> s32)
        for h in hi_prev:
            acc = acc + h
        hi_prev = his
        limbs.append(acc & m32)
        carry = acc >> s32
    return limbs


def _pulls_from(
    s: Sequence[np.ndarray], inc: Sequence[np.ndarray], count: int
) -> np.ndarray:
    """The next ``count`` outputs after limb state ``s``, as 32-bit pulls.

    Returns ``(2 * count, rows)`` uint64 where rows ``2k`` / ``2k + 1``
    hold the low/high halves of output ``k`` -- the order PCG64's
    buffered ``next_uint32`` hands them out.  Outputs are XSL-RR over
    the jumped LCG states (PCG64 steps first, then outputs the new
    state).
    """
    m32 = np.uint64(_U32)
    s32 = np.uint64(32)
    ak, bk = _jump_limbs(count)
    a = tuple(ak[1:count + 1, i][:, None] for i in range(4))
    b = tuple(bk[1:count + 1, i][:, None] for i in range(4))
    limbs = _lcg_jump(s, inc, a, b)
    hi = (limbs[3] << s32) | limbs[2]
    lo = (limbs[1] << s32) | limbs[0]
    mixed = hi ^ lo
    rot = hi >> np.uint64(58)
    out = (mixed >> rot) | (mixed << ((np.uint64(64) - rot) & np.uint64(63)))
    pulls = np.empty((2 * count, out.shape[1]), dtype=np.uint64)
    pulls[0::2] = out & m32
    pulls[1::2] = out >> s32
    return pulls


def _pull_buffer(
    raw: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray], count: int
) -> np.ndarray:
    """Each generator's first ``count`` outputs, split into 32-bit pulls."""
    state_hi, state_lo, inc_hi, inc_lo = raw
    return _pulls_from(
        _half_limbs(state_hi, state_lo), _half_limbs(inc_hi, inc_lo), count
    )


class _PullsExhausted(Exception):
    """A rejection streak outran the precomputed pull buffer."""


def choice_bulk(
    raw: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    n: int,
    x: int,
) -> Optional[np.ndarray]:
    """``Generator.choice(n, size=x, replace=False)`` for every state.

    Reproduces numpy's algorithm -- Floyd's sampling followed by a
    Fisher-Yates shuffle of the result, every bound drawn with 32-bit
    Lemire rejection over PCG64's buffered ``next_uint32`` stream
    (verified by :func:`choice_available`) -- in lockstep across rows.
    Returns the ``(rows, x)`` index matrix, or ``None`` when this
    ``(n, x)`` is out of scope or an (astronomically rare) rejection
    streak outruns the pull buffer; callers then draw per run.

    Only the *result* is reproduced: the leftover generator state is
    not, so this suits streams consumed by nothing else.
    """
    if x < 1 or x > n or n >= (1 << 31):
        return None
    rows = int(raw[0].size)
    count = x + 4
    pulls = _pull_buffer(raw, count).ravel()
    limit = 2 * count
    rowix = np.arange(rows, dtype=np.int64)
    ptr = np.zeros(rows, dtype=np.int64)
    one = np.int64(1)
    s32 = np.uint64(32)
    m32 = np.uint64(_U32)
    rejected = False

    def draw(rng: int) -> np.ndarray:
        nonlocal rejected
        rng_excl = rng + 1
        mult = np.uint64(rng_excl)
        thr = ((1 << 32) - rng_excl) % rng_excl
        if rejected and int(ptr.max()) >= limit:
            raise _PullsExhausted
        prod = pulls.take(ptr * rows + rowix) * mult
        np.add(ptr, one, out=ptr)
        if thr:
            bad = (prod & m32) < np.uint64(thr)
            while bad.any():
                rejected = True
                rb = np.flatnonzero(bad)
                if int(ptr[rb].max()) >= limit:
                    raise _PullsExhausted
                prod[rb] = pulls[ptr[rb] * rows + rowix[rb]] * mult
                ptr[rb] += 1
                bad[rb] = (prod[rb] & m32) < np.uint64(thr)
        return (prod >> s32).astype(np.int64)

    taken = np.zeros(rows * n, dtype=bool)
    row_off_n = rowix * n
    chosen = np.empty((rows, x), dtype=np.int64)
    try:
        for j in range(n - x, n):
            if j == 0:
                val = np.zeros(rows, dtype=np.int64)
            else:
                val = draw(j)
            dup = taken[val + row_off_n]
            if dup.any():
                val = np.where(dup, j, val)
            taken[val + row_off_n] = True
            chosen[:, j - (n - x)] = val
        flat = chosen.ravel()
        row_off_x = rowix * x
        for i in range(x - 1, 0, -1):
            jv = draw(i) + row_off_x
            at_i = row_off_x + i
            cur_i = flat[at_i]
            cur_j = flat[jv]
            flat[jv] = cur_i
            flat[at_i] = cur_j
    except _PullsExhausted:
        return None
    return chosen


_choice_verified: Optional[bool] = None


def choice_available() -> bool:
    """Whether :func:`choice_bulk` matches this numpy, checked empirically.

    Replays Floyd + shuffle + Lemire probes (including the ``x == n``
    full-permutation case and the one-element draw) against real
    ``Generator.choice`` calls.  Cached per process.
    """
    global _choice_verified
    if _choice_verified is None:
        try:
            if not available():
                _choice_verified = False
            else:
                seeds = [0, 1, 7, 2011, 123456789, (1 << 63) - 1]
                raw = pcg64_raw(seeds)
                ok = True
                for n, x in [(128, 10), (128, 128), (16, 16), (7, 3), (5, 1), (1, 1), (200, 199)]:
                    got = choice_bulk(raw, n, x)
                    if got is None:
                        ok = False
                        break
                    for i, seed in enumerate(seeds):
                        gen = np.random.Generator(
                            np.random.PCG64(np.random.SeedSequence(seed))
                        )
                        want = gen.choice(n, size=x, replace=False)
                        if not np.array_equal(got[i], want):
                            ok = False
                            break
                    if not ok:
                        break
                _choice_verified = ok
        except Exception:
            _choice_verified = False
    return _choice_verified


def available() -> bool:
    """Whether the reconstruction matches this numpy, checked empirically.

    Replays a probe set spanning one- and two-word entropy against real
    ``SeedSequence``/``PCG64`` objects.  Cached per process; ``False``
    (a numpy whose mixing schedule changed) means callers must construct
    generators the ordinary way.
    """
    global _verified
    if _verified is None:
        probe = [0, 1, 7, 2011, 2**31, 2**32 - 1, 2**32, 3 << 40, (1 << 63) - 1]
        try:
            want = []
            for s in probe:
                st = np.random.PCG64(np.random.SeedSequence(s)).state["state"]
                want.append((st["state"], st["inc"]))
            _verified = pcg64_states(probe) == want
        except Exception:
            _verified = False
    return _verified


class GeneratorPool:
    """Reusable ``(PCG64, Generator)`` pairs for state-loaded streams.

    Generator construction costs dwarf a ``BitGenerator.state``
    assignment, so the pool builds each slot once and thereafter only
    swaps states in.  Loading a slot repositions -- it does not copy --
    so a slot must not be reloaded while a previous borrower still draws
    from it.
    """

    def __init__(self) -> None:
        self._bits: List[np.random.PCG64] = []
        self._gens: List[np.random.Generator] = []
        self._dicts: List[dict] = []

    def reserve(self, count: int) -> None:
        """Grow the pool to at least ``count`` slots."""
        while len(self._gens) < count:
            bit = np.random.PCG64(0)
            self._bits.append(bit)
            self._gens.append(np.random.Generator(bit))
            # The state setter consumes the dict immediately, so each
            # slot reuses one mutable template instead of building two
            # fresh dicts per load.
            self._dicts.append({
                "bit_generator": "PCG64",
                "state": {"state": 0, "inc": 0},
                "has_uint32": 0,
                "uinteger": 0,
            })

    def load(self, slot: int, state: int, inc: int) -> np.random.Generator:
        """Position ``slot`` at ``(state, inc)`` and return its generator."""
        template = self._dicts[slot]
        inner = template["state"]
        inner["state"] = state
        inner["inc"] = inc
        self._bits[slot].state = template
        return self._gens[slot]

    def loaded(
        self, states: Sequence[Tuple[int, int]], base: int = 0
    ) -> Iterator[np.random.Generator]:
        """Generators for ``states``, loaded into consecutive slots."""
        self.reserve(base + len(states))
        for i, (state, inc) in enumerate(states):
            yield self.load(base + i, state, inc)
