"""Deterministic named random-number streams.

Every stochastic component of the emulation (channel capture draws, radio
irregularity, backoff choices, workload generation, bin assignment) pulls
randomness from its *own* named stream derived from a single root seed.
This keeps experiments reproducible and -- crucially for variance-reduced
comparisons -- lets two algorithms face the *same* workload realisation
while still making independent internal random choices.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a substream seed from a root seed and a stream name.

    Uses SHA-256 over ``"{root_seed}/{name}"`` so that streams are
    statistically independent, stable across Python versions (unlike
    ``hash()``), and insensitive to creation order.

    Args:
        root_seed: The experiment's root seed.
        name: The stream name, e.g. ``"channel.capture"``.

    Returns:
        A 63-bit non-negative integer seed.
    """
    digest = hashlib.sha256(f"{root_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RngRegistry:
    """A registry of named :class:`numpy.random.Generator` streams.

    Streams are created lazily on first access and cached, so repeated
    lookups of the same name return the same generator object (and hence a
    single advancing stream).

    Example:
        >>> reg = RngRegistry(seed=7)
        >>> a = reg.stream("workload")
        >>> b = reg.stream("workload")
        >>> a is b
        True
        >>> reg2 = RngRegistry(seed=7)
        >>> float(a.random()) == float(reg2.stream("workload").random())
        True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose streams are independent of ours.

        Useful for per-run isolation inside sweeps: ``registry.fork(f"run{i}")``
        gives run ``i`` its own family of streams.
        """
        return RngRegistry(derive_seed(self._seed, f"fork/{name}"))

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)
