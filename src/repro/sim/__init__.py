"""Discrete-event simulation substrate.

This package provides the generic machinery that the packet-level mote
emulation is built on:

* :mod:`repro.sim.kernel` -- the event heap and simulated clock.
* :mod:`repro.sim.events` -- event records and handles.
* :mod:`repro.sim.trace` -- structured trace recording.
* :mod:`repro.sim.rng` -- deterministic, named random-number streams.

The abstract (counting) query models in :mod:`repro.group_testing` do not
need a clock and therefore do not depend on this package; only the
packet-level substrate (:mod:`repro.radio`, :mod:`repro.motes`) does.
"""

from repro.sim.events import Event, EventHandle
from repro.sim.kernel import Simulator, SimulationError
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "EventHandle",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "TraceRecord",
    "Tracer",
    "derive_seed",
]
