"""Structured trace recording for simulations.

A :class:`Tracer` collects timestamped, categorised records.  The mote
emulation emits one record per interesting radio/MAC event (frame start,
frame end, CCA sample, HACK detection, query verdict, ...) so tests can
assert on the *sequence* of events, not just the final answer.

Tracing is off by default in the hot experiment paths; the tracer is
designed so a disabled tracer costs one attribute check per emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes:
        time: Simulated time of the event.
        category: Dotted event category, e.g. ``"radio.tx.start"``.
        source: Identifier of the emitting component (mote id, "channel"...).
        detail: Arbitrary key/value payload.
    """

    time: float
    category: str
    source: str
    detail: Mapping[str, Any] = field(default_factory=dict)

    def matches(self, category_prefix: str) -> bool:
        """Whether this record's category starts with ``category_prefix``."""
        return self.category.startswith(category_prefix)


class Tracer:
    """Collects :class:`TraceRecord` entries.

    Args:
        enabled: When ``False`` (the default for large sweeps),
            :meth:`emit` is a no-op.
        clock: Optional callable returning the current simulated time; when
            omitted, callers must pass explicit times to :meth:`emit`.
        name: Identifier used in error messages (e.g. the owning
            component), so a misconfigured tracer is easy to locate.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
        name: str = "tracer",
    ) -> None:
        self.enabled = enabled
        self.name = name
        self._clock = clock
        self._records: list[TraceRecord] = []

    def emit(
        self,
        category: str,
        source: str,
        *,
        time: Optional[float] = None,
        **detail: Any,
    ) -> None:
        """Record an event (no-op when disabled).

        Args:
            category: Dotted event category.
            source: Emitting component identifier.
            time: Event time; defaults to the attached clock's reading.
            **detail: Arbitrary payload stored on the record.

        Raises:
            ValueError: When ``time`` is omitted and the tracer has no
                clock -- a silent ``0.0`` timestamp would corrupt event
                ordering without any visible failure.
        """
        if not self.enabled:
            return
        if time is None:
            if self._clock is None:
                raise ValueError(
                    f"Tracer {self.name!r} has no clock: emit({category!r}) "
                    "needs an explicit time= argument"
                )
            time = self._clock()
        self._records.append(
            TraceRecord(time=time, category=category, source=source, detail=detail)
        )

    def records(self, category_prefix: str = "") -> list[TraceRecord]:
        """All records, optionally filtered by category prefix."""
        if not category_prefix:
            return list(self._records)
        return [r for r in self._records if r.matches(category_prefix)]

    def count(self, category_prefix: str = "") -> int:
        """Number of records with the given category prefix."""
        if not category_prefix:
            return len(self._records)
        return sum(1 for r in self._records if r.matches(category_prefix))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()

    def categories(self) -> list[str]:
        """Sorted unique categories seen so far."""
        return sorted({r.category for r in self._records})

    def format(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """Human-readable multi-line rendering (for debugging/tests)."""
        rows = []
        for r in self._records if records is None else records:
            kv = " ".join(f"{k}={v!r}" for k, v in sorted(r.detail.items()))
            rows.append(f"[{r.time:12.1f}] {r.category:<24} {r.source:<12} {kv}")
        return "\n".join(rows)
