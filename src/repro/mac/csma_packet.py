"""Packet-level CSMA/CA feedback collection on the emulated radio stack.

The abstract :class:`repro.mac.csma.CsmaBaseline` costs CSMA in slots;
this module runs the real thing on the testbed: the initiator broadcasts
a poll, every positive participant contends with unslotted 802.15.4
CSMA/CA (random backoff in unit backoff periods, CCA before transmit,
binary exponential backoff on busy), sends its reply as a unicast frame
with the ACK-request flag, and retries until the initiator's radio
hardware-acknowledges it.

The initiator terminates positively at the ``t``-th distinct reply and
negatively after a quiet period with no new replies -- the same
semantics (and the same reliability caveat) as the abstract baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from repro.radio.cc2420 import Cc2420Radio
from repro.radio.frames import AckFrame, BROADCAST_ADDR, DataFrame
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

#: Payload key identifying CSMA poll frames.
CSMA_POLL_TYPE = "csma.poll"

#: Payload key identifying CSMA reply frames.
CSMA_REPLY_TYPE = "csma.reply"

#: Reply payload: 2 bytes (responder id echo).
REPLY_PAYLOAD_BYTES = 2

#: 802.15.4 CSMA/CA constants.
MAC_MIN_BE = 3
MAC_MAX_BE = 8
MAX_FRAME_RETRIES = 7


class CsmaContender:
    """Participant-side CSMA/CA process for one reply.

    Implements unslotted 802.15.4 CSMA/CA: draw a backoff uniform in
    ``[0, 2**BE - 1]`` unit backoff periods, CCA, transmit on clear
    (otherwise grow ``BE`` and redraw), then wait for the link-layer
    acknowledgement and retry the whole dance if it does not arrive.

    Args:
        sim: The discrete-event simulator.
        radio: The participant's radio.
        dst: Initiator address to reply to.
        seq: Sequence number for the reply frame.
        rng: Randomness for backoff draws.
        tracer: Optional tracer.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Cc2420Radio,
        *,
        dst: int,
        seq: int,
        rng: np.random.Generator,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._sim = sim
        self._radio = radio
        self._dst = dst
        self._seq = seq
        self._rng = rng
        self._tracer = tracer if tracer is not None else Tracer(enabled=False, name="csma-contender")
        self._be = MAC_MIN_BE
        self._retries = 0
        self._done = False
        self._given_up = False
        radio.ack_callback = self._on_ack
        self._start_backoff()

    @property
    def done(self) -> bool:
        """Whether the reply has been acknowledged."""
        return self._done

    @property
    def given_up(self) -> bool:
        """Whether the retry budget was exhausted."""
        return self._given_up

    def cancel(self) -> None:
        """Abort the contention (mote reboot / session teardown)."""
        self._given_up = True

    def _start_backoff(self) -> None:
        periods = int(self._rng.integers(0, 2**self._be))
        delay = periods * self._radio.channel.timing.backoff_period_us
        self._sim.schedule(delay, self._attempt, label="csma-backoff")

    def _attempt(self) -> None:
        if self._done or self._given_up:
            return
        if self._radio.is_transmitting():
            self._sim.schedule(
                self._radio.channel.timing.backoff_period_us,
                self._attempt,
                label="csma-defer",
            )
            return
        if not self._radio.cca():
            # Channel busy: grow the window and back off again.
            self._be = min(self._be + 1, MAC_MAX_BE)
            self._start_backoff()
            return
        frame = DataFrame(
            src=self._radio.address,
            dst=self._dst,
            seq=self._seq,
            ack_request=True,
            payload={
                "type": CSMA_REPLY_TYPE,
                "responder": self._radio.address,
            },
            payload_bytes=REPLY_PAYLOAD_BYTES,
        )
        end = self._radio.transmit(frame)
        self._tracer.emit(
            "csma.reply.tx",
            f"mote{self._radio.address}",
            time=self._sim.now,
            retry=self._retries,
        )
        timeout = end + self._radio.channel.timing.ack_wait_us
        self._sim.schedule_at(timeout, self._check_ack, label="csma-ackwait")

    def _check_ack(self) -> None:
        if self._done or self._given_up:
            return
        self._retries += 1
        if self._retries > MAX_FRAME_RETRIES:
            self._given_up = True
            self._tracer.emit(
                "csma.reply.giveup",
                f"mote{self._radio.address}",
                time=self._sim.now,
            )
            return
        self._be = min(self._be + 1, MAC_MAX_BE)
        self._start_backoff()

    def _on_ack(self, ack: AckFrame, superposition: int) -> None:
        if ack.seq == self._seq:
            self._done = True


@dataclass(frozen=True)
class CsmaCollectionOutcome:
    """Result of a packet-level CSMA collection session.

    Attributes:
        decision: Whether ``t`` distinct replies were collected.
        replies: Distinct responders heard.
        duration_us: Wall-clock session length.
    """

    decision: bool
    replies: int
    duration_us: float


class CsmaCollector:
    """Initiator-side driver of a packet-level CSMA session.

    Args:
        sim: The discrete-event simulator.
        radio: The initiator's radio (its ``receive_callback`` is
            claimed for reply collection).
        quiet_us: Give up after this long with no new reply.
        tracer: Optional tracer.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Cc2420Radio,
        *,
        quiet_us: float = 20_000.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if quiet_us <= 0:
            raise ValueError(f"quiet_us must be > 0, got {quiet_us}")
        self._sim = sim
        self._radio = radio
        self._quiet_us = quiet_us
        self._tracer = tracer if tracer is not None else Tracer(enabled=False, name="csma-collector")
        self._seq = 0
        self._responders: Set[int] = set()
        self._last_reply_us = 0.0
        radio.receive_callback = self._on_frame

    def collect(
        self,
        threshold: int,
        *,
        predicate_id: int = 0,
        members: Optional[Set[int]] = None,
    ) -> CsmaCollectionOutcome:
        """Broadcast a poll and collect replies until resolution.

        Args:
            threshold: Required distinct replies.
            predicate_id: Predicate being polled.
            members: Optional member restriction (default: everyone).

        Returns:
            The session outcome; ``decision`` has the same reliability
            caveat as plain CSMA (the negative verdict is a timeout).
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        start = self._sim.now
        self._responders.clear()
        self._last_reply_us = start
        seq = self._seq % 256
        self._seq += 1

        poll = DataFrame(
            src=self._radio.address,
            dst=BROADCAST_ADDR,
            seq=seq,
            ack_request=False,
            payload={
                "type": CSMA_POLL_TYPE,
                "predicate": predicate_id,
                "reply_to": self._radio.address,
                "members": (
                    None if members is None else tuple(sorted(members))
                ),
            },
            payload_bytes=8,
        )
        self._radio.transmit(poll)
        self._tracer.emit(
            "csma.poll",
            f"mote{self._radio.address}",
            time=start,
            threshold=threshold,
        )

        if threshold == 0:
            return CsmaCollectionOutcome(
                decision=True, replies=0, duration_us=self._sim.now - start
            )

        # Run in quiet-period slices, extending while replies keep coming.
        while True:
            if len(self._responders) >= threshold:
                return CsmaCollectionOutcome(
                    decision=True,
                    replies=len(self._responders),
                    duration_us=self._sim.now - start,
                )
            deadline = self._last_reply_us + self._quiet_us
            if self._sim.now >= deadline:
                return CsmaCollectionOutcome(
                    decision=False,
                    replies=len(self._responders),
                    duration_us=self._sim.now - start,
                )
            before = len(self._responders)
            self._sim.run(until=deadline)
            if len(self._responders) == before and self._sim.now >= deadline:
                return CsmaCollectionOutcome(
                    decision=len(self._responders) >= threshold,
                    replies=len(self._responders),
                    duration_us=self._sim.now - start,
                )

    def _on_frame(self, frame: DataFrame, superposition: int) -> None:
        if frame.payload.get("type") == CSMA_REPLY_TYPE:
            self._responders.add(int(frame.payload["responder"]))
            self._last_reply_us = self._sim.now
            self._tracer.emit(
                "csma.reply.rx",
                f"mote{self._radio.address}",
                time=self._sim.now,
                responder=frame.payload["responder"],
                distinct=len(self._responders),
            )
