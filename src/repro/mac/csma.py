"""Slotted CSMA baseline with binary exponential backoff (Sec IV-C).

Model: after the initiator's poll, every *positive* node contends to send
one reply.  Time is slotted; a backlogged node holds a backoff counter
drawn uniformly from its current contention window, decrements it on idle
slots only (carrier sensing freezes it during busy slots), and transmits
when it reaches zero.  A slot with exactly one transmitter is a success;
a slot with two or more is a collision, after which each collider doubles
its window (up to a cap) and redraws.

The initiator terminates with **true** after ``t`` successful replies.
It can never *certify* the negative answer -- silence from a node is
indistinguishable from backoff -- so it declares **false** after a quiet
period of consecutive idle slots.  Because binary exponential backoff can
open gaps longer than any fixed quiet period, that declaration can be
wrong: the paper's observation that "it is impossible to tell whether
x > t or x < t holds with certainty using CSMA" is a measurable property
of this model (``exact=False`` on every result).

Cost is the number of elapsed slots, plotted on the same axis as tcast's
query counts (one reply slot and one RCD query are frame exchanges of
comparable duration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import ThresholdResult
from repro.group_testing.population import Population


@dataclass(frozen=True)
class CsmaConfig:
    """Tunables of the slotted CSMA model.

    Attributes:
        initial_window: Contention-window size for the first attempt
            (802.15.4's ``macMinBE = 3`` gives 8 slots).
        max_window: Window cap under exponential backoff
            (``macMaxBE = 8`` gives 256).
        quiet_slots: Consecutive idle slots after which the initiator
            declares the threshold unreachable.  Must be at least
            ``initial_window`` to keep a lone uncollided replier from
            being missed; longer values trade latency for accuracy.
        adaptive_quiet: When ``True``, the quiet period grows with the
            contention the initiator has *observed*: after ``c`` collision
            slots it waits ``min(initial_window * 2**c, max_window)`` idle
            slots, which is an upper bound on any backlogged node's
            remaining backoff -- making the negative verdict sound (the
            only residual error source is ``loss_prob``) at the price of a
            longer drain tail.  ``False`` reproduces the fixed-window
            behaviour whose occasional premature verdicts illustrate the
            paper's "impossible to tell with certainty using CSMA" remark.
        loss_prob: Probability an otherwise-successful reply is lost
            (hidden-terminal / fading proxy); the sender learns nothing
            and the initiator hears a busy-but-undecodable slot.
        max_slots: Hard safety cap on the simulation length.
    """

    initial_window: int = 8
    max_window: int = 256
    quiet_slots: int = 8
    adaptive_quiet: bool = False
    loss_prob: float = 0.0
    max_slots: int = 1_000_000

    def __post_init__(self) -> None:
        if self.initial_window < 1:
            raise ValueError(
                f"initial_window must be >= 1, got {self.initial_window}"
            )
        if self.max_window < self.initial_window:
            raise ValueError(
                f"max_window ({self.max_window}) must be >= initial_window "
                f"({self.initial_window})"
            )
        if self.quiet_slots < 1:
            raise ValueError(f"quiet_slots must be >= 1, got {self.quiet_slots}")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError(f"loss_prob must be in [0,1), got {self.loss_prob}")
        if self.max_slots < 1:
            raise ValueError(f"max_slots must be >= 1, got {self.max_slots}")


class CsmaBaseline:
    """Contention-based reply collection (the paper's *CSMA* curve).

    Args:
        config: Model tunables; defaults follow 802.15.4 conventions.
    """

    name = "CSMA"

    def __init__(self, config: CsmaConfig | None = None) -> None:
        self._config = config or CsmaConfig()

    @property
    def config(self) -> CsmaConfig:
        """The active configuration."""
        return self._config

    def decide(
        self,
        population: Population,
        threshold: int,
        rng: np.random.Generator,
    ) -> ThresholdResult:
        """Simulate one CSMA feedback-collection session.

        Args:
            population: Ground truth; only its positive count matters
                (negatives never contend).
            threshold: The threshold ``t``.
            rng: Randomness for backoff draws and loss events.

        Returns:
            A :class:`ThresholdResult` with ``queries`` = elapsed slots and
            ``exact=False`` (the negative verdict is a timeout heuristic).
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        cfg = self._config
        if threshold == 0:
            return ThresholdResult(
                decision=True,
                queries=0,
                rounds=0,
                threshold=threshold,
                exact=False,
                algorithm=self.name,
            )

        x = population.x
        windows = np.full(x, cfg.initial_window, dtype=np.int64)
        backoff = (
            rng.integers(0, cfg.initial_window, size=x)
            if x
            else np.empty(0, dtype=np.int64)
        )
        pending = np.ones(x, dtype=bool)

        successes = 0
        idle_run = 0
        slot = 0
        collision_slots = 0

        while slot < cfg.max_slots:
            slot += 1
            if cfg.adaptive_quiet:
                quiet_needed = min(
                    cfg.initial_window << min(collision_slots, 30),
                    cfg.max_window,
                )
                quiet_needed = max(quiet_needed, cfg.quiet_slots)
            else:
                quiet_needed = cfg.quiet_slots
            transmitters = np.flatnonzero(pending & (backoff == 0))
            if transmitters.size == 0:
                idle_run += 1
                backoff[pending] -= 1
                # Counters never go negative: only positive counters remain.
                if idle_run >= quiet_needed:
                    return self._finish(
                        decision=False, slots=slot, threshold=threshold
                    )
                continue
            idle_run = 0
            if transmitters.size == 1:
                idx = transmitters[0]
                if cfg.loss_prob and rng.random() < cfg.loss_prob:
                    # The reply was corrupted in flight: the channel was
                    # busy, the sender believes it transmitted, and nothing
                    # was decoded.  The sender is done (no link-layer ack
                    # in this baseline), so the reply is simply lost.
                    pending[idx] = False
                else:
                    pending[idx] = False
                    successes += 1
                    if successes >= threshold:
                        return self._finish(
                            decision=True, slots=slot, threshold=threshold
                        )
            else:
                # Collision: every collider doubles its window and redraws.
                collision_slots += 1
                for idx in transmitters:
                    windows[idx] = min(windows[idx] * 2, cfg.max_window)
                    backoff[idx] = rng.integers(0, windows[idx])
        raise RuntimeError(
            f"CSMA safety cap of {cfg.max_slots} slots exhausted "
            f"(x={x}, t={threshold})"
        )

    @staticmethod
    def _finish(
        *, decision: bool, slots: int, threshold: int
    ) -> ThresholdResult:
        return ThresholdResult(
            decision=decision,
            queries=slots,
            rounds=1,
            threshold=threshold,
            exact=False,
            algorithm=CsmaBaseline.name,
        )
