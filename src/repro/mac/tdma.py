"""Sequential-ordering (TDMA) baseline (Sec IV-C).

The initiator broadcasts a schedule assigning every participant its own
reply slot (the paper's clock-synchronised variant, which it notes
"favors the sequential ordering results").  Slot ``i`` belongs to node
``i`` of the schedule; a positive node replies in its slot, a negative
node stays silent.  The initiator terminates early:

* **true** as soon as ``t`` positive replies have been heard;
* **false** as soon as even all-remaining-positive slots could not reach
  ``t``.

The scheme is exact and collision-free, but pays ``~(n - t)`` slots when
``x << t`` and ``~n t / x`` when positives are spread out -- the large
constant overhead visible at the left edge of Figure 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import ThresholdResult
from repro.group_testing.population import Population


class SequentialOrdering:
    """Collision-free per-node reply schedule with early termination.

    Args:
        shuffle: Whether the initiator randomises the schedule order each
            session (default) or uses node-id order.  Randomising makes the
            expected cost depend only on ``x``, not on which nodes are
            positive.
    """

    name = "Sequential"

    def __init__(self, *, shuffle: bool = True) -> None:
        self._shuffle = shuffle

    def decide(
        self,
        population: Population,
        threshold: int,
        rng: np.random.Generator,
    ) -> ThresholdResult:
        """Simulate one sequential-ordering session.

        Args:
            population: Ground truth.
            threshold: The threshold ``t``.
            rng: Randomness for the schedule shuffle.

        Returns:
            A :class:`ThresholdResult` with ``queries`` = elapsed slots and
            ``exact=True`` (the schedule certifies both verdicts).
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        n = population.size
        if threshold == 0:
            return self._result(True, 0, threshold)
        if threshold > n:
            return self._result(False, 0, threshold)

        schedule = np.arange(n)
        if self._shuffle:
            rng.shuffle(schedule)

        positives_seen = 0
        for slot, node in enumerate(schedule, start=1):
            if population.is_positive(int(node)):
                positives_seen += 1
                if positives_seen >= threshold:
                    return self._result(True, slot, threshold)
            remaining = n - slot
            if positives_seen + remaining < threshold:
                return self._result(False, slot, threshold)
        # The loop always terminates via one of the two conditions above
        # (at slot n, remaining == 0).
        raise AssertionError("unreachable: early termination is exhaustive")

    @staticmethod
    def _result(decision: bool, slots: int, threshold: int) -> ThresholdResult:
        return ThresholdResult(
            decision=decision,
            queries=slots,
            rounds=1,
            threshold=threshold,
            exact=True,
            algorithm=SequentialOrdering.name,
        )
