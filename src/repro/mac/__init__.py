"""MAC-layer baselines for threshold querying.

The paper contrasts tcast with two traditional feedback-collection
schemes (Sec IV-C):

* :class:`~repro.mac.csma.CsmaBaseline` -- contention-based replies with
  binary exponential backoff.  Cost grows roughly linearly in the number
  of positive repliers ``x`` and the scheme cannot *certify* ``x < t``
  (it times out on silence), so its results are inexact.
* :class:`~repro.mac.tdma.SequentialOrdering` -- a collision-free
  schedule assigning every participant its own reply slot, with early
  termination.  Exact but pays ``~(n - t)`` slots when ``x << t``.

Both are costed in *slots* on the same axis as tcast's queries: one RCD
query and one reply slot are each a frame exchange of comparable
duration (see ``radio/timing.py`` for the packet-level calibration).
"""

from repro.mac.csma import CsmaBaseline, CsmaConfig
from repro.mac.tdma import SequentialOrdering

__all__ = ["CsmaBaseline", "CsmaConfig", "SequentialOrdering"]
