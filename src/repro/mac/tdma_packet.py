"""Packet-level sequential-ordering (TDMA) collection on the emulated
radio stack.

The initiator broadcasts a schedule frame assigning every participant a
reply slot; slot ``i`` belongs to the ``i``-th scheduled node, slots are
sized for one reply frame plus a turnaround guard, and positive nodes
transmit in their slot while negative nodes stay silent.  The initiator
terminates early exactly like the abstract baseline: **true** at the
``t``-th reply, **false** as soon as the remaining slots cannot reach
``t``.

Unlike CSMA there is no contention and both verdicts are certified --
the packet-level counterpart of :class:`repro.mac.tdma.SequentialOrdering`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.radio.cc2420 import Cc2420Radio
from repro.radio.frames import BROADCAST_ADDR, DataFrame
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

#: Payload key identifying TDMA schedule frames.
TDMA_SCHEDULE_TYPE = "tdma.schedule"

#: Payload key identifying TDMA reply frames.
TDMA_REPLY_TYPE = "tdma.reply"

#: Reply payload bytes.
REPLY_PAYLOAD_BYTES = 2


def slot_duration_us(timing) -> float:
    """One TDMA reply slot: reply frame air time plus a turnaround guard."""
    return timing.frame_airtime_us(11 + REPLY_PAYLOAD_BYTES) + timing.turnaround_us


@dataclass(frozen=True)
class TdmaCollectionOutcome:
    """Result of a packet-level TDMA collection session.

    Attributes:
        decision: Whether ``t`` replies were heard (exact).
        replies: Positive replies heard before termination.
        slots_elapsed: Slots consumed before the verdict.
        duration_us: Wall-clock session length (schedule + slots).
    """

    decision: bool
    replies: int
    slots_elapsed: int
    duration_us: float


class TdmaCollector:
    """Initiator-side driver of a packet-level TDMA session.

    Args:
        sim: The discrete-event simulator.
        radio: The initiator's radio (``receive_callback`` is claimed).
        tracer: Optional tracer.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Cc2420Radio,
        *,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._sim = sim
        self._radio = radio
        self._tracer = tracer if tracer is not None else Tracer(enabled=False, name="tdma-collector")
        self._seq = 0
        self._heard: Set[int] = set()
        radio.receive_callback = self._on_frame

    def collect(
        self,
        threshold: int,
        schedule: Sequence[int],
        *,
        predicate_id: int = 0,
    ) -> TdmaCollectionOutcome:
        """Broadcast the schedule and listen slot by slot.

        Args:
            threshold: The threshold ``t``.
            schedule: Participant ids in reply-slot order.
            predicate_id: Which predicate is being polled.

        Returns:
            The session outcome (``decision`` is certified both ways).
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        start = self._sim.now
        self._heard.clear()
        n = len(schedule)
        if threshold == 0:
            return TdmaCollectionOutcome(
                decision=True, replies=0, slots_elapsed=0, duration_us=0.0
            )
        if threshold > n:
            return TdmaCollectionOutcome(
                decision=False, replies=0, slots_elapsed=0, duration_us=0.0
            )

        seq = self._seq % 256
        self._seq += 1
        timing = self._radio.channel.timing
        schedule_frame = DataFrame(
            src=self._radio.address,
            dst=BROADCAST_ADDR,
            seq=seq,
            ack_request=False,
            payload={
                "type": TDMA_SCHEDULE_TYPE,
                "predicate": predicate_id,
                "schedule": tuple(int(m) for m in schedule),
                "slot_us": slot_duration_us(timing),
            },
            payload_bytes=min(4 + n, 116),
        )
        frame_end = self._radio.transmit(schedule_frame)
        slots_start = frame_end + timing.turnaround_us
        slot_us = slot_duration_us(timing)
        self._tracer.emit(
            "tdma.schedule",
            f"mote{self._radio.address}",
            time=start,
            slots=n,
        )

        replies = 0
        for slot_index in range(n):
            slot_end = slots_start + (slot_index + 1) * slot_us
            self._sim.run(until=slot_end)
            replies = len(self._heard)
            if replies >= threshold:
                return TdmaCollectionOutcome(
                    decision=True,
                    replies=replies,
                    slots_elapsed=slot_index + 1,
                    duration_us=self._sim.now - start,
                )
            remaining = n - (slot_index + 1)
            if replies + remaining < threshold:
                return TdmaCollectionOutcome(
                    decision=False,
                    replies=replies,
                    slots_elapsed=slot_index + 1,
                    duration_us=self._sim.now - start,
                )
        # Unreachable: one of the two conditions fires at the last slot.
        raise AssertionError("early termination is exhaustive")

    def _on_frame(self, frame: DataFrame, superposition: int) -> None:
        if frame.payload.get("type") == TDMA_REPLY_TYPE:
            self._heard.add(int(frame.payload["responder"]))
            self._tracer.emit(
                "tdma.reply.rx",
                f"mote{self._radio.address}",
                time=self._sim.now,
                responder=frame.payload["responder"],
            )
