"""The :class:`FaultPlan`: a seeded, composable set of fault injectors.

A plan bundles injectors (see :mod:`repro.faults.injectors`) with its own
named random streams and exposes one method per seam of the stack.  Each
seam method is a *conditional* wrapper: when the plan holds no injector
relevant to that seam it returns its argument **unchanged**, which is the
zero-cost-when-disabled guarantee -- :meth:`FaultPlan.none` runs are
bit-for-bit identical to runs with no plan at all.

Fired faults are recorded as :class:`FaultEvent` entries on the plan, so
experiments and the reliability layer can report ground truth about what
was injected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.faults.injectors import (
    BinMissWindow,
    HackMissBurst,
    MoteCrash,
    SerialByteCorruption,
    StuckTransmitter,
    VerdictFlip,
    WindowedHackMiss,
)
from repro.group_testing.model import BinObservation, ObservationKind, QueryModel
from repro.obs import get_registry
from repro.radio.irregularity import HackMissModel, IdealRadioModel
from repro.sim.rng import RngRegistry

#: Import-time instruments (inert until metrics are enabled).  Fired
#: faults are rare, so the per-kind counter lookup in :meth:`FaultPlan.record`
#: is off the hot path.
_OBS = get_registry()
_F_INJECTED = _OBS.counter("faults.injected")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (motes -> core)
    from repro.motes.testbed import Testbed

#: Any injector type a plan accepts.
Injector = (
    BinMissWindow
    | HackMissBurst
    | MoteCrash
    | SerialByteCorruption
    | StuckTransmitter
    | VerdictFlip
)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired.

    Attributes:
        kind: Injector category, e.g. ``"bin-miss"``, ``"mote-crash"``.
        where: Location of the firing -- ``"query#12"``, ``"t=5000us"``,
            ``"serial"``.
        detail: Free-form description of what was done.
    """

    kind: str
    where: str
    detail: str = ""


class FaultyModel:
    """A :class:`~repro.group_testing.model.QueryModel` wrapper applying
    observation-level faults the ``detection_failure`` hook cannot express.

    Handles :class:`~repro.faults.injectors.BinMissWindow` (query-indexed
    drop bursts -- the wrapper sees *every* query, so window indices are
    exact) and the ``p_fake`` direction of
    :class:`~repro.faults.injectors.VerdictFlip` (fabricated activity on a
    silent bin).  Construct via :meth:`FaultPlan.wrap_model`, which skips
    the wrapper entirely when no relevant injector is present.

    Args:
        model: The wrapped query model.
        windows: Drop-burst windows.
        fakes: Verdict flips with a non-zero ``p_fake``.
        rng: The plan's model-fault stream.
        plan: Owning plan (receives :class:`FaultEvent` records).
    """

    def __init__(
        self,
        model: QueryModel,
        windows: Sequence[BinMissWindow],
        fakes: Sequence[VerdictFlip],
        rng: np.random.Generator,
        plan: "FaultPlan",
    ) -> None:
        self._model = model
        self._windows = tuple(windows)
        self._fakes = tuple(fakes)
        self._rng = rng
        self._plan = plan
        self._index = 0

    @property
    def queries_used(self) -> int:
        """Total queries charged (delegated to the wrapped model)."""
        return self._model.queries_used

    @property
    def population_size(self) -> int:
        """Participant count (delegated to the wrapped model)."""
        return self._model.population_size

    def begin_round(self, bins: Sequence[Sequence[int]]) -> None:
        """Forward the round hook when the wrapped model has one."""
        hook = getattr(self._model, "begin_round", None)
        if hook is not None:
            hook(bins)

    def query(self, members: Sequence[int]) -> BinObservation:
        """Query the wrapped model, then apply observation-level faults."""
        obs = self._model.query(members)
        index = self._index
        self._index += 1
        if obs.kind is not ObservationKind.SILENT:
            for window in self._windows:
                if window.covers(index) and self._rng.random() < window.p_miss:
                    self._plan.record(
                        FaultEvent(
                            kind="bin-miss",
                            where=f"query#{index}",
                            detail=f"burst dropped {obs.kind.value} verdict",
                        )
                    )
                    return BinObservation(
                        kind=ObservationKind.SILENT, min_positives=0
                    )
        else:
            for fake in self._fakes:
                if fake.p_fake > 0.0 and self._rng.random() < fake.p_fake:
                    self._plan.record(
                        FaultEvent(
                            kind="bin-fake",
                            where=f"query#{index}",
                            detail="fabricated 1+ activity on silent bin",
                        )
                    )
                    return BinObservation(
                        kind=ObservationKind.ACTIVITY, min_positives=1
                    )
        return obs


class _Babbler:
    """The scheduled jammer behind
    :class:`~repro.faults.injectors.StuckTransmitter` (testbed side)."""

    #: Hardware-address block for jammer radios (above participant ids,
    #: distinct from the multihop interference block 0xFD00).
    BASE_ADDR = 0xFB00

    def __init__(self, testbed: "Testbed", spec: StuckTransmitter, index: int) -> None:
        from repro.radio.cc2420 import Cc2420Radio  # local: avoid cycle
        from repro.radio.frames import DataFrame

        self._frame_cls = DataFrame
        self._sim = testbed.sim
        self._spec = spec
        self._address = self.BASE_ADDR + index
        self._radio = Cc2420Radio(
            self._sim, testbed.channel, address=self._address, auto_ack=False
        )
        self._radio.set_short_address(self._address)
        self._seq = 0
        self._sim.schedule_at(spec.start_us, self._fire, label="babble-start")

    def _fire(self) -> None:
        if self._sim.now >= self._spec.start_us + self._spec.duration_us:
            return
        if not self._radio.is_transmitting():
            end = self._radio.transmit(
                self._frame_cls(
                    src=self._address,
                    dst=self._address,  # nobody decodes it; pure jam energy
                    seq=self._seq % 256,
                    ack_request=False,
                    payload={"type": "babble"},
                    payload_bytes=self._spec.payload_bytes,
                )
            )
            self._seq += 1
            # Re-fire exactly at end-of-air: a stuck transmitter leaves
            # no inter-frame gap, so CCA never samples a clear medium.
            self._sim.schedule_at(end, self._fire, label="babble")
        else:  # pragma: no cover - defensive; the radio is ours alone
            self._sim.schedule(10.0, self._fire, label="babble")


class FaultPlan:
    """A composable, seeded fault-injection plan.

    Args:
        injectors: The injector set (see :mod:`repro.faults.injectors`).
        seed: Root seed for all fault randomness; independent of the
            workload/bin/channel streams so injecting faults never
            perturbs the underlying run's random choices.

    Example:
        >>> from repro.faults import FaultPlan, VerdictFlip
        >>> plan = FaultPlan([VerdictFlip(p_drop=0.1, only_single=True)], seed=3)
        >>> plan.enabled
        True
        >>> FaultPlan.none().enabled
        False
    """

    def __init__(
        self, injectors: Sequence[Injector] = (), *, seed: int = 0
    ) -> None:
        self._injectors = tuple(injectors)
        self._rngs = RngRegistry(seed)
        self._events: List[FaultEvent] = []

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: every seam returns its argument unchanged."""
        return cls()

    @property
    def injectors(self) -> tuple[Injector, ...]:
        """The configured injectors."""
        return self._injectors

    @property
    def enabled(self) -> bool:
        """Whether the plan holds any injector at all."""
        return bool(self._injectors)

    def __bool__(self) -> bool:
        """Truthiness mirrors :attr:`enabled`."""
        return self.enabled

    @property
    def vectorizable(self) -> bool:
        """Whether sessions under this plan may use the vectorized kernel.

        Fault injection is a scalar-path feature: drop faults become a
        ``detection_failure`` hook and observation faults wrap the model,
        both of which draw per-query randomness the kernel does not
        reproduce.  Any configured injector therefore reports the plan as
        not vectorizable and batch callers
        (:func:`repro.api.threshold_query_batch`, the sweep dispatcher)
        fall back to the scalar oracle path.
        """
        return not self.enabled

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """Faults that actually fired so far (injection ground truth)."""
        return tuple(self._events)

    def record(self, event: FaultEvent) -> None:
        """Append a fired-fault record (called by the seam wrappers)."""
        self._events.append(event)
        if _OBS.enabled:
            _F_INJECTED.inc()
            _OBS.counter(f"faults.injected.{event.kind}").inc()

    def _select(self, kind: type) -> list:
        return [i for i in self._injectors if isinstance(i, kind)]

    # ------------------------------------------------------------------
    # Seam: abstract models
    # ------------------------------------------------------------------

    def detection_hook(
        self, base: Optional[Callable[[int], float]] = None
    ) -> Optional[Callable[[int], float]]:
        """Compose drop-type flips into a ``detection_failure`` hook.

        Args:
            base: The hook the model would otherwise use (may be
                ``None``).

        Returns:
            ``base`` unchanged when the plan has no drop-type
            :class:`~repro.faults.injectors.VerdictFlip`; otherwise a
            hook combining base and injected miss probabilities as
            independent events.
        """
        flips = [f for f in self._select(VerdictFlip) if f.p_drop > 0.0]
        if not flips:
            return base

        def hook(k: int) -> float:
            survive = 1.0 if base is None else 1.0 - base(k)
            for flip in flips:
                survive *= 1.0 - flip.drop_probability(k)
            return 1.0 - survive

        return hook

    def wrap_model(self, model: QueryModel) -> QueryModel:
        """Apply observation-level faults to a query model.

        Returns:
            ``model`` unchanged when the plan holds no
            :class:`~repro.faults.injectors.BinMissWindow` and no
            fake-type flip; otherwise a :class:`FaultyModel`.
        """
        windows = self._select(BinMissWindow)
        fakes = [f for f in self._select(VerdictFlip) if f.p_fake > 0.0]
        if not windows and not fakes:
            return model
        return FaultyModel(
            model, windows, fakes, self._rngs.stream("faults.model"), self
        )

    # ------------------------------------------------------------------
    # Seam: packet-level channel
    # ------------------------------------------------------------------

    def wrap_hack_miss(
        self,
        base: Optional[HackMissModel | IdealRadioModel],
        clock: Callable[[], float],
    ) -> Optional[HackMissModel | IdealRadioModel | WindowedHackMiss]:
        """Compose timed HACK-miss bursts over the channel's base model.

        Args:
            base: The configured irregularity model (may be ``None``).
            clock: Callable returning the current simulated time (us).

        Returns:
            ``base`` unchanged when the plan holds no
            :class:`~repro.faults.injectors.HackMissBurst`; otherwise a
            :class:`~repro.faults.injectors.WindowedHackMiss`.
        """
        bursts = self._select(HackMissBurst)
        if not bursts:
            return base
        return WindowedHackMiss(base, bursts, clock)

    # ------------------------------------------------------------------
    # Seam: serial control plane
    # ------------------------------------------------------------------

    def corrupt_wire(self, data: bytes) -> bytes:
        """Pass wire bytes through the configured serial corruption.

        Each byte is hit with per-injector probability ``p_byte``; a hit
        flips one random bit.  Returns ``data`` unchanged (same object)
        when no :class:`~repro.faults.injectors.SerialByteCorruption` is
        configured.
        """
        corruptions = self._select(SerialByteCorruption)
        if not corruptions or not data:
            return data
        rng = self._rngs.stream("faults.serial")
        out = bytearray(data)
        hits = 0
        for corruption in corruptions:
            if corruption.p_byte <= 0.0:
                continue
            mask = rng.random(len(out)) < corruption.p_byte
            for i in np.flatnonzero(mask):
                out[i] ^= 1 << int(rng.integers(8))
                hits += 1
        if hits:
            self.record(
                FaultEvent(
                    kind="serial-corruption",
                    where="serial",
                    detail=f"{hits} byte(s) corrupted in a {len(out)}-byte frame",
                )
            )
            return bytes(out)
        return data

    # ------------------------------------------------------------------
    # Seam: testbed (motes + medium)
    # ------------------------------------------------------------------

    def arm_testbed(self, testbed: "Testbed") -> None:
        """Schedule mote crashes/reboots and stuck transmitters.

        Called by :class:`repro.motes.testbed.Testbed` during
        construction when its config carries a plan; a plan with no
        testbed injectors schedules nothing.

        Raises:
            ValueError: If a :class:`~repro.faults.injectors.MoteCrash`
                names a mote outside the testbed.
        """
        for crash in self._select(MoteCrash):
            if not 0 <= crash.mote_id < testbed.num_participants:
                raise ValueError(
                    f"MoteCrash mote_id {crash.mote_id} outside "
                    f"[0, {testbed.num_participants})"
                )
            self._arm_crash(testbed, crash)
        for index, spec in enumerate(self._select(StuckTransmitter)):
            _Babbler(testbed, spec, index)

    def _arm_crash(self, testbed: "Testbed", crash: MoteCrash) -> None:
        mote = testbed.participants[crash.mote_id]

        def do_crash() -> None:
            mote.crash()
            self.record(
                FaultEvent(
                    kind="mote-crash",
                    where=f"t={testbed.sim.now:.0f}us",
                    detail=f"participant {crash.mote_id} powered off",
                )
            )

        def do_reboot() -> None:
            mote.reboot()
            self.record(
                FaultEvent(
                    kind="mote-reboot",
                    where=f"t={testbed.sim.now:.0f}us",
                    detail=f"participant {crash.mote_id} restarted",
                )
            )

        testbed.sim.schedule_at(crash.at_us, do_crash, label="fault-crash")
        if crash.reboot_at_us is not None:
            testbed.sim.schedule_at(
                crash.reboot_at_us, do_reboot, label="fault-reboot"
            )
