"""Cross-layer fault injection for the tcast reproduction.

The paper's testbed exhibits exactly one organic error mode -- missed
single-HACK bins producing false-negative runs (Sec IV-D, Fig 4).  This
package makes that fault, and several the paper could not produce on
demand, first-class and *injectable*: a :class:`~repro.faults.plan.FaultPlan`
holds a composable, seeded set of injectors and plugs them into the
existing seams of the stack:

* the abstract models' ``detection_failure`` hook
  (:meth:`~repro.faults.plan.FaultPlan.detection_hook`) and a
  query-observation wrapper (:meth:`~repro.faults.plan.FaultPlan.wrap_model`);
* the packet-level channel's HACK-irregularity model
  (:meth:`~repro.faults.plan.FaultPlan.wrap_hack_miss`);
* the testbed's motes and medium -- scheduled crashes/reboots and a
  babbling transmitter (:meth:`~repro.faults.plan.FaultPlan.arm_testbed`);
* the serial control plane's wire bytes
  (:meth:`~repro.faults.plan.FaultPlan.corrupt_wire`).

Everything is zero-cost when disabled: :meth:`FaultPlan.none()
<repro.faults.plan.FaultPlan.none>` (and any plan with no relevant
injectors) returns the wrapped object *unchanged*, so default runs
reproduce the paper figures bit-for-bit under the same seeds.

The :mod:`repro.core.reliable` layer is the counterpart that *recovers*
from these faults; ``experiments/ext_faults.py`` measures the
accuracy-vs-cost trade-off between the two.
"""

from repro.faults.injectors import (
    BinMissWindow,
    HackMissBurst,
    MoteCrash,
    SerialByteCorruption,
    StuckTransmitter,
    VerdictFlip,
    WindowedHackMiss,
)
from repro.faults.plan import FaultEvent, FaultPlan, FaultyModel

__all__ = [
    "BinMissWindow",
    "FaultEvent",
    "FaultPlan",
    "FaultyModel",
    "HackMissBurst",
    "MoteCrash",
    "SerialByteCorruption",
    "StuckTransmitter",
    "VerdictFlip",
    "WindowedHackMiss",
]
