"""The individual fault injectors a :class:`~repro.faults.plan.FaultPlan`
composes.

Each injector is a small frozen dataclass describing *one* failure
process.  Injectors are pure configuration -- all randomness comes from
the plan's seeded streams, so a plan replays identically under the same
root seed.  Two domains exist:

* **abstract-model injectors** (:class:`VerdictFlip`,
  :class:`BinMissWindow`) act on the counting models of
  :mod:`repro.group_testing.model` -- per-bin verdict flips through the
  ``detection_failure`` seam or an observation wrapper;
* **testbed injectors** (:class:`HackMissBurst`, :class:`MoteCrash`,
  :class:`StuckTransmitter`, :class:`SerialByteCorruption`) act on the
  packet-level emulation -- the channel's HACK-irregularity seam, mote
  power control, the shared medium, and the serial control plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.radio.irregularity import HackMissModel, IdealRadioModel


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0,1], got {value}")


# ---------------------------------------------------------------------------
# Abstract-model injectors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VerdictFlip:
    """Stationary per-bin verdict flips for the abstract models.

    ``p_drop`` makes a detected bin read silent (the physically plausible
    direction -- radio irregularity, interference); ``p_fake`` fabricates
    activity on a truly silent bin (physically impossible over backcast,
    but injectable to stress algorithms' one-sided-error assumptions).

    Attributes:
        p_drop: Probability a non-silent bin observation is flipped to
            silent.  Applied through the models' ``detection_failure``
            seam, so it composes with any configured base miss model.
        p_fake: Probability a silent observation is flipped to 1+
            activity.  Applied by :class:`~repro.faults.plan.FaultyModel`
            (the hook seam cannot fabricate activity).
        only_single: Restrict ``p_drop`` to bins holding exactly one
            positive -- the paper's dominant error mode.
    """

    p_drop: float = 0.0
    p_fake: float = 0.0
    only_single: bool = False

    def __post_init__(self) -> None:
        _check_probability("p_drop", self.p_drop)
        _check_probability("p_fake", self.p_fake)

    def drop_probability(self, k: int) -> float:
        """Miss probability contributed for a bin with ``k`` positives."""
        if self.only_single and k != 1:
            return 0.0
        return self.p_drop


@dataclass(frozen=True)
class BinMissWindow:
    """A burst of dropped bin verdicts over a query-index window.

    During queries ``start_query <= i < start_query + n_queries`` (indices
    counted from the wrapping of the model), any non-silent observation is
    flipped to silent with probability ``p_miss``.  Models an interference
    burst hitting a contiguous stretch of the session.  Applied by
    :class:`~repro.faults.plan.FaultyModel`, which sees every query and
    can therefore count indices exactly.

    Attributes:
        start_query: First affected query index (0-based).
        n_queries: Window length in queries (``>= 1``).
        p_miss: Drop probability inside the window.
    """

    start_query: int
    n_queries: int
    p_miss: float = 1.0

    def __post_init__(self) -> None:
        if self.start_query < 0:
            raise ValueError(f"start_query must be >= 0, got {self.start_query}")
        if self.n_queries < 1:
            raise ValueError(f"n_queries must be >= 1, got {self.n_queries}")
        _check_probability("p_miss", self.p_miss)

    def covers(self, query_index: int) -> bool:
        """Whether ``query_index`` falls inside the burst window."""
        return self.start_query <= query_index < self.start_query + self.n_queries


# ---------------------------------------------------------------------------
# Testbed injectors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HackMissBurst:
    """A time window of elevated HACK-miss probability on the channel.

    While ``start_us <= now < start_us + duration_us`` the channel's
    irregularity model is overridden by a :class:`HackMissModel` with the
    burst's parameters, composed with the configured base model (miss
    events are independent, so probabilities combine as
    ``1 - (1-base)(1-burst)``).

    Attributes:
        start_us: Burst start (simulated microseconds).
        duration_us: Burst length (``> 0``).
        p_single: Lone-HACK miss probability during the burst.
        decay: Per-extra-HACK multiplicative miss reduction.
    """

    start_us: float
    duration_us: float
    p_single: float
    decay: float = 0.1

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise ValueError(f"start_us must be >= 0, got {self.start_us}")
        if self.duration_us <= 0:
            raise ValueError(
                f"duration_us must be > 0, got {self.duration_us}"
            )
        _check_probability("p_single", self.p_single)
        _check_probability("decay", self.decay)

    def covers(self, now_us: float) -> bool:
        """Whether simulated time ``now_us`` falls inside the burst."""
        return self.start_us <= now_us < self.start_us + self.duration_us

    def miss_probability(self, k: int) -> float:
        """The burst's own miss probability for ``k`` superposed HACKs."""
        return HackMissModel(
            p_single=self.p_single, decay=self.decay
        ).miss_probability(k)


class WindowedHackMiss:
    """Irregularity model composing a base model with timed bursts.

    Implements the same ``miss_probability(k)`` interface as
    :class:`~repro.radio.irregularity.HackMissModel` but consults a clock:
    inside a burst window the burst's miss probability is combined with
    the base model's (independent events).

    Args:
        base: The always-on irregularity model (``None`` = ideal).
        bursts: The timed burst windows.
        clock: Callable returning the current simulated time in us.
    """

    def __init__(
        self,
        base: Optional[HackMissModel | IdealRadioModel],
        bursts: Sequence[HackMissBurst],
        clock: Callable[[], float],
    ) -> None:
        self._base = base if base is not None else IdealRadioModel()
        self._bursts = tuple(bursts)
        self._clock = clock

    @property
    def bursts(self) -> tuple[HackMissBurst, ...]:
        """The configured burst windows."""
        return self._bursts

    def miss_probability(self, k: int) -> float:
        """Combined miss probability for ``k`` HACKs at the current time."""
        survive = 1.0 - self._base.miss_probability(k)
        now = self._clock()
        for burst in self._bursts:
            if burst.covers(now):
                survive *= 1.0 - burst.miss_probability(k)
        return 1.0 - survive


@dataclass(frozen=True)
class MoteCrash:
    """Crash (and optionally reboot) one participant mote at a set time.

    A crashed mote's radio is powered off: it stops HACK-ing, voting and
    receiving announces -- a positive participant that crashes therefore
    silently disappears from the query results, the classic fail-silent
    fault.  An optional scheduled reboot restores it (predicate
    configuration survives, as on the real testbed).

    Attributes:
        mote_id: Participant to crash (``0..N-1``).
        at_us: Crash time (simulated microseconds).
        reboot_at_us: Optional restart time (must be ``> at_us``).
    """

    mote_id: int
    at_us: float
    reboot_at_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mote_id < 0:
            raise ValueError(f"mote_id must be >= 0, got {self.mote_id}")
        if self.at_us < 0:
            raise ValueError(f"at_us must be >= 0, got {self.at_us}")
        if self.reboot_at_us is not None and self.reboot_at_us <= self.at_us:
            raise ValueError(
                f"reboot_at_us ({self.reboot_at_us}) must be after "
                f"at_us ({self.at_us})"
            )


@dataclass(frozen=True)
class StuckTransmitter:
    """A babbling transmitter jamming the shared medium for a window.

    Models a wedged radio stuck in TX: from ``start_us`` until
    ``start_us + duration_us`` an extra channel-attached radio transmits
    frames back to back, keeping CCA busy.  Initiator announces/polls
    defer (see :func:`repro.primitives.common.transmit_when_clear`) and,
    if the jam outlasts the deferral bound, the session raises
    :class:`repro.primitives.common.ChannelWedged` -- the wedge the
    reliable control plane recovers from by rebooting and backing off.

    Attributes:
        start_us: Jam start (simulated microseconds).
        duration_us: Jam length (``> 0``).
        payload_bytes: Payload size of each jamming frame.
    """

    start_us: float
    duration_us: float
    payload_bytes: int = 16

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise ValueError(f"start_us must be >= 0, got {self.start_us}")
        if self.duration_us <= 0:
            raise ValueError(
                f"duration_us must be > 0, got {self.duration_us}"
            )
        if self.payload_bytes < 1:
            raise ValueError(
                f"payload_bytes must be >= 1, got {self.payload_bytes}"
            )


@dataclass(frozen=True)
class SerialByteCorruption:
    """Random bit flips on the serial control plane's wire bytes.

    Each byte of an encoded frame has one of its bits flipped with
    probability ``p_byte``.  The SLIP checksum catches the damage and the
    NAK/retransmit handshake of
    :class:`repro.motes.serial.SerialTestbedController` recovers -- up to
    its bounded retry budget.

    Attributes:
        p_byte: Per-byte corruption probability.
    """

    p_byte: float

    def __post_init__(self) -> None:
        _check_probability("p_byte", self.p_byte)
