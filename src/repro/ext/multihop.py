"""tcast under multihop interference (the paper's future-work experiment).

Sec III-B argues that backcast-based tcast is robust in multihop settings
with interfering traffic from neighbouring regions: interference can make
the initiator *miss* a HACK (false negative) but can never *fabricate*
one (false positive), because the initiator only accepts a decoded
hardware ACK carrying the poll's sequence number.

:class:`InterferenceSource` attaches an extra radio to the testbed's
channel that transmits background data frames with exponential
inter-arrival times -- a stand-in for traffic audible from a neighbouring
region.  :class:`InterferenceStudy` sweeps the interference rate and
measures the false-negative / false-positive profile of full tcast runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core import TwoTBins
from repro.core.base import ThresholdAlgorithm
from repro.motes.testbed import Testbed, TestbedConfig
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.frames import DataFrame
from repro.sim.rng import derive_seed

#: Destination address used by interference traffic; never matches any
#: mote's short address or a backcast ephemeral id.
_INTERFERENCE_DST = 0xFDFD

#: Hardware address of the interference radio.
_INTERFERENCE_ADDR = 0xFD00


class InterferenceSource:
    """Background traffic generator on a testbed's channel.

    Args:
        testbed: The testbed whose channel to pollute.
        rate_per_ms: Mean transmissions per millisecond (Poisson process).
        payload_bytes: Payload size of each interference frame.
        rng: Randomness for inter-arrival times; defaults to a stream
            derived from the testbed seed.
    """

    def __init__(
        self,
        testbed: Testbed,
        *,
        rate_per_ms: float,
        payload_bytes: int = 12,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rate_per_ms < 0:
            raise ValueError(f"rate must be >= 0, got {rate_per_ms}")
        self._sim = testbed.sim
        self._rng = rng or np.random.default_rng(
            derive_seed(testbed.config.seed, "interference")
        )
        self._rate = rate_per_ms
        self._payload = payload_bytes
        self._seq = 0
        self._frames = 0
        self._radio = Cc2420Radio(
            self._sim,
            testbed.channel,
            address=_INTERFERENCE_ADDR,
            auto_ack=False,
        )
        self._radio.set_short_address(_INTERFERENCE_ADDR)
        if self._rate > 0:
            self._schedule_next()

    @property
    def frames_injected(self) -> int:
        """Interference frames transmitted so far."""
        return self._frames

    def _schedule_next(self) -> None:
        gap_us = float(self._rng.exponential(1000.0 / self._rate))
        self._sim.schedule(gap_us, self._fire, label="interference")

    def _fire(self) -> None:
        if not self._radio.is_transmitting():
            frame = DataFrame(
                src=_INTERFERENCE_ADDR,
                dst=_INTERFERENCE_DST,
                seq=self._seq % 256,
                ack_request=False,
                payload={"type": "interference"},
                payload_bytes=self._payload,
            )
            self._seq += 1
            self._frames += 1
            self._radio.transmit(frame)
        self._schedule_next()


@dataclass(frozen=True)
class InterferenceStudyResult:
    """Error profile of tcast at one interference rate.

    Attributes:
        rate_per_ms: Interference transmission rate.
        runs: tcast sessions executed.
        false_negatives: Sessions answering *false* on a true instance.
        false_positives: Sessions answering *true* on a false instance
            (expected to be 0 for backcast at every rate).
        mean_queries: Mean bin queries per session.
        frames_injected: Total interference frames across all runs.
    """

    rate_per_ms: float
    runs: int
    false_negatives: int
    false_positives: int
    mean_queries: float
    frames_injected: int

    @property
    def false_negative_rate(self) -> float:
        """Fraction of sessions that were false negatives."""
        return self.false_negatives / self.runs if self.runs else 0.0


class InterferenceStudy:
    """Sweeps interference rates against full tcast sessions.

    Args:
        participants: Participant mote count.
        threshold: Threshold ``t``.
        algorithm_factory: tcast algorithm builder (default 2tBins).
        seed: Root seed.
    """

    def __init__(
        self,
        *,
        participants: int = 12,
        threshold: int = 4,
        algorithm_factory=TwoTBins,
        seed: int = 0,
    ) -> None:
        if participants < 1:
            raise ValueError(f"participants must be >= 1, got {participants}")
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self._participants = participants
        self._threshold = threshold
        self._algorithm_factory = algorithm_factory
        self._seed = seed

    def run_rate(
        self, rate_per_ms: float, *, runs: int = 100
    ) -> InterferenceStudyResult:
        """Measure tcast's error profile at one interference rate.

        Args:
            rate_per_ms: Mean interference frames per millisecond.
            runs: tcast sessions to execute.
        """
        fn = fp = 0
        frames = 0
        queries: List[int] = []
        for run_idx in range(runs):
            cell_seed = derive_seed(self._seed, f"rate{rate_per_ms}/r{run_idx}")
            tb = Testbed(
                TestbedConfig(
                    num_participants=self._participants, seed=cell_seed
                )
            )
            source = InterferenceSource(tb, rate_per_ms=rate_per_ms)
            rng = np.random.default_rng(derive_seed(cell_seed, "workload"))
            x = int(rng.integers(0, self._participants + 1))
            positives = (
                rng.choice(self._participants, size=x, replace=False)
                if x
                else []
            )
            tb.configure_positives(int(p) for p in positives)
            tb.reboot_all()
            algo: ThresholdAlgorithm = self._algorithm_factory()
            run = tb.run_threshold_query(algo, self._threshold)
            fn += run.false_negative
            fp += run.false_positive
            frames += source.frames_injected
            queries.append(run.result.queries)
        return InterferenceStudyResult(
            rate_per_ms=rate_per_ms,
            runs=runs,
            false_negatives=fn,
            false_positives=fp,
            mean_queries=float(np.mean(queries)) if queries else 0.0,
            frames_injected=frames,
        )

    def sweep(
        self, rates: Sequence[float], *, runs: int = 100
    ) -> List[InterferenceStudyResult]:
        """Run :meth:`run_rate` across a rate grid."""
        return [self.run_rate(rate, runs=runs) for rate in rates]
