"""Extensions beyond the paper's core evaluation.

The paper names two follow-on directions; both are implemented here so
the claims about them are testable:

* :mod:`repro.ext.multihop` -- tcast under interfering traffic from
  neighbouring regions (the planned Kansei-testbed experiment): an
  interference source attached to the packet-level channel.  Backcast's
  claimed asymmetry -- interference can cause false *negatives* but never
  false *positives* -- is measured directly.
* :mod:`repro.ext.rfid` -- the RFID inventory mapping (Sec I/II-C):
  threshold queries over tag populations via select-mask RCD queries,
  against a framed-slotted-ALOHA (EPC Gen2-style) full-inventory
  baseline.
"""

from repro.ext.multihop import InterferenceSource, InterferenceStudy
from repro.ext.rfid import (
    Gen2InventoryBaseline,
    RfidThresholdReader,
    TagPopulation,
)

__all__ = [
    "Gen2InventoryBaseline",
    "InterferenceSource",
    "InterferenceStudy",
    "RfidThresholdReader",
    "TagPopulation",
]
