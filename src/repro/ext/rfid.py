"""RFID inventory mapping of tcast (Sec I / II-C / VII).

RFID readers face the same problem shape as WSN initiators: a dense,
unknown population of responders and questions like "are at least ``t``
tags of class C present?".  A reader's *select mask* plays the role of a
bin (only matching tags respond), and "some tag responded in the slot"
is exactly the 1+ RCD observation.

Two query engines are provided:

* :class:`RfidThresholdReader` -- tcast over select-mask bins: answers
  the threshold question in ``O(t log(N/2t))`` slots without ever
  singulating tags.
* :class:`Gen2InventoryBaseline` -- an EPC-Gen2-style framed slotted
  ALOHA inventory with Q-adaptation that singulates *every* matching tag
  (the traditional way to answer any counting question), costing a few
  slots per tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.base import ThresholdAlgorithm
from repro.core.result import ThresholdResult
from repro.core.two_t_bins import TwoTBins
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population


@dataclass(frozen=True)
class TagPopulation:
    """An RFID tag population with a hidden matching subset.

    Attributes:
        size: Total number of tags in read range.
        matching: Tag indices matching the queried class (EPC prefix).
    """

    size: int
    matching: frozenset[int]

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")
        bad = [t for t in self.matching if not 0 <= t < self.size]
        if bad:
            raise ValueError(f"tag ids {sorted(bad)} outside [0, {self.size})")

    @property
    def x(self) -> int:
        """Number of matching tags."""
        return len(self.matching)

    def as_population(self) -> Population:
        """View as a group-testing :class:`Population`."""
        return Population(size=self.size, positives=self.matching)

    @classmethod
    def random(
        cls, size: int, x: int, rng: np.random.Generator
    ) -> "TagPopulation":
        """``x`` uniformly random matching tags out of ``size``."""
        if not 0 <= x <= size:
            raise ValueError(f"x must be in [0, {size}], got {x}")
        chosen = rng.choice(size, size=x, replace=False) if x else []
        return cls(size=size, matching=frozenset(int(v) for v in chosen))


class RfidThresholdReader:
    """Threshold queries over tags via tcast select-mask bins.

    Args:
        algorithm: The tcast algorithm to run (default 2tBins).

    Each select-mask query costs one reader slot, so the returned
    ``queries`` field is directly comparable with the baseline's slots.
    """

    def __init__(self, algorithm: Optional[ThresholdAlgorithm] = None) -> None:
        self._algorithm = algorithm or TwoTBins()

    def threshold_query(
        self,
        tags: TagPopulation,
        threshold: int,
        rng: np.random.Generator,
    ) -> ThresholdResult:
        """Answer "are >= t matching tags present?" in reader slots."""
        model = OnePlusModel(tags.as_population(), rng)
        return self._algorithm.decide(model, threshold, rng)


@dataclass(frozen=True)
class InventoryOutcome:
    """Result of a full framed-slotted-ALOHA inventory.

    Attributes:
        tags_read: Matching tags singulated.
        slots: Total reader slots consumed.
        rounds: ALOHA frames executed.
    """

    tags_read: int
    slots: int
    rounds: int

    def threshold_answer(self, threshold: int) -> bool:
        """The threshold answer implied by the full count."""
        return self.tags_read >= threshold


class Gen2InventoryBaseline:
    """EPC-Gen2-style framed slotted ALOHA with Q adaptation.

    Each frame has ``2**q`` slots; every unread matching tag picks one
    uniformly.  Singleton slots singulate their tag; collision slots
    leave their tags for later frames.  ``q`` adapts between frames
    toward the estimated backlog (collisions over-subscribe the frame,
    empties waste it).

    Args:
        initial_q: Starting frame exponent (Gen2 default 4).
        max_rounds: Safety cap on ALOHA frames.
        early_exit_threshold: If given, stop as soon as this many tags
            have been read (the fair way to use an inventory protocol for
            a threshold query with answer *true*; the *false* answer
            still requires draining every tag).
    """

    def __init__(
        self,
        *,
        initial_q: int = 4,
        max_rounds: int = 10_000,
        early_exit_threshold: Optional[int] = None,
    ) -> None:
        if not 0 <= initial_q <= 15:
            raise ValueError(f"initial_q must be 0..15, got {initial_q}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        if early_exit_threshold is not None and early_exit_threshold < 0:
            raise ValueError("early_exit_threshold must be >= 0")
        self._initial_q = initial_q
        self._max_rounds = max_rounds
        self._early_exit = early_exit_threshold

    def inventory(
        self, tags: TagPopulation, rng: np.random.Generator
    ) -> InventoryOutcome:
        """Run the inventory until every matching tag is read (or the
        early-exit threshold is hit).

        Raises:
            RuntimeError: If the round cap trips (never with sane q).
        """
        unread = tags.x
        slots = 0
        rounds = 0
        q = self._initial_q
        read = 0
        while unread > 0:
            if rounds >= self._max_rounds:
                raise RuntimeError(
                    f"inventory did not drain in {self._max_rounds} frames"
                )
            rounds += 1
            frame = 2**q
            choices = rng.integers(0, frame, size=unread)
            counts = np.bincount(choices, minlength=frame)
            singles = int((counts == 1).sum())
            collisions = int((counts > 1).sum())
            slots += frame
            read += singles
            unread -= singles
            if self._early_exit is not None and read >= self._early_exit:
                break
            # Q adaptation: grow on heavy collision, shrink on waste.
            if collisions > frame // 4:
                q = min(15, q + 1)
            elif singles + collisions < frame // 4:
                q = max(0, q - 1)
        return InventoryOutcome(tags_read=read, slots=slots, rounds=rounds)

    def threshold_query(
        self,
        tags: TagPopulation,
        threshold: int,
        rng: np.random.Generator,
    ) -> ThresholdResult:
        """Answer the threshold question via (early-exiting) inventory."""
        engine = Gen2InventoryBaseline(
            initial_q=self._initial_q,
            max_rounds=self._max_rounds,
            early_exit_threshold=threshold,
        )
        outcome = engine.inventory(tags, rng)
        return ThresholdResult(
            decision=outcome.tags_read >= threshold,
            queries=outcome.slots,
            rounds=outcome.rounds,
            threshold=threshold,
            exact=True,
            algorithm="Gen2Inventory",
        )
