"""tcast: the threshold-querying algorithm family (the paper's contribution).

Exact algorithms (always-correct under ideal radios):

* :class:`~repro.core.two_t_bins.TwoTBins` -- Algorithm 1 (Sec IV-A).
* :class:`~repro.core.exponential.ExponentialIncrease` -- Algorithm 2
  (Sec IV-B).
* :class:`~repro.core.abns.Abns` -- Algorithm 3, adaptive bin number
  selection (Sec V-B).
* :class:`~repro.core.abns.ProbabilisticAbns` -- ABNS with a sampled
  probe choosing ``p0`` (Sec V-D).
* :class:`~repro.core.oracle.OracleBins` -- the lower-bound baseline with
  perfect knowledge of ``x`` (Sec V-C).
* :mod:`~repro.core.variations` -- the pause-and-continue and four-fold
  variations the paper tried and excluded (kept here as ablations).

Probabilistic algorithm (bounded error, O(1) queries):

* :class:`~repro.core.probabilistic.ProbabilisticThreshold` -- the
  bimodal sampling scheme of Sec VI.

Reliability layer (beyond the paper; see DESIGN.md "Fault model &
reliability knobs"):

* :class:`~repro.core.reliable.ReliableThreshold` -- wraps any exact
  algorithm with a silence-confirmation :class:`~repro.core.reliable.RetryPolicy`
  (:class:`~repro.core.reliable.KRepeatConfirm`,
  :class:`~repro.core.reliable.ChernoffConfirm`), attaching
  :class:`~repro.core.result.ReliabilityInfo` degradation metadata.
"""

from repro.core.abns import Abns, AbnsBinPolicy, ProbabilisticAbns
from repro.core.base import (
    BatchThresholdDecider,
    ThresholdAlgorithm,
    ThresholdDecider,
)
from repro.core.counting import AdaptiveSplittingCounter, CountResult
from repro.core.estimator import PositiveCountEstimator
from repro.core.exponential import ExponentialIncrease
from repro.core.interval import BandResult, IntervalQuery, IntervalResult
from repro.core.oracle import OracleBins
from repro.core.probabilistic import ProbabilisticDecision, ProbabilisticThreshold
from repro.core.reliable import (
    ChernoffConfirm,
    ConfirmingModel,
    KRepeatConfirm,
    NoRetry,
    ReliableThreshold,
    RetryPolicy,
)
from repro.core.result import ReliabilityInfo, RoundRecord, ThresholdResult
from repro.core.two_t_bins import TwoTBins
from repro.core.variations import FourFoldIncrease, PauseAndContinue

__all__ = [
    "Abns",
    "AdaptiveSplittingCounter",
    "BatchThresholdDecider",
    "ChernoffConfirm",
    "ConfirmingModel",
    "CountResult",
    "AbnsBinPolicy",
    "ExponentialIncrease",
    "BandResult",
    "FourFoldIncrease",
    "IntervalQuery",
    "IntervalResult",
    "KRepeatConfirm",
    "NoRetry",
    "OracleBins",
    "PauseAndContinue",
    "PositiveCountEstimator",
    "ProbabilisticAbns",
    "ProbabilisticDecision",
    "ProbabilisticThreshold",
    "ReliabilityInfo",
    "ReliableThreshold",
    "RetryPolicy",
    "RoundRecord",
    "ThresholdAlgorithm",
    "ThresholdDecider",
    "ThresholdResult",
    "TwoTBins",
]
