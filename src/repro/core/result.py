"""Result records for threshold-querying sessions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class RoundRecord:
    """Per-round audit record.

    Attributes:
        index: Zero-based round number.
        bins_requested: Bin count the algorithm asked for.
        bins_queried: Bins actually queried (zero-member bins are never
            queried and a mid-round termination stops early).
        silent_bins: Bins observed silent this round.
        captured: Replies decoded this round (2+ model only).
        evidence: Sum of the sound per-bin positive lower bounds observed
            this round, *excluding* captured nodes (those move to the
            persistent confirmed count).
        eliminated: Candidate nodes removed this round (silent-bin members
            plus captured nodes).
        candidates_after: Candidate-set size at the end of the round.
        p_estimate: ABNS's positive-count estimate used to size this
            round's bins (``None`` for non-adaptive algorithms).
    """

    index: int
    bins_requested: int
    bins_queried: int
    silent_bins: int
    captured: int
    evidence: int
    eliminated: int
    candidates_after: int
    p_estimate: Optional[float] = None


@dataclass(frozen=True)
class ReliabilityInfo:
    """Degradation metadata attached by the reliable-query layer.

    Records how much extra work the :mod:`repro.core.reliable` wrappers
    spent defending the verdict and how trustworthy the answer remains
    under the assumed fault model.

    Attributes:
        retries: Extra bin queries spent confirming suspicious verdicts.
        recovered_faults: Verdicts that changed under re-query (a silent
            read that turned out active) -- detected-and-recovered faults.
        accepted_silent_bins: Non-empty-candidate bins whose silent
            verdict was accepted after confirmation; each contributes to
            the residual false-negative bound.
        residual_fn_bound: Upper bound on the probability this session's
            *false* verdict is wrong, under the policy's assumed
            single-miss probability (``None`` when the policy assumes
            none, ``0.0`` for a *true* verdict -- RCD cannot fabricate
            activity).
        timeouts: Session attempts abandoned on a control-plane deadline.
        reboots: Testbed-wide reboots issued to clear a wedged session.
    """

    retries: int = 0
    recovered_faults: int = 0
    accepted_silent_bins: int = 0
    residual_fn_bound: Optional[float] = None
    timeouts: int = 0
    reboots: int = 0

    @property
    def degraded(self) -> bool:
        """Whether the session saw any fault, timeout, or reboot."""
        return bool(self.recovered_faults or self.timeouts or self.reboots)


@dataclass(frozen=True)
class ThresholdResult:
    """Outcome of one threshold-querying session.

    Attributes:
        decision: The algorithm's answer to ``x >= t``.
        queries: Total charged query cost (the paper's y-axis).
        rounds: Number of (possibly partial) rounds executed.
        threshold: The queried threshold ``t``.
        confirmed_positives: Positives individually identified via capture
            (2+ model); 0 under the 1+ model.
        exact: ``True`` for the always-correct algorithms; ``False`` for
            the probabilistic scheme whose answer carries an error bound.
        history: Per-round audit records.
        algorithm: Name of the producing algorithm.
        reliability: Degradation metadata when the session ran under a
            :mod:`repro.core.reliable` wrapper; ``None`` otherwise.
    """

    decision: bool
    queries: int
    rounds: int
    threshold: int
    confirmed_positives: int = 0
    exact: bool = True
    history: Tuple[RoundRecord, ...] = field(default_factory=tuple)
    algorithm: str = ""
    reliability: Optional[ReliabilityInfo] = None

    def __post_init__(self) -> None:
        if self.queries < 0:
            raise ValueError(f"queries must be >= 0, got {self.queries}")
        if self.rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {self.rounds}")

    @property
    def eliminated_total(self) -> int:
        """Total candidates eliminated across all recorded rounds."""
        return sum(r.eliminated for r in self.history)

    def summary(self) -> str:
        """One-line human-readable summary."""
        verdict = "x >= t" if self.decision else "x < t"
        tail = ""
        if self.reliability is not None and self.reliability.degraded:
            tail = " [degraded]"
        return (
            f"{self.algorithm or 'threshold-query'}: {verdict} "
            f"(t={self.threshold}) in {self.queries} queries / "
            f"{self.rounds} rounds{tail}"
        )
