"""The probabilistic threshold-querying scheme for bimodal workloads
(Sec VI).

When the positive count ``x`` is known a priori to follow a *bimodal*
distribution -- either a handful of false detections (``x <= t_l``) or a
genuine event with many detections (``x >= t_r``) -- the threshold query
can be answered in **O(1)** queries, independent of ``n``, ``x`` and ``t``:

1. Sample a probe bin by including every node independently with
   probability ``1/b`` (nodes self-select; the initiator never learns the
   membership, so the probe is charged whether or not the bin happens to
   be empty).
2. Query it; a non-empty probe is evidence for the activity mode.
3. Repeat ``r`` times and compare the non-empty count against the midpoint
   ``(m1 + m2) / 2`` of the two modes' expectations (Eqs 8a/8b).

The repeat count ``r`` comes from the Chernoff bound of Eqs 9/10, and the
probe size ``b`` from the gap-maximising choice in
:mod:`repro.analytic.chernoff`.  Unlike the exact algorithms the answer
carries an error probability -- at most ``delta`` when the modes really
are separated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analytic.bimodal import BimodalSpec, SeparationAnalysis, analyze_separation
from repro.core.result import ThresholdResult
from repro.group_testing.binning import sample_bins
from repro.group_testing.model import QueryModel
from repro.group_testing.vectorized import BatchDecision, QueryBatch, run_probes


@dataclass(frozen=True)
class ProbabilisticDecision:
    """Extended outcome of a probabilistic session.

    Attributes:
        result: The standard :class:`ThresholdResult` (``exact=False``).
        nonempty_probes: How many of the ``r`` probes were non-empty.
        repeats: The number of probes ``r`` used.
        midpoint: The decision threshold on the non-empty count.
        analysis: The separation analysis that sized the probes.
    """

    result: ThresholdResult
    nonempty_probes: int
    repeats: int
    midpoint: float
    analysis: SeparationAnalysis


class ProbabilisticThreshold:
    """Constant-query bimodal threshold querying (Sec VI).

    Args:
        spec: The assumed bimodal distribution of ``x`` (system model /
            deployment history).
        delta: Target overall failure probability; used to size ``r`` via
            Eq 10 when ``repeats`` is not given explicitly.
        repeats: Explicit repeat count ``r`` (overrides ``delta`` sizing;
            Fig 9 sweeps this directly).

    Raises:
        ValueError: If neither a feasible spec+delta nor an explicit
            ``repeats`` determines ``r``.
    """

    name = "ProbModel"

    def __init__(
        self,
        spec: BimodalSpec,
        *,
        delta: Optional[float] = 0.05,
        repeats: Optional[int] = None,
    ) -> None:
        self._spec = spec
        self._analysis = analyze_separation(spec)
        if repeats is not None:
            if repeats < 1:
                raise ValueError(f"repeats must be >= 1, got {repeats}")
            self._repeats = int(repeats)
        else:
            if delta is None:
                raise ValueError("either delta or repeats must be given")
            if self._analysis.feasible:
                self._repeats = self._analysis.repeats(delta)
            else:
                # Unseparated modes: Eq 10 is inapplicable; fall back to a
                # small fixed budget so the failure mode can be *measured*
                # (Fig 9's low-d points) instead of raising.
                self._repeats = 9
        self._delta = delta

    @property
    def repeats(self) -> int:
        """The probe budget ``r`` this session will spend."""
        return self._repeats

    @property
    def analysis(self) -> SeparationAnalysis:
        """The separation analysis backing the probe design."""
        return self._analysis

    def decide(
        self,
        model: QueryModel,
        threshold: int,
        rng: np.random.Generator,
        *,
        candidates: Optional[Sequence[int]] = None,
    ) -> ThresholdResult:
        """Standard algorithm interface; see :meth:`decide_detailed`."""
        return self.decide_detailed(
            model, threshold, rng, candidates=candidates
        ).result

    def decide_detailed(
        self,
        model: QueryModel,
        threshold: int,
        rng: np.random.Generator,
        *,
        candidates: Optional[Sequence[int]] = None,
    ) -> ProbabilisticDecision:
        """Run the ``r`` probes and return the full decision record.

        Args:
            model: Query oracle.
            threshold: The threshold ``t`` (must sit between the modes for
                the scheme's guarantee to be meaningful; the decision is
                really "activity vs no activity").
            rng: Randomness for probe sampling.
            candidates: Participant ids; defaults to the whole population.

        Returns:
            A :class:`ProbabilisticDecision` whose ``result.exact`` is
            ``False``.
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        ids = (
            list(range(model.population_size))
            if candidates is None
            else list(candidates)
        )
        inclusion = 1.0 / self._analysis.bins if ids else 0.0
        inclusion = min(1.0, max(0.0, inclusion))

        # The probe set is non-adaptive, so all bins can be sampled in one
        # vectorized draw and answered in one batch.  The sampling rng and
        # the model's rng are separate generators, so the reordering
        # (sample all, then query all) is bit-identical to the interleaved
        # per-probe loop it replaces.
        start_queries = model.queries_used
        probes = sample_bins(ids, inclusion, self._repeats, rng)
        query_batch = getattr(model, "query_batch", None)
        if callable(query_batch):
            observations = query_batch(probes)
        else:
            observations = [model.query(members) for members in probes]
        nonempty = sum(1 for obs in observations if not obs.silent)

        midpoint = self._analysis.decision_midpoint(self._repeats)
        decision = nonempty > midpoint
        result = ThresholdResult(
            decision=decision,
            queries=model.queries_used - start_queries,
            rounds=self._repeats,
            threshold=threshold,
            confirmed_positives=0,
            exact=False,
            history=(),
            algorithm=self.name,
        )
        return ProbabilisticDecision(
            result=result,
            nonempty_probes=nonempty,
            repeats=self._repeats,
            midpoint=midpoint,
            analysis=self._analysis,
        )

    def decide_batch(self, batch: QueryBatch) -> BatchDecision:
        """Vectorized cell execution; bit-identical to :meth:`decide`.

        The probe set is non-adaptive, so each run is one inclusion
        matrix drawn on the bins stream plus a row reduction; the probe
        kernel replays exactly the :func:`sample_bins` draw.
        """
        inclusion = 1.0 / self._analysis.bins if batch.n else 0.0
        inclusion = min(1.0, max(0.0, inclusion))
        return run_probes(
            batch,
            repeats=self._repeats,
            inclusion=inclusion,
            midpoint=self._analysis.decision_midpoint(self._repeats),
        )
