"""Online estimation of the positive count ``p`` (Sec V-A, Eq 6).

ABNS sizes each round's bins from a running estimate of ``x``.  After a
round with ``b`` queried bins of which ``e_real`` were empty, Eq 6 inverts
the expected-empty-bin formula::

    p = (log e_real - log b) / log(1 - 1/b)

The raw inversion is singular at ``e_real = 0`` (all bins non-empty, which
suggests "many positives"); :func:`repro.analytic.bins.estimate_positives`
substitutes half a bin, producing a large-but-finite estimate so the next
round escalates its bin count.  This class adds clamping to the surviving
candidate count and keeps the estimate history for diagnostics.
"""

from __future__ import annotations

from typing import List

from repro.analytic.bins import estimate_positives


class PositiveCountEstimator:
    """Running estimate of the number of positive nodes.

    Args:
        initial: The prior ``p0`` (the paper uses ``t`` or ``2t``; the
            probabilistic probe of Sec V-D supplies ``t/4``).

    Attributes:
        value: Current estimate (read-only property).
    """

    def __init__(self, initial: float) -> None:
        if initial < 0:
            raise ValueError(f"initial estimate must be >= 0, got {initial}")
        self._value = float(initial)
        self._history: List[float] = [float(initial)]

    @property
    def value(self) -> float:
        """The current ``p`` estimate."""
        return self._value

    @property
    def history(self) -> List[float]:
        """All estimates, starting with ``p0`` (copy)."""
        return list(self._history)

    def update(self, empty_bins: int, bins_queried: int, candidates: int) -> float:
        """Refresh the estimate from one finished round (Eq 6).

        Args:
            empty_bins: Bins observed silent in the round.
            bins_queried: Bins actually queried (the effective ``b``).
            candidates: Surviving candidate count -- the estimate cannot
                exceed it, since eliminated nodes are certainly negative.

        Returns:
            The new estimate.

        Raises:
            ValueError: If ``bins_queried < 1`` or counts are inconsistent.
        """
        if bins_queried < 1:
            raise ValueError(
                f"bins_queried must be >= 1, got {bins_queried}"
            )
        if not 0 <= empty_bins <= bins_queried:
            raise ValueError(
                f"empty_bins must be in [0, {bins_queried}], got {empty_bins}"
            )
        if candidates < 0:
            raise ValueError(f"candidates must be >= 0, got {candidates}")
        self._value = estimate_positives(
            empty_bins, bins_queried, max_estimate=float(candidates)
        )
        self._history.append(self._value)
        return self._value

    def escalate(self, floor: float) -> float:
        """Force the estimate up to at least ``floor`` (stagnation guard).

        Used when a round makes no progress: the evidence says "more
        positives than we thought", so the estimate is raised directly
        rather than waiting for Eq 6 to climb over several rounds.
        """
        if floor > self._value:
            self._value = float(floor)
            self._history.append(self._value)
        return self._value
