"""The 2tBins algorithm (Algorithm 1, Sec IV-A).

Every round partitions the surviving candidates into ``2t`` equal-sized
random bins and queries them one after another.  A silent bin eliminates
its members; ``t`` non-empty bins within a round prove the threshold;
fewer than ``t`` surviving candidates disprove it.  An unresolved full
round therefore saw at least ``t + 1`` silent bins, so the candidate set
at least roughly halves, giving the ``2t * log(N / 2t)`` worst-case query
bound of Sec IV-A.
"""

from __future__ import annotations

from repro.core.base import SessionState, ThresholdAlgorithm
from repro.group_testing.vectorized import BatchDecision, QueryBatch, run_lockstep


class TwoTBins(ThresholdAlgorithm):
    """Algorithm 1: fixed ``2t`` bins per round.

    Example:
        >>> import numpy as np
        >>> from repro.group_testing import OnePlusModel, Population
        >>> rng = np.random.default_rng(0)
        >>> model = OnePlusModel(Population.from_count(64, 20), rng)
        >>> result = TwoTBins().decide(model, threshold=8, rng=rng)
        >>> result.decision
        True
    """

    name = "2tBins"

    def _bins_for_round(self, state: SessionState) -> int:
        """Always ``2t`` bins (at least 2, for the degenerate ``t=1``... ``2t=2``)."""
        return max(2, 2 * state.threshold)

    def decide_batch(self, batch: QueryBatch) -> BatchDecision:
        """Vectorized cell execution; bit-identical to :meth:`decide`.

        The bin count is a constant of the session, so the whole cell
        runs on the lockstep kernel.
        """
        bins = max(2, 2 * batch.threshold)
        return run_lockstep(
            batch,
            lambda round_index: bins,
            partition_strategy=self.partition_strategy,
            algorithm=self.name,
        )
