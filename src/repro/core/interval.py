"""Interval queries and band classification built on threshold sessions.

The threshold primitive generalises immediately to two useful composites
the applications section of the paper gestures at (classification by
counting detections):

* :meth:`IntervalQuery.decide` -- "is ``lo <= x < hi``?", the conjunction
  of one threshold query and one negated threshold query;
* :meth:`IntervalQuery.classify` -- which of ``len(boundaries)+1`` bands
  does ``x`` fall into, resolved by a binary search over the boundaries
  (``ceil(log2(#bands))`` threshold sessions).

Both run over any :class:`~repro.group_testing.model.QueryModel` and any
exact tcast algorithm; the shared model ledger accumulates the total
query cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.base import ThresholdAlgorithm
from repro.core.two_t_bins import TwoTBins
from repro.group_testing.model import QueryModel


@dataclass(frozen=True)
class IntervalResult:
    """Outcome of one interval query.

    Attributes:
        in_interval: Whether ``lo <= x < hi``.
        at_least_lo: The lower threshold session's verdict (``x >= lo``).
        below_hi: The upper session's verdict (``x < hi``); ``True`` by
            construction when the lower verdict already settled the
            question.
        queries: Total charged query cost of the composite.
    """

    in_interval: bool
    at_least_lo: bool
    below_hi: bool
    queries: int


@dataclass(frozen=True)
class BandResult:
    """Outcome of a band classification.

    Attributes:
        band: Index of the band ``x`` falls into: band ``i`` is
            ``[boundaries[i-1], boundaries[i])`` with band 0 below the
            first boundary and the last band at or above the final one.
        queries: Total charged query cost.
        sessions: Threshold sessions executed.
    """

    band: int
    queries: int
    sessions: int


class IntervalQuery:
    """Composite interval/band queries over a tcast algorithm.

    Args:
        algorithm_factory: Builds a fresh exact algorithm per threshold
            session (default: 2tBins).
    """

    def __init__(
        self,
        algorithm_factory: Optional[Callable[[], ThresholdAlgorithm]] = None,
    ) -> None:
        self._factory = algorithm_factory or TwoTBins

    def decide(
        self,
        model: QueryModel,
        lo: int,
        hi: int,
        rng: np.random.Generator,
    ) -> IntervalResult:
        """Answer ``lo <= x < hi``.

        Args:
            model: The query oracle.
            lo: Inclusive lower bound (``>= 0``).
            hi: Exclusive upper bound (``> lo``).
            rng: Randomness for bin assignment.

        Raises:
            ValueError: If the interval is empty or negative.
        """
        if lo < 0:
            raise ValueError(f"lo must be >= 0, got {lo}")
        if hi <= lo:
            raise ValueError(f"need lo < hi, got [{lo}, {hi})")
        start = model.queries_used
        lower = self._factory().decide(model, lo, rng)
        if not lower.decision:
            return IntervalResult(
                in_interval=False,
                at_least_lo=False,
                below_hi=True,
                queries=model.queries_used - start,
            )
        upper = self._factory().decide(model, hi, rng)
        return IntervalResult(
            in_interval=not upper.decision,
            at_least_lo=True,
            below_hi=not upper.decision,
            queries=model.queries_used - start,
        )

    def classify(
        self,
        model: QueryModel,
        boundaries: Sequence[int],
        rng: np.random.Generator,
    ) -> BandResult:
        """Locate ``x`` among the bands cut by ``boundaries``.

        Binary search: each probe is one threshold session at a median
        boundary, so ``ceil(log2(len(boundaries)+1))`` sessions suffice.

        Args:
            model: The query oracle.
            boundaries: Strictly increasing positive thresholds.
            rng: Randomness for bin assignment.

        Raises:
            ValueError: If boundaries are empty, non-increasing, or
                non-positive.
        """
        if not boundaries:
            raise ValueError("need at least one boundary")
        cuts = [int(b) for b in boundaries]
        if any(b <= 0 for b in cuts):
            raise ValueError(f"boundaries must be positive, got {cuts}")
        if any(a >= b for a, b in zip(cuts, cuts[1:])):
            raise ValueError(f"boundaries must be strictly increasing: {cuts}")

        start = model.queries_used
        sessions = 0
        lo_band, hi_band = 0, len(cuts)  # band index range, inclusive
        while lo_band < hi_band:
            mid = (lo_band + hi_band) // 2
            # Band > mid iff x >= cuts[mid].
            sessions += 1
            verdict = self._factory().decide(model, cuts[mid], rng)
            if verdict.decision:
                lo_band = mid + 1
            else:
                hi_band = mid
        return BandResult(
            band=lo_band,
            queries=model.queries_used - start,
            sessions=sessions,
        )
