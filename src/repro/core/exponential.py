"""The Exponential Increase algorithm (Algorithm 2, Sec IV-B).

2tBins is wasteful when ``x << t`` (it pays ``2t`` queries in the very
first round even when one bin would have revealed near-total silence).
Exponential Increase starts with ``binNum = 2`` and doubles the bin count
after every round: early rounds eliminate large negative swaths cheaply,
and the doubling catches up with the ``x >> t`` regime within ``log``
rounds.
"""

from __future__ import annotations

from repro.core.base import RoundOutcome, SessionState, ThresholdAlgorithm
from repro.group_testing.vectorized import BatchDecision, QueryBatch, run_lockstep


class ExponentialIncrease(ThresholdAlgorithm):
    """Algorithm 2: bin count starts at 2 and doubles each round.

    Args:
        initial_bins: First-round bin count (the paper uses 2).
        growth: Multiplicative per-round growth factor (the paper uses 2;
            the four-fold ablation of Sec IV-B lives in
            :mod:`repro.core.variations`).
        max_bins: Optional cap on the bin count; ``None`` lets it grow to
            the candidate count (querying singletons at most).  At run
            time the cap is floored at the session's threshold ``t`` --
            with fewer than ``t`` bins a round can never exhibit ``t``
            non-empty bins, so a lower cap would make true instances
            undecidable.
    """

    name = "ExpIncrease"

    def __init__(
        self,
        *,
        initial_bins: int = 2,
        growth: int = 2,
        max_bins: int | None = None,
    ) -> None:
        if initial_bins < 1:
            raise ValueError(f"initial_bins must be >= 1, got {initial_bins}")
        if growth < 2:
            raise ValueError(f"growth must be >= 2, got {growth}")
        if max_bins is not None and max_bins < initial_bins:
            raise ValueError(
                f"max_bins ({max_bins}) must be >= initial_bins ({initial_bins})"
            )
        self._initial_bins = initial_bins
        self._growth = growth
        self._max_bins = max_bins
        self._bin_num = initial_bins

    def _reset(self, state: SessionState) -> None:
        self._bin_num = self._initial_bins

    def _bins_for_round(self, state: SessionState) -> int:
        if self._max_bins is not None:
            # Completeness floor: never cap below the threshold.
            return min(self._bin_num, max(self._max_bins, state.threshold))
        return self._bin_num

    def _observe_round(self, state: SessionState, outcome: RoundOutcome) -> None:
        nxt = self._bin_num * self._growth
        if self._max_bins is not None:
            nxt = min(nxt, max(self._max_bins, state.threshold))
        self._bin_num = nxt

    def decide_batch(self, batch: QueryBatch) -> BatchDecision:
        """Vectorized cell execution; bit-identical to :meth:`decide`.

        The geometric doubling depends on nothing but the round index
        (the cap only ever clamps, so capping the *schedule* equals
        capping the doubling state), which makes the bin policy a pure
        schedule the lockstep kernel can replay.
        """
        initial, growth = self._initial_bins, self._growth
        cap = (
            max(self._max_bins, batch.threshold)
            if self._max_bins is not None
            else None
        )

        def schedule(round_index: int) -> int:
            # Clamp the exponent: beyond 2**63 bins the effective count
            # is the candidate count either way, and the clamp keeps the
            # Python ints small on pathological round counts.
            bins = initial * growth ** min(round_index, 63)
            return bins if cap is None else min(bins, cap)

        return run_lockstep(
            batch,
            schedule,
            partition_strategy=self.partition_strategy,
            algorithm=self.name,
        )
