"""Exact positive counting via adaptive group splitting.

The paper distinguishes its goal from classic group testing (Sec III):
group testing identifies *which* nodes are positive, threshold querying
only resolves ``x >= t``.  This module implements the classic adaptive
splitting counter (binary splitting in the style of Du & Hwang) over the
same RCD query models, so the cost gap between "count everything" and
"answer the threshold" can be measured directly -- the quantitative
version of the paper's motivation.

Cost is ``O(x log(N/x))`` queries: each positive is isolated by a binary
search over its segment; silent segments are discarded wholesale.  Under
the 2+ model a captured reply short-circuits one binary search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.group_testing.model import ObservationKind, QueryModel


@dataclass(frozen=True)
class CountResult:
    """Outcome of an exact-counting session.

    Attributes:
        count: Number of positives found (exact when ``stop_at`` was not
            hit; a certified lower bound otherwise).
        queries: Total charged query cost.
        complete: ``True`` when every candidate was resolved; ``False``
            when the session stopped early at ``stop_at``.
        positives: The identified positive node ids (sorted).
    """

    count: int
    queries: int
    complete: bool
    positives: tuple[int, ...]


class AdaptiveSplittingCounter:
    """Exact counting of positives over an RCD query model.

    Args:
        shuffle: Randomise the candidate order before splitting, which
            decorrelates segment boundaries from node ids (matching the
            random-binning spirit of the tcast algorithms).
        verify_inferred: The splitting inference ("head silent implies
            tail non-empty") is sound only for reliable tests.  With
            ``True``, inferred-non-empty segments are still queried
            directly before any member is counted, so every reported
            positive is backed by observed activity even under lossy
            detection (at a modest extra query cost).  Default ``False``
            (the classic algorithm; assumes ideal tests).

    Example:
        >>> import numpy as np
        >>> from repro.group_testing import OnePlusModel, Population
        >>> pop = Population.from_count(64, 5)
        >>> model = OnePlusModel(pop, np.random.default_rng(0))
        >>> counter = AdaptiveSplittingCounter()
        >>> counter.count(model, np.random.default_rng(1)).count
        5
    """

    def __init__(
        self, *, shuffle: bool = True, verify_inferred: bool = False
    ) -> None:
        self._shuffle = shuffle
        self._verify_inferred = verify_inferred

    def count(
        self,
        model: QueryModel,
        rng: np.random.Generator,
        *,
        candidates: Optional[Sequence[int]] = None,
        stop_at: Optional[int] = None,
    ) -> CountResult:
        """Count (and identify) the positive nodes.

        Args:
            model: The RCD query oracle (1+ or 2+).
            rng: Randomness for the initial shuffle.
            candidates: Node ids to count over; defaults to the model's
                whole population.
            stop_at: Optional early exit -- stop as soon as this many
                positives are certified (turns the counter into a
                threshold-query baseline).

        Returns:
            A :class:`CountResult`; ``queries`` counts only this call.

        Raises:
            ValueError: If ``stop_at`` is negative.
        """
        if stop_at is not None and stop_at < 0:
            raise ValueError(f"stop_at must be >= 0, got {stop_at}")
        ids = (
            list(range(model.population_size))
            if candidates is None
            else list(candidates)
        )
        if self._shuffle and len(ids) > 1:
            order = rng.permutation(len(ids))
            ids = [ids[i] for i in order]

        start_queries = model.queries_used
        found: List[int] = []
        # Stack entries: (segment, known_nonempty).  The standard binary-
        # splitting inference: when a known-nonempty segment's first half
        # tests silent, the second half is nonempty *for free*.
        stack: List[tuple[List[int], bool]] = [(ids, False)] if ids else []

        while stack:
            if stop_at is not None and len(found) >= stop_at:
                return CountResult(
                    count=len(found),
                    queries=model.queries_used - start_queries,
                    complete=not stack,
                    positives=tuple(sorted(found)),
                )
            segment, known = stack.pop()
            if not segment:
                continue
            if not known:
                obs = model.query(segment)
                if obs.kind is ObservationKind.SILENT:
                    continue
                if obs.kind is ObservationKind.CAPTURE:
                    # One positive identified for free; the rest of the
                    # segment may still hold more (capture effect), so it
                    # goes back with unknown status.
                    assert obs.captured_node is not None
                    found.append(obs.captured_node)
                    rest = [v for v in segment if v != obs.captured_node]
                    if rest:
                        stack.append((rest, False))
                    continue
                # Undecodable activity: segment is known nonempty.
            if len(segment) == 1:
                found.append(segment[0])
                continue
            mid = len(segment) // 2
            head, tail = segment[:mid], segment[mid:]
            obs = model.query(head)
            if obs.kind is ObservationKind.SILENT:
                # All positives of the segment sit in the tail -- by
                # inference, which lossy detection can invalidate; the
                # verifying mode downgrades it to "unknown" instead.
                stack.append((tail, not self._verify_inferred))
            elif obs.kind is ObservationKind.CAPTURE:
                assert obs.captured_node is not None
                found.append(obs.captured_node)
                rest = [v for v in head if v != obs.captured_node]
                if rest:
                    stack.append((rest, False))
                stack.append((tail, False))
            else:
                stack.append((tail, False))
                if len(head) == 1:
                    # Directly observed non-empty singleton.
                    found.append(head[0])
                else:
                    stack.append((head, True))

        return CountResult(
            count=len(found),
            queries=model.queries_used - start_queries,
            complete=True,
            positives=tuple(sorted(found)),
        )

    def threshold_query(
        self,
        model: QueryModel,
        threshold: int,
        rng: np.random.Generator,
        *,
        candidates: Optional[Sequence[int]] = None,
    ) -> bool:
        """Answer ``x >= t`` by counting with early exit.

        This is the "do group testing, then compare" strawman the paper
        improves on; kept for the counting-vs-threshold ablation bench.
        """
        if threshold == 0:
            return True
        result = self.count(
            model, rng, candidates=candidates, stop_at=threshold
        )
        return result.count >= threshold
