"""Exponential-Increase variations the paper tried and excluded (Sec IV-B).

"One variation was a *pause-and-continue* scheme which does not double the
number of groups if a significant number of nodes are eliminated in a
round ... Another variation was to increase the number of groups in the
next round to four-folds rather than two-folds ... when all groups tested
non-empty.  We experimented with both of these variations in simulations
extensively but neither of them gave a consistent improvement."

They are kept here as first-class ablations so the "no consistent
improvement" claim can be re-verified (``benchmarks/test_bench_ablations``).
"""

from __future__ import annotations

from repro.core.base import RoundOutcome, SessionState, ThresholdAlgorithm


class PauseAndContinue(ThresholdAlgorithm):
    """Exponential increase that pauses doubling after a productive round.

    Args:
        initial_bins: First-round bin count (paper's 2).
        elimination_fraction: A round that removed at least this fraction
            of the round-start candidates counts as "significant" and
            keeps the bin count unchanged for the next round.
    """

    name = "PauseAndContinue"

    def __init__(
        self,
        *,
        initial_bins: int = 2,
        elimination_fraction: float = 0.25,
    ) -> None:
        if initial_bins < 1:
            raise ValueError(f"initial_bins must be >= 1, got {initial_bins}")
        if not 0.0 < elimination_fraction <= 1.0:
            raise ValueError(
                "elimination_fraction must be in (0,1], got "
                f"{elimination_fraction}"
            )
        self._initial_bins = initial_bins
        self._fraction = elimination_fraction
        self._bin_num = initial_bins
        self._round_start_candidates = 0

    def _reset(self, state: SessionState) -> None:
        self._bin_num = self._initial_bins

    def _bins_for_round(self, state: SessionState) -> int:
        self._round_start_candidates = len(state.candidates)
        return self._bin_num

    def _observe_round(self, state: SessionState, outcome: RoundOutcome) -> None:
        start = max(1, self._round_start_candidates)
        eliminated = start - len(state.candidates)
        if eliminated / start < self._fraction:
            self._bin_num *= 2


class FourFoldIncrease(ThresholdAlgorithm):
    """Exponential increase that quadruples after an all-non-empty round.

    A round in which every queried bin was non-empty suggests the bin
    count badly underestimates ``x``, so the growth factor for the next
    round is 4 instead of 2.
    """

    name = "FourFold"

    def __init__(self, *, initial_bins: int = 2) -> None:
        if initial_bins < 1:
            raise ValueError(f"initial_bins must be >= 1, got {initial_bins}")
        self._initial_bins = initial_bins
        self._bin_num = initial_bins

    def _reset(self, state: SessionState) -> None:
        self._bin_num = self._initial_bins

    def _bins_for_round(self, state: SessionState) -> int:
        return self._bin_num

    def _observe_round(self, state: SessionState, outcome: RoundOutcome) -> None:
        factor = 4 if outcome.silent_bins == 0 else 2
        self._bin_num *= factor
