"""The reliable-query layer: retry policies over any tcast algorithm.

The RCD substrate has exactly one organic error mode: a non-empty bin can
*read silent* (missed HACK, interference, a crashed positive), which
biases exact algorithms toward false negatives (Sec IV-D).  This module
wraps any :class:`~repro.core.base.ThresholdAlgorithm` so that **silent**
verdicts -- the only unsafe ones -- are re-queried before being believed:

* :class:`KRepeatConfirm` accepts a silent verdict only after ``repeats``
  consecutive silent reads of the same bin;
* :class:`ChernoffConfirm` sizes that repeat count from a target residual
  failure probability, reusing the paper's Chernoff machinery
  (:func:`repro.analytic.chernoff.failure_probability`): with independent
  per-read miss probability ``p``, accepting after ``r`` silent reads
  leaves a residual miss of ``p**r = exp(-eps*r/2)`` at
  ``eps = 2*ln(1/p)`` -- exactly Eq 9's form.

Because a retried query is just another bin query, the wrapper works
unchanged on the abstract models *and* on the packet-level testbed
adapter (backcast re-polls an already-announced bin at per-poll cost).
The resulting :class:`~repro.core.result.ThresholdResult` carries a
:class:`~repro.core.result.ReliabilityInfo` with the retries spent,
recovered faults, and a residual false-negative bound.

On an ideal radio the wrapper is behaviour-preserving: a truly silent
bin stays silent under re-query, so the decision (and the decision
*path*) match the unwrapped algorithm -- only the charged cost grows.
"""

from __future__ import annotations

import abc
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from repro.analytic.chernoff import failure_probability
from repro.core.base import ThresholdDecider
from repro.core.result import ReliabilityInfo, ThresholdResult
from repro.group_testing.model import (
    BinObservation,
    ObservationKind,
    QueryModel,
)
from repro.obs import get_registry

#: Import-time instruments (inert until metrics are enabled); counting
#: here never draws randomness, so wrapped runs stay bit-identical.
_OBS = get_registry()
_R_RETRIES = _OBS.counter("reliable.retries")
_R_RECOVERED = _OBS.counter("reliable.recovered_faults")
_R_ACCEPTED_SILENT = _OBS.counter("reliable.accepted_silent_bins")


class RetryPolicy(abc.ABC):
    """How many silent reads it takes to believe a silent verdict."""

    #: Assumed per-read probability of missing a lone positive (used for
    #: the residual bound; ``None`` = unknown, no bound reported).
    assumed_p_single: Optional[float] = None

    @staticmethod
    def _require_nonempty(bin_size: int) -> None:
        """Reject consultations about member-less bins.

        Empty bins never occupy a time slot (Sec IV-C), so no caller may
        legitimately ask how many confirmation reads one needs --
        :meth:`ConfirmingModel.query` short-circuits them before the
        policy is consulted.
        """
        if bin_size < 1:
            raise ValueError(
                f"retry policies are never consulted for empty bins "
                f"(got bin_size={bin_size}); empty bins cost zero queries "
                "per the paper's Sec IV-C rule"
            )

    @abc.abstractmethod
    def confirmations(self, bin_size: int) -> int:
        """Total silent reads required for a bin of ``bin_size`` candidates.

        Args:
            bin_size: Number of candidate members in the queried bin
                (``>= 1``; empty bins are free and never confirmed).

        Returns:
            ``>= 1``; ``1`` means the first read is trusted outright.
        """

    def residual_miss(self, bin_size: int) -> Optional[float]:
        """Residual per-bin miss probability after confirmation.

        ``p**r`` for ``r = confirmations(bin_size)`` under the assumed
        single-miss probability; ``None`` when no assumption is held.
        """
        self._require_nonempty(bin_size)
        if self.assumed_p_single is None:
            return None
        return float(self.assumed_p_single ** self.confirmations(bin_size))


class NoRetry(RetryPolicy):
    """Trust every verdict on first read (the unwrapped behaviour)."""

    def confirmations(self, bin_size: int) -> int:
        """Always 1."""
        self._require_nonempty(bin_size)
        return 1


class KRepeatConfirm(RetryPolicy):
    """Accept silence only after a fixed number of consecutive silent reads.

    Directly targets the paper's single-positive false-negative mode:
    each extra read multiplies the residual miss probability by the
    per-read miss, so ``r`` repeats drive it down like ``miss(k)**r``.

    Args:
        repeats: Total silent reads required (``>= 1``).
        max_bin_size: Only confirm bins with at most this many candidate
            members (``None`` = all bins).  Small bins are where lone
            positives -- the dominant miss victims -- live.
        assumed_p_single: Optional per-read lone-miss probability used to
            report a residual false-negative bound.
    """

    def __init__(
        self,
        repeats: int = 2,
        *,
        max_bin_size: Optional[int] = None,
        assumed_p_single: Optional[float] = None,
    ) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        if max_bin_size is not None and max_bin_size < 1:
            raise ValueError(
                f"max_bin_size must be >= 1, got {max_bin_size}"
            )
        if assumed_p_single is not None and not 0.0 <= assumed_p_single <= 1.0:
            raise ValueError(
                f"assumed_p_single must be in [0,1], got {assumed_p_single}"
            )
        self.repeats = repeats
        self.max_bin_size = max_bin_size
        self.assumed_p_single = assumed_p_single

    def confirmations(self, bin_size: int) -> int:
        """``repeats`` for eligible bins, else 1."""
        self._require_nonempty(bin_size)
        if self.max_bin_size is not None and bin_size > self.max_bin_size:
            return 1
        return self.repeats


class ChernoffConfirm(KRepeatConfirm):
    """Chernoff-sized silence confirmation for a target residual error.

    Chooses the smallest ``r`` with ``p_single**r <= delta`` via the
    paper's Eq 9 bound: ``failure_probability(eps, r) = exp(-eps*r/2)``
    equals ``p_single**r`` at ``eps = 2*ln(1/p_single)``, so ``r`` is the
    smallest repeat count whose Eq 9 bound clears ``delta``.

    Args:
        p_single: Assumed per-read probability of missing a lone
            positive (``0 < p_single < 1``).
        delta: Target residual miss probability per accepted silent bin.
        max_bin_size: As in :class:`KRepeatConfirm`.
        max_repeats: Safety cap on the sized repeat count.
    """

    def __init__(
        self,
        p_single: float,
        *,
        delta: float = 0.01,
        max_bin_size: Optional[int] = None,
        max_repeats: int = 16,
    ) -> None:
        if not 0.0 < p_single < 1.0:
            raise ValueError(
                f"p_single must be in (0,1), got {p_single}"
            )
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        if max_repeats < 1:
            raise ValueError(f"max_repeats must be >= 1, got {max_repeats}")
        eps = 2.0 * float(np.log(1.0 / p_single))
        repeats = 1
        while (
            failure_probability(eps, repeats) > delta
            and repeats < max_repeats
        ):
            repeats += 1
        super().__init__(
            repeats,
            max_bin_size=max_bin_size,
            assumed_p_single=p_single,
        )
        self.delta = delta


class ConfirmingModel:
    """A :class:`~repro.group_testing.model.QueryModel` wrapper that
    re-queries silent bins per a :class:`RetryPolicy`.

    The wrapped algorithm never sees a silent verdict that has not
    survived the policy's confirmation count; any re-query that comes
    back non-silent is returned instead (a detected-and-recovered fault).
    Retries are charged on the underlying model's ledger, so
    ``result.queries`` reflects the true on-air cost.

    Args:
        model: The underlying query model (abstract or testbed adapter).
        policy: The confirmation policy.
    """

    def __init__(self, model: QueryModel, policy: RetryPolicy) -> None:
        self._model = model
        self._policy = policy
        self.retries = 0
        self.recovered_faults = 0
        self.accepted_silent_bins = 0
        self._residual_log1m: float = 0.0
        self._residual_known = policy.assumed_p_single is not None

    @property
    def queries_used(self) -> int:
        """Total queries charged, retries included."""
        return self._model.queries_used

    @property
    def population_size(self) -> int:
        """Participant count (delegated)."""
        return self._model.population_size

    def begin_round(self, bins: Sequence[Sequence[int]]) -> None:
        """Forward the round hook when the wrapped model has one."""
        hook = getattr(self._model, "begin_round", None)
        if hook is not None:
            hook(bins)

    def residual_fn_bound(self, decision: bool) -> Optional[float]:
        """Bound on P(wrong) for the session's final ``decision``.

        A *true* verdict cannot be wrong under RCD semantics (activity is
        never fabricated), so the bound is ``0.0``.  A *false* verdict is
        wrong only if some accepted-silent bin actually held a positive
        that was missed on every read: union bound over accepted bins,
        ``1 - prod(1 - p**r_i)``.  ``None`` when the policy holds no
        single-miss assumption.
        """
        if decision:
            return 0.0
        if not self._residual_known:
            return None
        return float(min(1.0, 1.0 - np.exp(self._residual_log1m)))

    def query(self, members: Sequence[int]) -> BinObservation:
        """Query a bin; silent verdicts are confirmed before acceptance.

        An empty bin is answered locally: per the paper's cost rule
        (Sec IV-C) a member-less bin never occupies a time slot, so the
        wrapper charges **zero** queries, performs zero confirmation
        reads, and never consults the retry policy for it.  The verdict
        is trivially silent and cannot be a missed positive, so it does
        not count toward ``accepted_silent_bins`` or the residual bound.
        """
        if not members:
            return BinObservation(kind=ObservationKind.SILENT, min_positives=0)
        obs = self._model.query(members)
        if obs.kind is not ObservationKind.SILENT:
            return obs
        needed = self._policy.confirmations(len(members))
        for _ in range(needed - 1):
            self.retries += 1
            _R_RETRIES.inc()
            again = self._model.query(members)
            if again.kind is not ObservationKind.SILENT:
                self.recovered_faults += 1
                _R_RECOVERED.inc()
                return again
        self.accepted_silent_bins += 1
        _R_ACCEPTED_SILENT.inc()
        if self._residual_known:
            residual = self._policy.residual_miss(len(members))
            if residual is not None and residual < 1.0:
                self._residual_log1m += float(np.log1p(-residual))
        return obs


class ReliableThreshold:
    """Wrap any tcast algorithm with a silence-confirmation retry policy.

    Exposes the same ``decide(model, threshold, rng)`` entry point as a
    :class:`~repro.core.base.ThresholdAlgorithm`, so it drops into every
    harness (sweep engine, testbed, serial controller) unchanged.  The
    returned result carries :class:`~repro.core.result.ReliabilityInfo`.

    Args:
        algorithm: The wrapped algorithm -- any
            :class:`~repro.core.base.ThresholdDecider`.
        policy: The retry policy (default :class:`NoRetry`, which makes
            the wrapper a transparent pass-through).

    Example:
        >>> import numpy as np
        >>> from repro.core import TwoTBins
        >>> from repro.core.reliable import ChernoffConfirm, ReliableThreshold
        >>> from repro.group_testing.model import OnePlusModel
        >>> from repro.group_testing.population import Population
        >>> rng = np.random.default_rng(0)
        >>> pop = Population.from_count(32, 8, rng)
        >>> model = OnePlusModel(pop, rng)
        >>> wrapped = ReliableThreshold(TwoTBins(), ChernoffConfirm(0.05))
        >>> result = wrapped.decide(model, 4, rng)
        >>> result.decision, result.reliability.residual_fn_bound
        (True, 0.0)
    """

    def __init__(
        self,
        algorithm: ThresholdDecider,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        self._algorithm = algorithm
        self._policy = policy if policy is not None else NoRetry()

    @property
    def name(self) -> str:
        """Composite name, e.g. ``"reliable(2tBins)"``."""
        return f"reliable({self._algorithm.name})"

    @property
    def algorithm(self) -> ThresholdDecider:
        """The wrapped algorithm."""
        return self._algorithm

    @property
    def policy(self) -> RetryPolicy:
        """The active retry policy."""
        return self._policy

    def decide(
        self,
        model: QueryModel,
        threshold: int,
        rng: np.random.Generator,
        *,
        candidates: Optional[Sequence[int]] = None,
    ) -> ThresholdResult:
        """Run the wrapped algorithm with silence confirmation.

        Args / return value match
        :meth:`repro.core.base.ThresholdAlgorithm.decide`; the result
        additionally carries ``reliability`` metadata and the composite
        algorithm name.
        """
        confirming = ConfirmingModel(model, self._policy)
        result = self._algorithm.decide(
            confirming, threshold, rng, candidates=candidates
        )
        info = ReliabilityInfo(
            retries=confirming.retries,
            recovered_faults=confirming.recovered_faults,
            accepted_silent_bins=confirming.accepted_silent_bins,
            residual_fn_bound=confirming.residual_fn_bound(result.decision),
        )
        return replace(result, algorithm=self.name, reliability=info)
