"""Adaptive Bin Number Selection -- ABNS (Algorithm 3, Sec V) and its
probabilistic-probe variant (Sec V-D).

ABNS sizes each round's bins from a running estimate ``p`` of the positive
count via Eq 4: ``b = p + 1`` -- Algorithm 3 exactly as printed, and the
default policy here (reproducing Figures 5/6 requires it: it is what makes
``ABNS(p0 = t)`` cheap at the left edge).  The alternative
:attr:`AbnsBinPolicy.HYBRID` policy switches to an oracle-style ``[t, 2t]``
interpolation once ``p >= t`` -- motivated by the paper's own remark that
Eq 4's derivation is only meaningful while ``p < t`` -- and is kept as an
ablation (``benchmarks/test_bench_ablations.py``).

After each round the estimate is refreshed from the observed empty-bin
count via Eq 6 (see :class:`repro.core.estimator.PositiveCountEstimator`),
and a stagnation guard escalates the estimate when a round makes no
progress (all bins non-empty cannot lower ``p``; without the guard the
climb can take several wasted rounds).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

import numpy as np

from repro.analytic.bins import optimal_bins
from repro.core.base import RoundOutcome, SessionState, ThresholdAlgorithm
from repro.core.estimator import PositiveCountEstimator
from repro.core.result import RoundRecord, ThresholdResult
from repro.core.two_t_bins import TwoTBins
from repro.group_testing.binning import sample_bin
from repro.group_testing.model import QueryModel


class AbnsBinPolicy(enum.Enum):
    """How ABNS maps its estimate ``p`` to a bin count."""

    PAPER = "paper"
    """``p + 1`` always -- Algorithm 3 exactly as printed (the default;
    this is what the paper's Figures 5/6 were generated with)."""

    HYBRID = "hybrid"
    """``p + 1`` while ``p < t``; oracle-style ``[t, 2t]`` interpolation
    once ``p >= t``.  An ablation alternative motivated by the paper's
    remark that Eq 4's derivation only applies in the ``p < t`` regime."""


class Abns(ThresholdAlgorithm):
    """Algorithm 3: adaptive bin number selection.

    Args:
        p0: Initial positive-count estimate.  The paper evaluates
            ``p0 = t`` and ``p0 = 2t``; pass either via
            :meth:`with_threshold_multiple` when ``t`` is not known at
            construction time.
        p0_multiple: Alternative to ``p0``: set the initial estimate to
            ``p0_multiple * t`` at decide time (e.g. 1.0 or 2.0).
        policy: Estimate-to-bin-count mapping (default PAPER).
        stagnation_limit: After this many consecutive no-progress rounds
            the estimate is escalated to ``2t`` directly.
    """

    name = "ABNS"

    def __init__(
        self,
        *,
        p0: Optional[float] = None,
        p0_multiple: Optional[float] = None,
        policy: AbnsBinPolicy = AbnsBinPolicy.PAPER,
        stagnation_limit: int = 3,
    ) -> None:
        if (p0 is None) == (p0_multiple is None):
            raise ValueError("exactly one of p0 / p0_multiple must be given")
        if p0 is not None and p0 < 0:
            raise ValueError(f"p0 must be >= 0, got {p0}")
        if p0_multiple is not None and p0_multiple < 0:
            raise ValueError(f"p0_multiple must be >= 0, got {p0_multiple}")
        if stagnation_limit < 1:
            raise ValueError(
                f"stagnation_limit must be >= 1, got {stagnation_limit}"
            )
        self._p0 = p0
        self._p0_multiple = p0_multiple
        self._policy = policy
        self._stagnation_limit = stagnation_limit
        self._estimator: Optional[PositiveCountEstimator] = None
        self._stagnant_rounds = 0
        if p0 is not None:
            self.name = f"ABNS(p0={p0:g})"
        else:
            self.name = f"ABNS(p0={p0_multiple:g}t)"

    @classmethod
    def with_threshold_multiple(
        cls, multiple: float, **kwargs: object
    ) -> "Abns":
        """ABNS whose ``p0`` is ``multiple * t`` (paper's ``t`` / ``2t``)."""
        return cls(p0_multiple=multiple, **kwargs)  # type: ignore[arg-type]

    def _reset(self, state: SessionState) -> None:
        p0 = (
            self._p0
            if self._p0 is not None
            else float(self._p0_multiple) * state.threshold  # type: ignore[arg-type]
        )
        p0 = min(p0, float(len(state.candidates)))
        self._estimator = PositiveCountEstimator(p0)
        self._stagnant_rounds = 0

    def _bins_for_round(self, state: SessionState) -> int:
        assert self._estimator is not None
        p = self._estimator.value
        t = state.threshold
        n = len(state.candidates)
        if self._policy is AbnsBinPolicy.PAPER or p < t:
            b = optimal_bins(p)
        else:
            # Confirmation regime: interpolate t..2t like the oracle.
            raw = t * (1.0 + (n - min(p, n)) / (n - t + 1.0)) if n >= t else t
            b = int(round(min(max(raw, t), 2.0 * t)))
        return max(1, min(b, max(n, 1)))

    def _observe_round(self, state: SessionState, outcome: RoundOutcome) -> None:
        assert self._estimator is not None
        if outcome.bins_queried >= 1:
            self._estimator.update(
                outcome.silent_bins,
                outcome.bins_queried,
                candidates=len(state.candidates),
            )
        if outcome.progressed:
            self._stagnant_rounds = 0
        else:
            self._stagnant_rounds += 1
            if self._stagnant_rounds >= self._stagnation_limit:
                self._estimator.escalate(2.0 * state.threshold)
                self._stagnant_rounds = 0

    def _current_estimate(self) -> Optional[float]:
        return None if self._estimator is None else self._estimator.value


class ProbabilisticAbns:
    """Sec V-D: a one-query sampled probe picks ABNS's starting point.

    The probe bin includes each candidate independently with probability
    ``min(1, 2/t)``.  A *silent* probe suggests ``x < t/2`` -- the regime
    where ABNS beats 2tBins -- so the session continues as
    ``ABNS(p0 = t/4)``.  A non-empty probe suggests ``x > t/2``, where
    2tBins is near-oracle already, so the session falls back to 2tBins.
    The probe itself is charged one query (the initiator cannot see the
    sampled membership: nodes self-select).

    Args:
        policy: Bin policy for the ABNS branch.
    """

    name = "ProbABNS"

    def __init__(self, *, policy: AbnsBinPolicy = AbnsBinPolicy.PAPER) -> None:
        self._policy = policy

    def decide(
        self,
        model: QueryModel,
        threshold: int,
        rng: np.random.Generator,
        *,
        candidates: Optional[Sequence[int]] = None,
    ) -> ThresholdResult:
        """Probe once, then delegate to ABNS or 2tBins.

        Mirrors :meth:`ThresholdAlgorithm.decide`'s contract; the returned
        ``queries`` includes the probe.
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        ids = (
            list(range(model.population_size))
            if candidates is None
            else list(candidates)
        )
        start_queries = model.queries_used

        if threshold == 0 or len(ids) < threshold:
            # Degenerate sessions do not need the probe.
            sub = TwoTBins().decide(model, threshold, rng, candidates=ids)
            return ThresholdResult(
                decision=sub.decision,
                queries=model.queries_used - start_queries,
                rounds=sub.rounds,
                threshold=threshold,
                confirmed_positives=sub.confirmed_positives,
                exact=True,
                history=sub.history,
                algorithm=self.name,
            )

        inclusion = min(1.0, 2.0 / threshold)
        probe_members = sample_bin(ids, inclusion, rng)
        probe_obs = model.query(probe_members)

        sub_algo: ThresholdAlgorithm
        if probe_obs.silent:
            sub_algo = Abns(p0=threshold / 4.0, policy=self._policy)
        else:
            sub_algo = TwoTBins()
        sub = sub_algo.decide(model, threshold, rng, candidates=ids)

        probe_record = RoundRecord(
            index=-1,
            bins_requested=1,
            bins_queried=1,
            silent_bins=1 if probe_obs.silent else 0,
            captured=0,
            evidence=0,
            eliminated=0,
            candidates_after=len(ids),
            p_estimate=None,
        )
        return ThresholdResult(
            decision=sub.decision,
            queries=model.queries_used - start_queries,
            rounds=sub.rounds + 1,
            threshold=threshold,
            confirmed_positives=sub.confirmed_positives,
            exact=True,
            history=(probe_record, *sub.history),
            algorithm=self.name,
        )
