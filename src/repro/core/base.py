"""Shared round-execution machinery for the tcast algorithm family.

Every exact algorithm in the family is a loop of *rounds*; a round
partitions the surviving candidates into bins and queries them one after
another, maintaining three pieces of state:

* the **candidate set** -- nodes that may still be positive;
* the **confirmed count** -- positives individually identified via the
  capture effect (2+ model; persists across rounds);
* the **round evidence** -- the sum of sound per-bin lower bounds on
  positives observed *this* round (resets between rounds, because bins of
  different rounds are not disjoint).

Termination checks (after every query, per Algorithms 1-3):

* ``confirmed + evidence >= t``  ->  threshold achieved (``True``);
* ``confirmed + |candidates| < t``  ->  threshold impossible (``False``).

Algorithms differ only in how many bins each round uses, which is captured
by the :meth:`ThresholdAlgorithm._bins_for_round` hook.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np

from repro.core.result import RoundRecord, ThresholdResult
from repro.group_testing.binning import partition_deterministic, partition_random
from repro.group_testing.model import ObservationKind, QueryModel

if TYPE_CHECKING:
    from repro.group_testing.vectorized import BatchDecision, QueryBatch


@runtime_checkable
class ThresholdDecider(Protocol):
    """Anything that can answer a threshold query over a query model.

    The structural contract shared by the exact algorithms
    (:class:`ThresholdAlgorithm` subclasses), the probabilistic scheme
    (:class:`repro.core.probabilistic.ProbabilisticThreshold`), and the
    reliability wrapper (:class:`repro.core.reliable.ReliableThreshold`).
    The high-level API (:mod:`repro.api`) and the sweep engine
    (:mod:`repro.experiments.common`) accept any implementation.
    """

    @property
    def name(self) -> str:
        """Human-readable algorithm name (used in results and reports)."""
        ...

    def decide(
        self,
        model: QueryModel,
        threshold: int,
        rng: np.random.Generator,
        *,
        candidates: Optional[Sequence[int]] = None,
    ) -> ThresholdResult:
        """Answer ``x >= threshold`` and return the session's result."""
        ...


@runtime_checkable
class BatchThresholdDecider(Protocol):
    """A decider that can execute a whole Monte-Carlo cell at once.

    The batch-first counterpart of :class:`ThresholdDecider`: instead of
    one ``(model, rng)`` pair, :meth:`decide_batch` receives a
    :class:`~repro.group_testing.vectorized.QueryBatch` describing every
    trial of a (label, x)-cell -- population shape, threshold, model spec
    and the per-run RNG streams -- and returns the per-run verdicts and
    query counts in one :class:`~repro.group_testing.vectorized.BatchDecision`.

    The contract is **bit-exactness**: run ``r`` of ``decide_batch`` must
    consume run ``r``'s streams exactly as ``decide`` would and produce
    the same verdict and query count.  Implementations raise
    :class:`~repro.group_testing.vectorized.UnsupportedBatch` for any
    configuration they cannot reproduce exactly (detection-failure hooks,
    non-random partitioning, ...), and callers -- the sweep engine's
    dispatcher, :func:`repro.api.threshold_query_batch` -- fall back to
    the scalar path.

    Implemented by the algorithms whose bin policy is a pure function of
    the round index (:class:`~repro.core.two_t_bins.TwoTBins`,
    :class:`~repro.core.exponential.ExponentialIncrease`) and by the
    non-adaptive probabilistic scheme
    (:class:`~repro.core.probabilistic.ProbabilisticThreshold`);
    adaptive policies (ABNS and friends) are scalar-only.  The registry
    mirrors this capability as :attr:`repro.api.AlgorithmSpec.vectorized`.
    """

    @property
    def name(self) -> str:
        """Human-readable algorithm name (used in results and reports)."""
        ...

    def decide_batch(self, batch: "QueryBatch") -> "BatchDecision":
        """Answer every trial of ``batch``, bit-identical to ``decide``."""
        ...


@dataclass
class SessionState:
    """Mutable state of an in-progress threshold-querying session.

    Attributes:
        candidates: Node ids that may still be positive.
        confirmed: Count of individually-identified positives (captures).
        threshold: The queried threshold ``t``.
        round_index: Zero-based index of the current round.
        decision: Set when a termination condition fires.
        history: Completed :class:`RoundRecord` entries.
    """

    candidates: List[int]
    threshold: int
    confirmed: int = 0
    round_index: int = 0
    decision: Optional[bool] = None
    history: List[RoundRecord] = field(default_factory=list)

    @property
    def resolved(self) -> bool:
        """Whether a decision has been reached."""
        return self.decision is not None

    @property
    def remaining_needed(self) -> int:
        """Positives still needed beyond the confirmed ones."""
        return max(0, self.threshold - self.confirmed)


@dataclass(frozen=True)
class RoundOutcome:
    """What a single executed round observed (input to adaptive policies).

    Attributes:
        bins_requested: Bin count the policy asked for.
        bins_queried: Bins actually queried before termination/exhaustion.
        silent_bins: Bins that read silent.
        progressed: Whether the round eliminated at least one candidate or
            confirmed at least one positive.
    """

    bins_requested: int
    bins_queried: int
    silent_bins: int
    progressed: bool


class ThresholdAlgorithm(abc.ABC):
    """Base class for the exact tcast algorithms.

    Subclasses implement :meth:`_bins_for_round` (how many bins to use
    next) and may override :meth:`_observe_round` (adaptive state updates).

    The public entry point is :meth:`decide`.
    """

    #: Human-readable algorithm name (used in results and reports).
    name: str = "threshold-algorithm"

    #: Safety valve: abort after this many rounds (a correct implementation
    #: never gets near it; it guards tests against adaptive-policy bugs).
    max_rounds: int = 10_000

    #: How each round partitions the candidates: ``"random"`` (the
    #: paper's choice, default) or ``"deterministic"`` (sorted contiguous
    #: slices, as in the companion theory paper).  Class-level switch so
    #: every subclass inherits it; override per instance for ablations.
    partition_strategy: str = "random"

    def decide(
        self,
        model: QueryModel,
        threshold: int,
        rng: np.random.Generator,
        *,
        candidates: Optional[Sequence[int]] = None,
    ) -> ThresholdResult:
        """Run the algorithm to completion and return its verdict.

        Args:
            model: The query oracle (1+/2+ abstract model or the
                packet-level testbed adapter).
            threshold: The threshold ``t`` (``>= 0``).
            rng: Randomness for bin assignment (kept separate from the
                model's internal randomness).
            candidates: Participant ids to query; defaults to the model's
                full population ``0..N-1``.

        Returns:
            A :class:`ThresholdResult`; ``result.queries`` counts only the
            queries charged during this call.

        Raises:
            ValueError: If ``threshold`` is negative.
            RuntimeError: If the round safety valve trips (algorithm bug).
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        ids = list(range(model.population_size)) if candidates is None else list(candidates)
        start_queries = model.queries_used
        state = SessionState(candidates=ids, threshold=threshold)
        self._reset(state)

        if threshold == 0:
            state.decision = True  # x >= 0 vacuously
        elif len(ids) < threshold:
            state.decision = False

        while not state.resolved:
            if state.round_index >= self.max_rounds:
                raise RuntimeError(
                    f"{self.name}: round safety valve ({self.max_rounds}) "
                    f"tripped with {len(state.candidates)} candidates left"
                )
            bins_requested = self._bins_for_round(state)
            if bins_requested < 1:
                raise RuntimeError(
                    f"{self.name}: bin policy returned {bins_requested}"
                )
            outcome = self._run_round(model, state, bins_requested, rng)
            self._observe_round(state, outcome)
            state.round_index += 1

        return ThresholdResult(
            decision=bool(state.decision),
            queries=model.queries_used - start_queries,
            rounds=state.round_index,
            threshold=threshold,
            confirmed_positives=state.confirmed,
            exact=True,
            history=tuple(state.history),
            algorithm=self.name,
        )

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------

    def _reset(self, state: SessionState) -> None:
        """Initialise per-session adaptive state (optional override)."""

    @abc.abstractmethod
    def _bins_for_round(self, state: SessionState) -> int:
        """Number of bins to use for the upcoming round (``>= 1``)."""

    def _observe_round(self, state: SessionState, outcome: RoundOutcome) -> None:
        """Consume a finished round's outcome (optional override)."""

    # ------------------------------------------------------------------
    # Round executor
    # ------------------------------------------------------------------

    def _run_round(
        self,
        model: QueryModel,
        state: SessionState,
        bins_requested: int,
        rng: np.random.Generator,
    ) -> RoundOutcome:
        """Execute one round: partition, query, update, check termination."""
        if self.partition_strategy == "random":
            bins = partition_random(state.candidates, bins_requested, rng)
        elif self.partition_strategy == "deterministic":
            bins = partition_deterministic(state.candidates, bins_requested)
        else:
            raise ValueError(
                f"unknown partition strategy {self.partition_strategy!r}"
            )
        # Round-oriented substrates (backcast) broadcast the whole
        # member-to-bin assignment once per round; abstract models have no
        # such hook and skip it.
        begin_round = getattr(model, "begin_round", None)
        if begin_round is not None:
            begin_round(bins)
        candidate_set = set(state.candidates)
        silent_bins = 0
        captured = 0
        evidence = 0
        bins_queried = 0

        for members in bins:
            obs = model.query(members)
            bins_queried += 1
            if obs.kind is ObservationKind.SILENT:
                silent_bins += 1
                candidate_set.difference_update(members)
            elif obs.kind is ObservationKind.CAPTURE:
                captured += 1
                state.confirmed += 1
                if obs.captured_node is not None:
                    candidate_set.discard(obs.captured_node)
            else:  # undecodable activity
                evidence += obs.min_positives
            if state.confirmed + evidence >= state.threshold:
                state.decision = True
                break
            if state.confirmed + len(candidate_set) < state.threshold:
                state.decision = False
                break

        eliminated = len(state.candidates) - len(candidate_set)
        # Preserve id order for deterministic partitioning downstream.
        state.candidates = [c for c in state.candidates if c in candidate_set]
        record = RoundRecord(
            index=state.round_index,
            bins_requested=bins_requested,
            bins_queried=bins_queried,
            silent_bins=silent_bins,
            captured=captured,
            evidence=evidence,
            eliminated=eliminated,
            candidates_after=len(state.candidates),
            p_estimate=self._current_estimate(),
        )
        state.history.append(record)
        return RoundOutcome(
            bins_requested=bins_requested,
            bins_queried=bins_queried,
            silent_bins=silent_bins,
            progressed=eliminated > 0 or captured > 0,
        )

    def _current_estimate(self) -> Optional[float]:
        """ABNS overrides this to expose its ``p`` estimate in records."""
        return None
