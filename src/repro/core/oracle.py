"""The oracle bin-selection baseline (Sec V-C).

The oracle knows the true positive count ``x`` and sizes every round's
bins with the paper's interpolated formula::

    b = x + 1                          if x <= t/2
    b = 3x - t                         if t/2 < x <= t
    b = t * (1 + (n - x)/(n - t + 1))  if x > t

It still has to *prove* its answer through queries (it cannot just assert
``x >= t``), so its cost is a lower bound on what any bin-number policy
can achieve -- the reference curve in Figures 5 and 6.
"""

from __future__ import annotations

from repro.analytic.bins import oracle_bins
from repro.core.base import SessionState, ThresholdAlgorithm


class OracleBins(ThresholdAlgorithm):
    """Bin-number oracle: perfect knowledge of ``x`` at every round.

    Args:
        x: The true positive count among the *initial* candidates.  The
            oracle tracks eliminations: within a session it recomputes the
            formula against the surviving candidate count and the positives
            still unconfirmed, which is what perfect knowledge implies.
    """

    name = "Oracle"

    def __init__(self, x: int) -> None:
        if x < 0:
            raise ValueError(f"x must be >= 0, got {x}")
        self._x = x

    def _bins_for_round(self, state: SessionState) -> int:
        n = len(state.candidates)
        # Positives not yet individually confirmed are still candidates.
        x_remaining = min(self._x - state.confirmed, n)
        t_remaining = max(1, state.remaining_needed)
        if n < 1:  # pragma: no cover - the base loop resolves before this
            return 1
        x_remaining = max(0, x_remaining)
        return oracle_bins(x_remaining, t_remaining, n)
