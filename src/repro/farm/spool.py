"""Spool directory layout, shard descriptors, and the result store.

A farm run lives in one **spool directory** shared by the coordinator
and every worker (same host, or any host mounting the same filesystem)::

    <spool>/
        MANIFEST            CRC32-framed JSON: format, exp_id, run key
        coordinator.hb      empty file; mtime = coordinator heartbeat
        STOP                created at shutdown; workers drain and exit
        shards/<key>.task   framed pickle of one shard descriptor
        leases/<key>.lease  JSON lease; mtime = worker heartbeat
        workers/<id>.reg    JSON registration; mtime = worker liveness
        store/<key>.json    completed-shard result entry (checksummed)
        store/.quarantine/  corrupt entries, parked with unique names

Everything durable goes through :mod:`repro.experiments.atomicio`:
descriptor, manifest and store writes are atomic (unique tmp +
``os.replace``), so a crash at any point leaves whole files or no
files, never truncated ones.  Shard descriptors and store entries are
**content-keyed** by :func:`shard_key` -- a SHA-256 over the run's own
content key (config + seed + code fingerprint, the same derivation as
:func:`repro.experiments.cache.cache_key`) plus the shard coordinates
-- so a stale spool can never leak work or results into a different
computation, and a restarted coordinator regenerates byte-identical
file names.

The :class:`ShardStore` generalises
:class:`repro.experiments.cache.ResultCache` down to shard granularity:
entries embed a SHA-256 checksum verified on every read, and corrupt
entries are quarantined (with unique, never-clobbered names) and
recomputed instead of crashing the run or silently poisoning it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.experiments.atomicio import (
    atomic_write_bytes,
    atomic_write_text,
    checksum_line,
    parse_checksum_line,
    quarantine_file,
)

#: Spool layout version (bumped on incompatible changes; a mismatched
#: manifest discards the spool instead of resuming from it).
SPOOL_FORMAT = 1

#: File names inside a spool directory.
MANIFEST_NAME = "MANIFEST"
COORDINATOR_HEARTBEAT_NAME = "coordinator.hb"
STOP_NAME = "STOP"
SHARDS_DIRNAME = "shards"
LEASES_DIRNAME = "leases"
WORKERS_DIRNAME = "workers"
STORE_DIRNAME = "store"


def shard_key(run_key: str, label: str, x: int, lo: int, hi: int) -> str:
    """Content key of one shard: run key + shard coordinates.

    Args:
        run_key: The run's content key (config + seed + code
            fingerprint -- :func:`repro.experiments.cache.cache_key`).
        label: Sweep curve label.
        x: Grid point.
        lo: First run index of the block (inclusive).
        hi: Last run index of the block (exclusive).

    Returns:
        A hex digest.  Equal keys guarantee bit-identical shard costs,
        which is what makes duplicate completions harmless.
    """
    payload = json.dumps(
        {"run": run_key, "label": label, "x": int(x),
         "lo": int(lo), "hi": int(hi)},
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """One completed (or failed) shard in the result store (picklable).

    Exactly one of ``costs`` / ``error_type`` is set, mirroring
    :class:`repro.experiments.resilience.ShardOutcome`: a worker ships
    an in-shard exception home as data so the coordinator can abort
    with the remote traceback instead of a silent hang.

    Attributes:
        key: The shard's content key (:func:`shard_key`).
        label: Sweep curve label.
        x: Grid point.
        lo: First run index (inclusive).
        hi: Last run index (exclusive).
        worker: Id of the worker that produced the entry.
        attempt: Lease attempt the worker was serving when it computed.
        costs: Per-run query costs (``None`` on error).
        snapshot: Worker metrics snapshot as a JSON dict (``None`` when
            metrics are disabled).
        error_type: Exception class name when the shard raised.
        remote_traceback: Formatted worker-side traceback on error.
    """

    key: str
    label: str
    x: int
    lo: int
    hi: int
    worker: str
    attempt: int
    costs: Optional[Tuple[float, ...]] = None
    snapshot: Optional[Dict[str, Any]] = None
    error_type: Optional[str] = None
    remote_traceback: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serialisable rendering (checksummed by the store)."""
        return {
            "key": self.key,
            "label": self.label,
            "x": int(self.x),
            "lo": int(self.lo),
            "hi": int(self.hi),
            "worker": self.worker,
            "attempt": int(self.attempt),
            "costs": list(self.costs) if self.costs is not None else None,
            "snapshot": self.snapshot,
            "error_type": self.error_type,
            "remote_traceback": self.remote_traceback,
        }

    @staticmethod
    def from_payload(data: Dict[str, Any]) -> "StoreEntry":
        """Inverse of :meth:`to_payload`.

        Raises:
            ValueError: On structurally invalid payloads (missing keys,
                wrong types, cost-count/range mismatch) -- the store
                treats that as corruption and quarantines the file.
        """
        try:
            costs = data["costs"]
            entry = StoreEntry(
                key=str(data["key"]),
                label=str(data["label"]),
                x=int(data["x"]),
                lo=int(data["lo"]),
                hi=int(data["hi"]),
                worker=str(data["worker"]),
                attempt=int(data["attempt"]),
                costs=tuple(float(c) for c in costs)
                if costs is not None
                else None,
                snapshot=data.get("snapshot"),
                error_type=data.get("error_type"),
                remote_traceback=data.get("remote_traceback"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed store entry: {exc}") from exc
        if entry.costs is not None and entry.hi - entry.lo != len(entry.costs):
            raise ValueError(
                f"store entry {entry.key[:16]}: {len(entry.costs)} costs "
                f"for run range [{entry.lo},{entry.hi})"
            )
        if entry.costs is None and entry.error_type is None:
            raise ValueError(
                f"store entry {entry.key[:16]}: neither costs nor error"
            )
        return entry


class ShardStore:
    """Content-addressed, checksummed store of completed shards.

    The farm's source of truth (together with the run journal): workers
    write entries with :meth:`store`, the coordinator collects them with
    :meth:`load`, and a coordinator restarted after a crash rebuilds its
    state purely from what it finds here.  Writes are atomic, reads are
    checksum-verified, and corrupt files are quarantined under unique
    names (a recomputed replacement that is *also* corrupt quarantines
    again instead of clobbering the first post-mortem sample).

    Args:
        directory: Store root (created lazily on first write).
    """

    #: Subdirectory corrupt entries are parked in (never read back).
    QUARANTINE_DIRNAME = ".quarantine"

    def __init__(self, directory: os.PathLike | str) -> None:
        self._dir = Path(directory)
        #: Corrupt entries seen by this instance (coordinator metrics).
        self.corrupt = 0

    @property
    def directory(self) -> Path:
        """The store root."""
        return self._dir

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self._dir / self.QUARANTINE_DIRNAME

    def path(self, key: str) -> Path:
        """The entry file for shard ``key``."""
        return self._dir / f"{key}.json"

    @staticmethod
    def _checksum(payload: Dict[str, Any]) -> str:
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def store(self, entry: StoreEntry) -> Path:
        """Atomically write ``entry`` under its content key.

        Concurrent writers (a reclaimed worker racing its replacement)
        are harmless: shard costs derive statelessly from the shard
        coordinates, so every correct writer produces the same payload
        and the last atomic ``os.replace`` wins with identical bytes.
        """
        payload = entry.to_payload()
        envelope = {"checksum": self._checksum(payload), "entry": payload}
        path = self.path(entry.key)
        atomic_write_text(path, json.dumps(envelope, indent=2))
        return path

    def load(self, key: str) -> Optional[StoreEntry]:
        """Return the verified entry for ``key``, or ``None``.

        A missing file is a plain miss.  An unreadable, unparseable or
        checksum-mismatched file is quarantined (unique name) and
        reported as a miss -- the coordinator then re-leases the shard.
        """
        path = self.path(key)
        if not path.is_file():
            return None
        try:
            data = json.loads(path.read_text())
            payload = data["entry"]
            if self._checksum(payload) != data["checksum"]:
                raise ValueError(f"store entry {path.name}: checksum mismatch")
            return StoreEntry.from_payload(payload)
        except (OSError, ValueError, KeyError, TypeError):
            quarantine_file(path, self.quarantine_dir)
            self.corrupt += 1
            return None

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        if not self._dir.is_dir():
            return 0
        return sum(1 for _ in self._dir.glob("*.json"))

    def quarantine_count(self) -> int:
        """Number of corrupt entries parked in the quarantine directory."""
        if not self.quarantine_dir.is_dir():
            return 0
        return sum(1 for _ in self.quarantine_dir.iterdir())


class Spool:
    """Paths and framed-file IO of one farm run's spool directory.

    Shared, stateless view used by both the coordinator and workers;
    lifecycle decisions (create fresh, resume, discard) belong to the
    coordinator.

    Args:
        root: The spool directory of one run.
    """

    def __init__(self, root: os.PathLike | str) -> None:
        self._root = Path(root)
        self.store = ShardStore(self._root / STORE_DIRNAME)

    @property
    def root(self) -> Path:
        """The spool directory."""
        return self._root

    @property
    def manifest_path(self) -> Path:
        """The run manifest file."""
        return self._root / MANIFEST_NAME

    @property
    def heartbeat_path(self) -> Path:
        """The coordinator's liveness file (mtime = last heartbeat)."""
        return self._root / COORDINATOR_HEARTBEAT_NAME

    @property
    def stop_path(self) -> Path:
        """The shutdown marker; its existence tells workers to exit."""
        return self._root / STOP_NAME

    @property
    def shards_dir(self) -> Path:
        """Directory of shard descriptors."""
        return self._root / SHARDS_DIRNAME

    @property
    def leases_dir(self) -> Path:
        """Directory of lease files."""
        return self._root / LEASES_DIRNAME

    @property
    def workers_dir(self) -> Path:
        """Directory of worker registration files."""
        return self._root / WORKERS_DIRNAME

    def shard_path(self, key: str) -> Path:
        """The descriptor file for shard ``key``."""
        return self.shards_dir / f"{key}.task"

    def lease_path(self, key: str) -> Path:
        """The lease file for shard ``key``."""
        return self.leases_dir / f"{key}.lease"

    # -- manifest ----------------------------------------------------------

    def _manifest_payload(self, exp_id: str, key: str) -> str:
        return json.dumps(
            {"format": SPOOL_FORMAT, "exp_id": exp_id, "key": key},
            sort_keys=True,
            separators=(",", ":"),
        )

    def write_manifest(self, exp_id: str, key: str) -> None:
        """Create the spool layout and its CRC-framed manifest."""
        for directory in (
            self.shards_dir, self.leases_dir, self.workers_dir,
            self.store.directory,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.manifest_path,
            checksum_line(self._manifest_payload(exp_id, key)),
        )

    def manifest_matches(self, exp_id: str, key: str) -> bool:
        """Whether an existing manifest describes exactly this run.

        A missing, corrupt, or differently-keyed manifest means the
        spool belongs to another computation (or none) and must be
        discarded rather than resumed.
        """
        if not self.manifest_path.is_file():
            return False
        try:
            payload = parse_checksum_line(
                self.manifest_path.read_text(encoding="utf-8").splitlines()[0]
            )
        except (OSError, IndexError):
            return False
        return payload == self._manifest_payload(exp_id, key)

    def discard(self) -> None:
        """Delete the whole spool tree (after a fully successful run)."""
        if self._root.is_dir():
            shutil.rmtree(self._root, ignore_errors=True)

    # -- shard descriptors -------------------------------------------------

    def write_shard(
        self, key: str, fn: Callable[[Any], Any], task: Any
    ) -> Path:
        """Atomically spool one shard descriptor.

        The descriptor is ``pickle((fn, task))`` framed by a SHA-256
        header line, so a worker can detect a damaged descriptor before
        executing garbage.  ``fn`` and ``task`` must be picklable by
        reference / by value respectively (the same contract as the
        local process-pool backend).
        """
        blob = pickle.dumps((fn, task))
        framed = hashlib.sha256(blob).hexdigest().encode("ascii") + b"\n" + blob
        return atomic_write_bytes(self.shard_path(key), framed)

    def read_shard(self, key: str) -> Optional[Tuple[Callable[[Any], Any], Any]]:
        """Load and verify one shard descriptor, or ``None`` if damaged.

        A damaged descriptor is left in place (the coordinator rewrites
        it on the next grant); the worker simply declines the lease by
        letting it expire.
        """
        path = self.shard_path(key)
        try:
            framed = path.read_bytes()
            digest, _, blob = framed.partition(b"\n")
            if hashlib.sha256(blob).hexdigest().encode("ascii") != digest:
                return None
            fn, task = pickle.loads(blob)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, ImportError, TypeError):
            return None
        return fn, task
