"""Lease files, heartbeats, and worker registration.

A **lease** is the unit of work assignment: one JSON file under
``<spool>/leases/`` naming the worker a shard is assigned to and the
attempt number.  The coordinator *grants* a lease by atomically writing
the file; the owning worker *heartbeats* by touching it (``os.utime``)
while computing; the coordinator *reclaims* it by deleting the file
when the heartbeat goes stale (worker death) or the lease outlives the
stall deadline (hung computation).  A worker whose heartbeat touch
fails with ``FileNotFoundError`` learns its lease was reclaimed -- it
may still finish and publish the (bit-identical) result, which the
coordinator counts as a *stolen* lease completion.

The lease state machine (per shard)::

    QUEUED --grant--> LEASED --store entry collected--> COMPLETED
       ^                |
       |                +--heartbeat stale / stall deadline--+
       |                                                     |
       +-- attempt <= max_retries ---- reclaim (expired) ----+
                                                             |
           attempt  > max_retries ---- reclaim ----> QUARANTINED

**Worker registration** is the same mechanism one level up: each worker
maintains ``<spool>/workers/<id>.reg`` (mtime = liveness heartbeat);
the coordinator only grants leases to workers whose registration is
fresh, and counts a worker dead when its registration goes stale.

Timing here is real harness wall-clock (workers live and die in host
time), like :mod:`repro.experiments.resilience`; nothing in this module
touches simulated time or any RNG stream.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.experiments.atomicio import atomic_write_text
from repro.farm.spool import Spool


class LeaseState(enum.Enum):
    """Coordinator-side lifecycle of one shard (see module docstring)."""

    QUEUED = "queued"
    LEASED = "leased"
    COMPLETED = "completed"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class Lease:
    """The parsed content of one lease file.

    Attributes:
        key: Shard content key the lease covers.
        worker: Id of the worker the shard is assigned to.
        pid: The granting coordinator's best knowledge of the worker's
            process id (diagnostics only; liveness comes from mtime).
        attempt: Zero-based grant attempt for this shard.
    """

    key: str
    worker: str
    pid: int
    attempt: int

    def to_json(self) -> str:
        """Serialise for the lease file."""
        return json.dumps(
            {"key": self.key, "worker": self.worker, "pid": self.pid,
             "attempt": self.attempt},
            sort_keys=True,
        )


def grant_lease(path: Path, lease: Lease) -> None:
    """Atomically write (or rewrite) a lease file.

    Granting resets the file's mtime, which doubles as the first
    heartbeat: a worker that never picks the lease up at all is
    indistinguishable from one that died immediately, and the lease
    expires on the same staleness clock.
    """
    atomic_write_text(path, lease.to_json() + "\n")


def read_lease(path: Path) -> Optional[Lease]:
    """Parse a lease file, or ``None`` if missing or damaged.

    A damaged lease (torn write is impossible -- grants are atomic --
    but operators do strange things) is treated as absent; the
    coordinator's reclaim sweep then re-grants the shard.
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return Lease(
            key=str(data["key"]),
            worker=str(data["worker"]),
            pid=int(data["pid"]),
            attempt=int(data["attempt"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def touch(path: Path) -> bool:
    """Heartbeat a file by bumping its mtime; ``False`` if it is gone.

    Deliberately *never creates* the file: a reclaimed (deleted) lease
    must stay reclaimed, so the holder learns about the reclaim from
    the ``False`` return instead of resurrecting its lease.
    """
    try:
        os.utime(path)
        return True
    except FileNotFoundError:
        return False


def age_seconds(path: Path, now: float) -> Optional[float]:
    """Seconds since ``path`` was last touched, or ``None`` if gone.

    Args:
        now: The caller's ``time.time()`` reading.  Lease staleness is
            measured against the *filesystem* clock (``st_mtime``), the
            one clock every farm participant shares.
    """
    try:
        return max(0.0, now - path.stat().st_mtime)
    except FileNotFoundError:
        return None


# ---------------------------------------------------------------------------
# Worker registration
# ---------------------------------------------------------------------------


def register_worker(spool: "Spool", worker_id: str, pid: int) -> Path:
    """Write the registration file announcing a worker to the farm."""
    path = spool.workers_dir / f"{worker_id}.reg"
    atomic_write_text(
        path,
        json.dumps({"worker": worker_id, "pid": pid}, sort_keys=True) + "\n",
    )
    return path


def deregister_worker(spool: "Spool", worker_id: str) -> None:
    """Remove a worker's registration (clean exit or declared dead)."""
    path = spool.workers_dir / f"{worker_id}.reg"
    try:
        path.unlink()
    except FileNotFoundError:
        pass


def registered_workers(spool: "Spool", now: float) -> Dict[str, float]:
    """Map of worker id -> seconds since its last liveness heartbeat.

    Args:
        spool: The run's spool.
        now: The caller's ``time.time()`` reading.

    Returns:
        Every currently registered worker with its registration age;
        the caller decides the staleness threshold.
    """
    ages: Dict[str, float] = {}
    if not spool.workers_dir.is_dir():
        return ages
    for path in sorted(spool.workers_dir.glob("*.reg")):
        age = age_seconds(path, now)
        if age is not None:
            ages[path.stem] = age
    return ages


def worker_pid(spool: "Spool", worker_id: str) -> Optional[int]:
    """The pid a worker registered with, or ``None`` if unknown."""
    path = spool.workers_dir / f"{worker_id}.reg"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return int(data["pid"])
    except (OSError, ValueError, KeyError, TypeError):
        return None
