"""The farm coordinator: spool shards, grant leases, reclaim, collect.

:class:`FarmCoordinator` is the ``--backend farm`` counterpart of
:func:`repro.experiments.resilience.run_supervised`: it executes a batch
of sweep shards with the same callback contract (``on_complete`` in
collection order, ``on_quarantine`` after bounded retries, in-shard
exceptions re-raised as
:class:`~repro.experiments.resilience.ShardExecutionError` with the
remote traceback) -- but over a fleet of independent worker *processes*
coordinated purely through a shared spool directory, so any participant
can be SIGKILLed without taking the run down.

Per tick (``FarmPolicy.poll_interval``), the coordinator:

1. heartbeats its own liveness file (workers orphan-check against it),
2. reaps dead workers -- a spawned process that exited, or any
   registration whose heartbeat went stale -- counting
   ``farm.worker_deaths`` and respawning spawned workers up to
   ``FarmPolicy.max_worker_respawns``,
3. **collects** finished shards from the content-addressed store
   (checksum-verified; corrupt entries are quarantined, counted in
   ``farm.store_corrupt``, and the shard is re-leased),
4. **reclaims** expired leases: heartbeat stale (worker death) or total
   lease age beyond the stall deadline (hung computation; the deadline
   derives from the ``sweep.shard_seconds`` histogram exactly like
   :meth:`~repro.experiments.resilience.SupervisionPolicy.stall_deadline`)
   -- requeueing up to ``SupervisionPolicy.max_retries`` grants and
   quarantining after that,
5. **grants** queued shards to idle, live workers (one outstanding
   lease per worker).

Every lease grant is resolved exactly once, which is the accounting
contract the chaos suite asserts::

    farm.leases_granted == farm.leases_completed
                           + farm.leases_expired
                           + farm.leases_quarantined

``farm.leases_stolen`` (a reclaimed lease whose original holder finished
anyway) and ``farm.duplicate_completions`` (a second, byte-identical
store write observed for an already-collected shard) are informational
-- both are *expected* under chaos and harmless by construction, since
shard costs derive statelessly from the shard coordinates.

Timing here is real harness wall-clock (worker processes live and die
in host time), like :mod:`repro.experiments.resilience`; nothing in
this module touches simulated time or any RNG stream.
"""

from __future__ import annotations

import logging
import os
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.resilience import (
    ShardExecutionError,
    ShardOutcome,
    SupervisionPolicy,
    shard_coords,
)
from repro.farm import lease as leasemod
from repro.farm.lease import Lease, LeaseState
from repro.farm.spool import Spool, StoreEntry, shard_key
from repro.obs import MetricsSnapshot, get_registry

_LOG = logging.getLogger(__name__)

#: Import-time instruments (inert until metrics are enabled).  All
#: counters are coordinator-side: workers report through the store.
_OBS = get_registry()
_F_SPOOLED = _OBS.counter("farm.shards_spooled")
_F_GRANTED = _OBS.counter("farm.leases_granted")
_F_COMPLETED = _OBS.counter("farm.leases_completed")
_F_EXPIRED = _OBS.counter("farm.leases_expired")
_F_QUARANTINED = _OBS.counter("farm.leases_quarantined")
_F_STOLEN = _OBS.counter("farm.leases_stolen")
_F_DUPLICATES = _OBS.counter("farm.duplicate_completions")
_F_WORKER_DEATHS = _OBS.counter("farm.worker_deaths")
_F_WORKER_RESPAWNS = _OBS.counter("farm.worker_respawns")
_F_STORE_HITS = _OBS.counter("farm.store_hits")
_F_STORE_CORRUPT = _OBS.counter("farm.store_corrupt")
_F_LEASE_SECONDS = _OBS.histogram(
    "farm.lease_seconds",
    edges=(0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0),
)


@dataclass(frozen=True)
class FarmPolicy:
    """Tunables of the coordinator/worker loop.

    The *two* failure clocks are deliberately separate: heartbeat
    staleness (``heartbeat_grace``) detects a **dead** worker within a
    few heartbeat intervals regardless of how long shards take, while
    the stall deadline inherited from
    :meth:`SupervisionPolicy.stall_deadline` detects a **hung** worker
    whose heartbeat thread is still dutifully touching the lease.
    """

    #: Seconds between worker heartbeat touches (passed to spawned
    #: workers; external workers should match).
    heartbeat_interval: float = 0.5
    #: Seconds of stale heartbeat after which a lease or a worker
    #: registration counts as dead.
    heartbeat_grace: float = 5.0
    #: Seconds between coordinator ticks.
    poll_interval: float = 0.2
    #: Stale-coordinator tolerance handed to spawned workers (orphans
    #: exit on their own after this).
    coordinator_grace: float = 30.0
    #: Total worker respawns the coordinator will perform in one run.
    max_worker_respawns: int = 16
    #: How long shutdown waits for workers to drain before SIGTERM.
    drain_grace: float = 5.0


@dataclass
class _ShardState:
    """Coordinator-side bookkeeping for one shard of the current batch."""

    idx: int
    key: str
    task: Any
    fn: Callable[[Any], Any]
    state: LeaseState = LeaseState.QUEUED
    #: Number of leases granted so far (the next grant's attempt id).
    attempts: int = 0
    lease_worker: Optional[str] = None
    granted_at: float = 0.0
    #: st_mtime_ns of the store entry at collection (duplicate detection).
    collected_mtime_ns: Optional[int] = None


class FarmCoordinator:
    """Coordinate one experiment run over a fleet of worker processes.

    Use as a context manager (the CLI does)::

        with FarmCoordinator(spool_dir, exp_id="fig01", run_key=key,
                             workers=3, resume=args.resume) as farm:
            ctx = RunContext(journal=journal, farm=farm)
            with resilience.activate(ctx):
                run_experiment("fig01", ...)

    Args:
        spool_root: This run's spool directory (shared filesystem).
        exp_id: Experiment id (manifest sanity check).
        run_key: The run's content key (config + seed + code
            fingerprint); shard keys and the manifest derive from it.
        workers: Worker processes to spawn (ignored when
            ``spawn_workers`` is false).
        policy: Farm timing knobs.
        supervision: Retry budget and stall deadline (shared semantics
            with the local supervised backend).
        spawn_workers: Spawn local worker subprocesses.  With ``False``
            the coordinator serves externally launched workers only
            (``tcast-experiments farm worker``) and waits for them to
            register.
        resume: Keep a spool whose manifest matches this run (the
            store then seeds completed shards); otherwise any existing
            spool for the directory is discarded.
    """

    def __init__(
        self,
        spool_root: os.PathLike | str,
        *,
        exp_id: str,
        run_key: str,
        workers: int = 2,
        policy: Optional[FarmPolicy] = None,
        supervision: Optional[SupervisionPolicy] = None,
        spawn_workers: bool = True,
        resume: bool = False,
    ) -> None:
        self.spool = Spool(spool_root)
        self.exp_id = exp_id
        self.run_key = run_key
        self.workers = max(1, int(workers))
        self.policy = policy or FarmPolicy()
        self.supervision = supervision or SupervisionPolicy()
        self.spawn_workers = spawn_workers
        self.resume = resume
        self.resumed_shards = 0
        self._started = False
        self._spawn_seq = 0
        self._respawns = 0
        #: Spawned worker processes: worker id -> (Popen, log handle).
        self._procs: Dict[str, Tuple[subprocess.Popen[bytes], Any]] = {}
        self._observed_max = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FarmCoordinator":
        """Prepare (or resume) the spool and spawn the worker fleet."""
        if self._started:
            return self
        if self.resume and self.spool.manifest_matches(
            self.exp_id, self.run_key
        ):
            self.resumed_shards = self.spool.store.entry_count()
            # Leases from the dead coordinator mean nothing to this
            # one's accounting; clear them.  A live orphan worker whose
            # lease vanishes just finishes and publishes -- harmless.
            for stale in sorted(self.spool.leases_dir.glob("*.lease")):
                stale.unlink(missing_ok=True)
            self.spool.stop_path.unlink(missing_ok=True)
            self.spool.write_manifest(self.exp_id, self.run_key)
        else:
            self.spool.discard()
            self.spool.write_manifest(self.exp_id, self.run_key)
        self._touch_heartbeat()
        self._started = True
        return self

    def __enter__(self) -> "FarmCoordinator":
        """Context-manager entry: :meth:`start`."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: :meth:`shutdown` (spool kept on disk)."""
        self.shutdown()

    def _touch_heartbeat(self) -> None:
        if not leasemod.touch(self.spool.heartbeat_path):
            self.spool.heartbeat_path.parent.mkdir(parents=True, exist_ok=True)
            self.spool.heartbeat_path.touch()

    def _worker_env(self) -> Dict[str, str]:
        """Environment for spawned workers (repro importable)."""
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else os.pathsep.join(
            [src, existing]
        )
        return env

    def _spawn_worker(self) -> None:
        self._spawn_seq += 1
        worker_id = f"w{os.getpid()}-{self._spawn_seq}"
        log_path = self.spool.workers_dir / f"{worker_id}.log"
        self.spool.workers_dir.mkdir(parents=True, exist_ok=True)
        log_fh = open(log_path, "ab")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.farm.worker",
                str(self.spool.root),
                "--worker-id", worker_id,
                "--heartbeat-interval", str(self.policy.heartbeat_interval),
                "--poll-interval", str(self.policy.poll_interval),
                "--coordinator-grace", str(self.policy.coordinator_grace),
            ],
            stdout=log_fh,
            stderr=subprocess.STDOUT,
            env=self._worker_env(),
        )
        self._procs[worker_id] = (proc, log_fh)
        _LOG.info("farm: spawned worker %s (pid %d)", worker_id, proc.pid)

    def shutdown(self) -> None:
        """Stop the fleet: STOP marker, drain grace, then terminate.

        Workers that exit within :attr:`FarmPolicy.drain_grace` publish
        their in-flight shard to the store first -- nothing completed is
        lost.  The spool itself is kept for ``--resume``; call
        :meth:`discard` after a fully successful run.
        """
        if not self._started:
            return
        try:
            self.spool.stop_path.touch()
        except OSError:
            pass
        deadline = time.monotonic() + self.policy.drain_grace
        for worker_id, (proc, _) in list(self._procs.items()):
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.0, remaining))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        for worker_id, (_, log_fh) in self._procs.items():
            try:
                log_fh.close()
            except OSError:
                pass
        self._procs.clear()
        self._started = False

    def discard(self) -> None:
        """Delete the spool tree (after a fully successful run)."""
        self.shutdown()
        self.spool.discard()

    # -- the batch loop ----------------------------------------------------

    def execute(
        self,
        items: Sequence[Tuple[int, Any]],
        *,
        fn: Callable[[Any], Any],
        on_complete: Callable[[int, Any, ShardOutcome], None],
        on_quarantine: Callable[[int, Any, str], None],
    ) -> None:
        """Execute one batch of shards on the farm (see class docstring).

        Args:
            items: ``(index, task)`` pairs; ``task`` must expose
                ``label``/``x``/``run_lo``/``run_hi`` and be picklable.
            fn: Module-level guarded shard function workers run
                (returns :class:`ShardOutcome`, never raises for
                in-shard errors).
            on_complete: Called in collection order with
                ``(index, task, outcome)`` for every finished shard.
            on_quarantine: Called with ``(index, task, reason)`` when a
                shard exhausts its retry budget.

        Raises:
            RuntimeError: Called outside :meth:`start`/``with``.
            ShardExecutionError: A shard raised inside a worker.
            GracefulExit: Propagated when SIGINT/SIGTERM arrives; the
                store plus the journal then carry everything completed.
        """
        if not self._started:
            raise RuntimeError("FarmCoordinator.execute() before start()")
        states: Dict[str, _ShardState] = {}
        queue: Deque[_ShardState] = deque()
        for idx, task in items:
            label, x, lo, hi = shard_coords(task)
            key = shard_key(self.run_key, label, x, lo, hi)
            state = _ShardState(idx=idx, key=key, task=task, fn=fn)
            states[key] = state
            # Seed from the store first: a previous coordinator (or an
            # orphan worker) may have completed the shard already.
            if self._try_collect(state, on_complete, leased=False):
                continue
            if not self.spool.shard_path(key).is_file():
                self.spool.write_shard(key, fn, task)
                _F_SPOOLED.inc()
            queue.append(state)

        # The fleet spawns lazily on the first batch with actual work,
        # so a cache hit (or a fully store-seeded resume) costs nothing.
        if queue and self.spawn_workers and self._spawn_seq == 0:
            for _ in range(self.workers):
                self._spawn_worker()

        known_deaths: set[str] = set()
        while any(
            s.state in (LeaseState.QUEUED, LeaseState.LEASED)
            for s in states.values()
        ):
            self._touch_heartbeat()
            self._reap_workers(states, queue, known_deaths, on_quarantine)
            for state in list(states.values()):
                if state.state is LeaseState.LEASED:
                    self._try_collect(state, on_complete, leased=True)
            self._reclaim(states, queue, on_quarantine)
            self._detect_duplicates(states)
            self._grant(queue)
            self._check_liveness(states, queue, on_quarantine)
            time.sleep(self.policy.poll_interval)

    # -- tick phases -------------------------------------------------------

    def _entry_outcome(self, entry: StoreEntry) -> ShardOutcome:
        snapshot = (
            MetricsSnapshot.from_dict(entry.snapshot)
            if entry.snapshot is not None
            else None
        )
        return ShardOutcome(
            costs=list(entry.costs) if entry.costs is not None else None,
            snapshot=snapshot,
            error_type=entry.error_type,
            remote_traceback=entry.remote_traceback,
        )

    def _try_collect(
        self,
        state: _ShardState,
        on_complete: Callable[[int, Any, ShardOutcome], None],
        *,
        leased: bool,
    ) -> bool:
        """Collect ``state``'s store entry if present; ``True`` if done."""
        path = self.spool.store.path(state.key)
        if not path.is_file():
            return False
        before = self.spool.store.corrupt
        entry = self.spool.store.load(state.key)
        if entry is None:
            if self.spool.store.corrupt > before:
                _F_STORE_CORRUPT.inc()
                _LOG.warning(
                    "farm: corrupt store entry for shard %s quarantined; "
                    "recomputing", state.key[:16],
                )
                # A leased worker may still be writing a fresh one; the
                # reclaim sweep re-leases if nobody does.
            return False
        if entry.error_type is not None:
            label, x, lo, hi = shard_coords(state.task)
            raise ShardExecutionError(
                label, x, lo, hi,
                entry.error_type,
                entry.remote_traceback or "<no traceback captured>",
            )
        try:
            state.collected_mtime_ns = path.stat().st_mtime_ns
        except FileNotFoundError:  # pragma: no cover - collect/quarantine race
            state.collected_mtime_ns = None
        if leased:
            _F_COMPLETED.inc()
            self._observed_max = max(
                self._observed_max, time.monotonic() - state.granted_at
            )
            _F_LEASE_SECONDS.observe(time.monotonic() - state.granted_at)
            if (
                entry.worker != state.lease_worker
                or entry.attempt != state.attempts - 1
            ):
                # A reclaimed holder finished anyway and beat the
                # current one to the store: the grant still resolves.
                _F_STOLEN.inc()
            self.spool.lease_path(state.key).unlink(missing_ok=True)
        else:
            _F_STORE_HITS.inc()
        state.state = LeaseState.COMPLETED
        state.lease_worker = None
        on_complete(state.idx, state.task, self._entry_outcome(entry))
        return True

    def _reap_workers(
        self,
        states: Dict[str, _ShardState],
        queue: Deque[_ShardState],
        known_deaths: set[str],
        on_quarantine: Callable[[int, Any, str], None],
    ) -> None:
        """Detect dead workers; reclaim their leases; respawn spawned ones."""
        now = time.time()
        dead: List[str] = []
        # Spawned process exited while still registered -> death.
        for worker_id, (proc, log_fh) in list(self._procs.items()):
            if proc.poll() is None:
                continue
            reg = self.spool.workers_dir / f"{worker_id}.reg"
            if reg.exists():
                dead.append(worker_id)
            try:
                log_fh.close()
            except OSError:
                pass
            del self._procs[worker_id]
            if self.spawn_workers and self._respawns < self.policy.max_worker_respawns:
                self._respawns += 1
                _F_WORKER_RESPAWNS.inc()
                self._spawn_worker()
        # Any registration (spawned or external) whose heartbeat stalled.
        for worker_id, age in leasemod.registered_workers(
            self.spool, now
        ).items():
            if age > self.policy.heartbeat_grace and worker_id not in dead:
                dead.append(worker_id)
        for worker_id in dead:
            if worker_id not in known_deaths:
                known_deaths.add(worker_id)
                _F_WORKER_DEATHS.inc()
                _LOG.warning("farm: worker %s died", worker_id)
            leasemod.deregister_worker(self.spool, worker_id)
            for state in states.values():
                if (
                    state.state is LeaseState.LEASED
                    and state.lease_worker == worker_id
                ):
                    self._expire(
                        state, queue, on_quarantine,
                        f"worker {worker_id} died",
                    )

    def _expire(
        self,
        state: _ShardState,
        queue: Deque[_ShardState],
        on_quarantine: Callable[[int, Any, str], None],
        reason: str,
    ) -> None:
        """Resolve one outstanding lease as expired or quarantined."""
        self.spool.lease_path(state.key).unlink(missing_ok=True)
        state.lease_worker = None
        if state.attempts > self.supervision.max_retries:
            _F_QUARANTINED.inc()
            state.state = LeaseState.QUARANTINED
            on_quarantine(
                state.idx, state.task,
                f"{reason}; gave up after {state.attempts} lease(s)",
            )
        else:
            _F_EXPIRED.inc()
            state.state = LeaseState.QUEUED
            queue.append(state)

    def _reclaim(
        self,
        states: Dict[str, _ShardState],
        queue: Deque[_ShardState],
        on_quarantine: Callable[[int, Any, str], None],
    ) -> None:
        """Reclaim leases that stopped heartbeating or outlived the
        stall deadline."""
        now = time.time()
        stall = self.supervision.stall_deadline(self._observed_max)
        for state in states.values():
            if state.state is not LeaseState.LEASED:
                continue
            age = leasemod.age_seconds(self.spool.lease_path(state.key), now)
            held = time.monotonic() - state.granted_at
            if age is None:
                # Lease gone without a store entry: the worker declined
                # (damaged descriptor) or the file was lost; re-lease.
                self.spool.write_shard(state.key, state.fn, state.task)
                self._expire(state, queue, on_quarantine, "lease released")
            elif age > self.policy.heartbeat_grace:
                self._expire(
                    state, queue, on_quarantine,
                    f"lease heartbeat stale ({age:.1f}s)",
                )
            elif held > stall:
                worker = state.lease_worker
                self._expire(
                    state, queue, on_quarantine,
                    f"stall deadline exceeded ({held:.1f}s > {stall:.1f}s)",
                )
                if worker in self._procs:
                    # A hung spawned worker occupies a fleet slot; kill
                    # it so the reap phase respawns a fresh one.
                    proc, _ = self._procs[worker]
                    proc.kill()

    def _detect_duplicates(self, states: Dict[str, _ShardState]) -> None:
        """Count late, byte-identical rewrites of collected shards."""
        for state in states.values():
            if (
                state.state is not LeaseState.COMPLETED
                or state.collected_mtime_ns is None
            ):
                continue
            try:
                mtime_ns = self.spool.store.path(state.key).stat().st_mtime_ns
            except FileNotFoundError:  # pragma: no cover - external cleanup
                continue
            if mtime_ns != state.collected_mtime_ns:
                _F_DUPLICATES.inc()
                state.collected_mtime_ns = mtime_ns

    def _grant(self, queue: Deque[_ShardState]) -> None:
        """Lease queued shards to idle, live workers (one each)."""
        if not queue:
            return
        now = time.time()
        busy = set()
        for path in sorted(self.spool.leases_dir.glob("*.lease")):
            parsed = leasemod.read_lease(path)
            if parsed is not None:
                busy.add(parsed.worker)
        for worker_id, age in sorted(
            leasemod.registered_workers(self.spool, now).items()
        ):
            if not queue:
                break
            if age > self.policy.heartbeat_grace or worker_id in busy:
                continue
            state = queue.popleft()
            if state.attempts > 0:
                # Self-heal a possibly damaged descriptor on re-grant.
                self.spool.write_shard(state.key, state.fn, state.task)
            pid = leasemod.worker_pid(self.spool, worker_id) or -1
            leasemod.grant_lease(
                self.spool.lease_path(state.key),
                Lease(key=state.key, worker=worker_id, pid=pid,
                      attempt=state.attempts),
            )
            state.attempts += 1
            state.state = LeaseState.LEASED
            state.lease_worker = worker_id
            state.granted_at = time.monotonic()
            _F_GRANTED.inc()

    def _check_liveness(
        self,
        states: Dict[str, _ShardState],
        queue: Deque[_ShardState],
        on_quarantine: Callable[[int, Any, str], None],
    ) -> None:
        """Fail the batch loudly when no worker can ever serve it."""
        if not self.spawn_workers:
            return  # external mode: wait for operators to attach workers
        if self._procs or not queue:
            return
        if self._respawns < self.policy.max_worker_respawns:
            return  # reap phase will respawn next tick
        if leasemod.registered_workers(self.spool, time.time()):
            return
        # Respawn budget exhausted, nothing alive, work still queued:
        # quarantine the remainder instead of spinning forever.
        while queue:
            state = queue.popleft()
            state.state = LeaseState.QUARANTINED
            _F_QUARANTINED.inc()
            on_quarantine(
                state.idx, state.task,
                "no live workers and the respawn budget is exhausted",
            )
