"""The farm worker: claim leased shards, heartbeat, publish results.

A worker is an independent OS process (spawned by the coordinator or
launched by hand -- ``tcast-experiments farm worker --spool DIR`` /
``python -m repro.farm.worker DIR``) that:

1. registers itself under ``<spool>/workers/`` and heartbeats that
   registration for as long as it lives,
2. polls ``<spool>/leases/`` for leases granted *to it* by the
   coordinator,
3. executes each leased shard (unpickling the spooled descriptor,
   verifying its frame first) while a daemon thread heartbeats the
   lease file,
4. publishes the outcome to the content-addressed store -- including
   in-shard exceptions, shipped home as data exactly like the local
   backend's :class:`~repro.experiments.resilience.ShardOutcome` -- and
   releases the lease.

Crash-safety properties:

* A worker killed mid-shard simply stops heartbeating; the coordinator
  reclaims the lease and re-grants it elsewhere.
* A worker whose lease is reclaimed *while it is still computing*
  (a stall misjudged, or a slow host) finishes anyway and publishes the
  result -- shard costs derive statelessly from the shard coordinates,
  so the duplicate is bit-identical and the atomic store write makes it
  harmless ("stolen" lease, counted by the coordinator).
* A worker that outlives its coordinator (SIGKILL) keeps draining work
  while the coordinator heartbeat is fresh, then exits on its own once
  the heartbeat has been stale for ``coordinator_grace`` seconds --
  orphans never spin forever.

Workers never touch the run journal or the final CSV; aggregation is
the coordinator's job, which is what keeps the farm's output
byte-identical to a serial run no matter how many workers died,
duplicated work, or raced on a lease.
"""

from __future__ import annotations

import argparse
import logging
import os
import signal
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.farm import lease as leasemod
from repro.farm.spool import Spool, StoreEntry

_LOG = logging.getLogger(__name__)

#: Default seconds between lease/registration heartbeat touches.
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: Default seconds between polls of the lease directory.
DEFAULT_POLL_INTERVAL = 0.2

#: Default seconds of stale coordinator heartbeat an orphaned worker
#: tolerates before exiting on its own.
DEFAULT_COORDINATOR_GRACE = 30.0


class _Heartbeat(threading.Thread):
    """Daemon thread touching the registration (and current lease) file.

    Runs for the worker's whole lifetime so a long shard computation
    cannot starve the liveness heartbeat.  The current lease is swapped
    in and out around each shard; a touch that discovers the lease file
    gone flips ``lease_lost`` so the worker knows it was reclaimed.
    """

    def __init__(self, registration: Path, interval: float) -> None:
        super().__init__(name="farm-heartbeat", daemon=True)
        self._registration = registration
        self._interval = interval
        self._lease_path: Optional[Path] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self.lease_lost = threading.Event()

    def set_lease(self, path: Optional[Path]) -> None:
        """Start (or stop, with ``None``) heartbeating a lease file."""
        with self._lock:
            self._lease_path = path
            self.lease_lost.clear()

    def stop(self) -> None:
        """Terminate the thread at the next interval boundary."""
        self._stop.set()

    def run(self) -> None:
        """Touch the registration and current lease until stopped."""
        while not self._stop.wait(self._interval):
            leasemod.touch(self._registration)
            with self._lock:
                path = self._lease_path
            if path is not None and not leasemod.touch(path):
                self.lease_lost.set()


class FarmWorker:
    """One farm worker process (see module docstring).

    Args:
        spool_root: The run's spool directory.
        worker_id: Farm-wide unique id; defaults to ``w<pid>``, which is
            unique per process and therefore across respawns too.
        heartbeat_interval: Seconds between heartbeat touches.
        poll_interval: Seconds between lease-directory polls.
        coordinator_grace: Stale-coordinator tolerance before an
            orphaned worker exits (``0`` disables the check -- tests).
    """

    def __init__(
        self,
        spool_root: os.PathLike | str,
        *,
        worker_id: Optional[str] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        coordinator_grace: float = DEFAULT_COORDINATOR_GRACE,
    ) -> None:
        self.spool = Spool(spool_root)
        self.worker_id = worker_id or f"w{os.getpid()}"
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.coordinator_grace = coordinator_grace
        #: Shards this worker completed (including stolen finishes).
        self.completed = 0
        #: Set by :meth:`request_stop` (signal handlers, tests); the
        #: drain loop waits on it instead of an uninterruptible sleep so
        #: shutdown latency is bounded by delivery, not ``poll_interval``.
        self._stop_requested = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the drain loop to exit now (safe from signal handlers).

        Wakes the loop out of its idle wait immediately; without this,
        a sleeping worker would only notice a shutdown request at the
        next ``poll_interval`` boundary.
        """
        self._stop_requested.set()

    def _should_exit(self, now: float) -> Optional[str]:
        """A reason to exit, or ``None`` to keep draining work."""
        if self._stop_requested.is_set():
            return "stop requested"
        if self.spool.stop_path.exists():
            return "coordinator requested shutdown"
        if not self.spool.manifest_path.is_file():
            return "spool discarded"
        if self.coordinator_grace > 0:
            age = leasemod.age_seconds(self.spool.heartbeat_path, now)
            if age is None or age > self.coordinator_grace:
                return (
                    f"coordinator heartbeat stale "
                    f"({'missing' if age is None else f'{age:.1f}s'})"
                )
        return None

    def _my_leases(self) -> list[leasemod.Lease]:
        """Leases currently granted to this worker, oldest grant first."""
        mine = []
        if not self.spool.leases_dir.is_dir():
            return mine
        for path in sorted(self.spool.leases_dir.glob("*.lease")):
            parsed = leasemod.read_lease(path)
            if parsed is not None and parsed.worker == self.worker_id:
                mine.append(parsed)
        return mine

    def _release(self, granted: leasemod.Lease) -> None:
        """Delete the lease file iff it still belongs to this grant."""
        path = self.spool.lease_path(granted.key)
        current = leasemod.read_lease(path)
        if (
            current is not None
            and current.worker == self.worker_id
            and current.attempt == granted.attempt
        ):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # -- shard execution ---------------------------------------------------

    def _serve(self, granted: leasemod.Lease, heartbeat: _Heartbeat) -> None:
        """Execute one granted lease end to end."""
        key = granted.key
        if self.spool.store.path(key).is_file():
            # Already computed (resume, or a duplicate grant after a
            # stolen finish): nothing to do but release the lease.
            self._release(granted)
            return
        descriptor = self.spool.read_shard(key)
        if descriptor is None:
            # Damaged descriptor: decline by releasing; the coordinator
            # rewrites the descriptor when it re-grants the shard.
            _LOG.warning("worker %s: damaged descriptor for %s; declining",
                         self.worker_id, key[:16])
            self._release(granted)
            return
        fn, task = descriptor
        heartbeat.set_lease(self.spool.lease_path(key))
        try:
            outcome = fn(task)
            entry = StoreEntry(
                key=key,
                label=str(getattr(task, "label", "?")),
                x=int(getattr(task, "x", -1)),
                lo=int(getattr(task, "run_lo", -1)),
                hi=int(getattr(task, "run_hi", -1)),
                worker=self.worker_id,
                attempt=granted.attempt,
                costs=tuple(outcome.costs) if outcome.costs is not None else None,
                snapshot=(
                    outcome.snapshot.to_dict()
                    if outcome.snapshot is not None
                    else None
                ),
                error_type=outcome.error_type,
                remote_traceback=outcome.remote_traceback,
            )
        except Exception as exc:  # the guarded fn itself failed to load/run
            entry = StoreEntry(
                key=key,
                label=str(getattr(task, "label", "?")),
                x=int(getattr(task, "x", -1)),
                lo=int(getattr(task, "run_lo", -1)),
                hi=int(getattr(task, "run_hi", -1)),
                worker=self.worker_id,
                attempt=granted.attempt,
                error_type=type(exc).__name__,
                remote_traceback=traceback.format_exc(),
            )
        finally:
            heartbeat.set_lease(None)
        self.spool.store.store(entry)
        self.completed += 1
        self._release(granted)

    def run(self) -> int:
        """Register, drain leases until told (or left) to stop; exit 0."""
        registration = leasemod.register_worker(
            self.spool, self.worker_id, os.getpid()
        )
        heartbeat = _Heartbeat(registration, self.heartbeat_interval)
        heartbeat.start()
        _LOG.info("worker %s: registered in %s", self.worker_id,
                  self.spool.root)
        try:
            while True:
                reason = self._should_exit(time.time())
                if reason is not None:
                    _LOG.info("worker %s: exiting (%s) after %d shard(s)",
                              self.worker_id, reason, self.completed)
                    return 0
                served = False
                for granted in self._my_leases():
                    self._serve(granted, heartbeat)
                    served = True
                if not served:
                    # Re-check the exit conditions (STOP marker, lost
                    # manifest, stale coordinator) before going idle: a
                    # shutdown that raced the lease poll must not cost a
                    # full poll_interval of drain latency.  The wait is
                    # interruptible -- request_stop() ends it instantly.
                    if self._should_exit(time.time()) is not None:
                        continue
                    self._stop_requested.wait(self.poll_interval)
        finally:
            heartbeat.stop()
            leasemod.deregister_worker(self.spool, self.worker_id)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point: ``python -m repro.farm.worker SPOOL``."""
    parser = argparse.ArgumentParser(
        prog="repro.farm.worker",
        description="Run one sweep-farm worker against a spool directory.",
    )
    parser.add_argument("spool", type=Path, help="the run's spool directory")
    parser.add_argument(
        "--worker-id", default=None,
        help="farm-wide unique worker id (default: w<pid>)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float,
        default=DEFAULT_HEARTBEAT_INTERVAL,
        help="seconds between lease heartbeat touches",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=DEFAULT_POLL_INTERVAL,
        help="seconds between lease-directory polls",
    )
    parser.add_argument(
        "--coordinator-grace", type=float,
        default=DEFAULT_COORDINATOR_GRACE,
        help="stale-coordinator seconds tolerated before exiting "
        "(0 disables the check)",
    )
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(levelname)s %(message)s",
    )
    worker = FarmWorker(
        args.spool,
        worker_id=args.worker_id,
        heartbeat_interval=args.heartbeat_interval,
        poll_interval=args.poll_interval,
        coordinator_grace=args.coordinator_grace,
    )

    def _on_signal(signum: int, frame: Optional[Any]) -> None:
        worker.request_stop()

    # SIGTERM/SIGINT end the idle wait immediately, so shutdown latency
    # is bounded by signal delivery rather than the poll interval.
    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    return worker.run()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
