"""Multi-worker sweep farm: coordinator, workers, spool, leases, store.

The ``local`` sweep backend (:mod:`repro.experiments.common` +
:mod:`repro.experiments.resilience`) survives crashes of *worker
processes inside one supervising process*.  This package promotes that
to a farm: a **coordinator** decomposes a sweep into content-keyed
shard descriptors, spools them to a shared directory, and *leases* them
to independently running **worker** processes; workers heartbeat by
touching their lease file; the coordinator reclaims expired leases with
bounded retries and quarantine-after-N.  Completed shards land in a
content-addressed **result store** (atomic writes, checksum on read,
corrupt entries quarantined and recomputed), so *any* participant --
worker, coordinator, or the filesystem under it -- can die mid-run and
``tcast-experiments run --backend farm --resume`` completes the sweep
byte-identically to a serial ``--backend local`` run.

Module map:

* :mod:`repro.farm.spool` -- spool directory layout, framed shard
  descriptors, the :class:`~repro.farm.spool.ShardStore`.
* :mod:`repro.farm.lease` -- lease files, heartbeats, worker
  registration, staleness checks.
* :mod:`repro.farm.worker` -- the worker loop and its CLI entry point
  (``python -m repro.farm.worker`` / ``tcast-experiments farm worker``).
* :mod:`repro.farm.coordinator` -- the coordinator loop
  (:class:`~repro.farm.coordinator.FarmCoordinator`) that the sweep
  engine drives through :class:`repro.experiments.resilience.RunContext`.

See DESIGN.md section "Distributed sweep farm" for the lease state
machine and the recovery walk-throughs.
"""

from repro.farm.coordinator import FarmCoordinator, FarmPolicy
from repro.farm.lease import Lease, LeaseState
from repro.farm.spool import ShardStore, Spool, StoreEntry, shard_key
from repro.farm.worker import FarmWorker

__all__ = [
    "FarmCoordinator",
    "FarmPolicy",
    "FarmWorker",
    "Lease",
    "LeaseState",
    "ShardStore",
    "Spool",
    "StoreEntry",
    "shard_key",
]
