"""The generic mote: radio + application + serial-style control verbs.

The paper's testbed drives every mote through a serial interface exposing
``configure``, ``query`` (initiator only) and ``reboot``.  The emulated
mote mirrors that: the :class:`repro.motes.testbed.Testbed` plays the
laptop's role and calls these verbs directly.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.radio.cc2420 import Cc2420Radio
from repro.sim.kernel import Simulator


class MoteApp(Protocol):
    """Application hosted on a mote."""

    def boot(self) -> None:
        """(Re)initialise application state and radio bindings."""
        ...


class Mote:
    """A TelosB-like mote: one radio, one application.

    Args:
        sim: The discrete-event simulator.
        radio: The mote's radio (already attached to the channel).
        app: The hosted application; ``boot`` is invoked immediately.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Cc2420Radio,
        app: Optional[MoteApp] = None,
    ) -> None:
        self._sim = sim
        self._radio = radio
        self._app = app
        self._boot_count = 0
        self._crashed = False
        if app is not None:
            self.reboot()

    @property
    def mote_id(self) -> int:
        """The mote's identifier (its radio hardware address)."""
        return self._radio.address

    @property
    def radio(self) -> Cc2420Radio:
        """The mote's radio."""
        return self._radio

    @property
    def app(self) -> Optional[MoteApp]:
        """The hosted application."""
        return self._app

    @property
    def boot_count(self) -> int:
        """How many times the mote has (re)booted."""
        return self._boot_count

    @property
    def crashed(self) -> bool:
        """Whether the mote is currently crashed (radio powered off)."""
        return self._crashed

    def crash(self) -> None:
        """Fail-silent crash: power the radio off until the next reboot.

        A crashed mote stops HACK-ing, voting and receiving announces.
        If the radio is mid-transmission the power-down is deferred until
        the frame leaves the air (a real power loss would truncate it;
        the emulated channel has no partial-frame notion, so the nearest
        faithful point is the frame boundary).  Used by
        :class:`repro.faults.injectors.MoteCrash`.
        """
        if self._radio.is_transmitting():
            self._sim.schedule(1.0, self.crash, label="crash-retry")
            return
        self._radio.power_off()
        self._crashed = True

    def reboot(self) -> None:
        """Power-cycle the mote: reset radio defaults and re-boot the app.

        The paper reboots every mote between runs "to remove the effect of
        the previous run"; the testbed does the same.  A reboot also
        recovers a :meth:`crash`-ed mote (its predicate configuration
        survives, as on the real testbed).
        """
        self._crashed = False
        self._radio.power_on()
        self._radio.set_short_address(self._radio.address)
        self._radio.set_auto_ack(True)
        if self._app is not None:
            self._app.boot()
        self._boot_count += 1
