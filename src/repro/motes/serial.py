"""The serial control plane of the testbed (Sec IV-D).

"All motes are directly connected to a central controlling unit (in our
case the laptop) via serial port interface.  The initiator mote exposes
*configure*, *query* and *reboot* functions via serial interface to the
laptop, while the participant provides only *configure* and *reboot*
procedures."

This module implements that control plane at the byte level:

* **Framing** -- SLIP-style: frames end with ``END`` (0xC0); ``END`` and
  ``ESC`` bytes inside the payload are escaped (``ESC ESC_END`` /
  ``ESC ESC_ESC``), so arbitrary binary payloads survive the wire.
* **Integrity** -- a 1-byte additive checksum trails every payload;
  corrupt frames are dropped and counted.
* **Commands** -- CONFIGURE (predicate id + positive flag), REBOOT, and
  QUERY (threshold + algorithm code, initiator only); responses are ACK
  and RESULT (decision + query count).
* :class:`SerialTestbedController` -- the laptop side: drives a
  :class:`repro.motes.testbed.Testbed` purely through encoded frames, so
  the whole experiment lifecycle is exercised over the wire format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.core.abns import ProbabilisticAbns
from repro.core.exponential import ExponentialIncrease
from repro.core.two_t_bins import TwoTBins
from repro.motes.testbed import Testbed

# ---------------------------------------------------------------------------
# Framing (SLIP-style)
# ---------------------------------------------------------------------------

END = 0xC0
ESC = 0xDB
ESC_END = 0xDC
ESC_ESC = 0xDD


def _checksum(payload: bytes) -> int:
    return sum(payload) & 0xFF


def encode_frame(payload: bytes) -> bytes:
    """Encode one payload into an escaped, checksummed frame.

    Args:
        payload: Raw command/response bytes (non-empty; no command or
            response on this wire is ever empty).

    Returns:
        The on-wire byte string (always ends with ``END``).

    Raises:
        ValueError: For an empty payload.
    """
    if not payload:
        raise ValueError("serial payloads must be non-empty")
    body = payload + bytes([_checksum(payload)])
    out = bytearray()
    for b in body:
        if b == END:
            out += bytes([ESC, ESC_END])
        elif b == ESC:
            out += bytes([ESC, ESC_ESC])
        else:
            out.append(b)
    out.append(END)
    return bytes(out)


class FrameDecoder:
    """Incremental SLIP decoder with checksum verification.

    Bytes may arrive in arbitrary fragments; complete, valid payloads are
    handed to the callback and corrupt frames are counted and dropped.

    Args:
        on_frame: Called with each valid decoded payload.
    """

    def __init__(self, on_frame: Callable[[bytes], None]) -> None:
        self._on_frame = on_frame
        self._buffer = bytearray()
        self._escaping = False
        self._dropped = 0

    @property
    def dropped_frames(self) -> int:
        """Frames discarded due to checksum or escape violations."""
        return self._dropped

    def feed(self, data: bytes) -> None:
        """Consume a chunk of wire bytes (any fragmentation)."""
        for b in data:
            if self._escaping:
                self._escaping = False
                if b == ESC_END:
                    self._buffer.append(END)
                elif b == ESC_ESC:
                    self._buffer.append(ESC)
                else:
                    # Invalid escape: poison the frame so the checksum
                    # fails and it is counted as dropped at frame end.
                    self._buffer.append(0xFF)
                continue
            if b == ESC:
                self._escaping = True
                continue
            if b == END:
                self._finish_frame()
                continue
            self._buffer.append(b)

    def _finish_frame(self) -> None:
        body = bytes(self._buffer)
        self._buffer.clear()
        self._escaping = False
        if len(body) < 2:
            if body:
                self._dropped += 1
            return
        payload, check = body[:-1], body[-1]
        if _checksum(payload) != check:
            self._dropped += 1
            return
        self._on_frame(payload)


# ---------------------------------------------------------------------------
# Command set
# ---------------------------------------------------------------------------

CMD_CONFIGURE = 0x01
CMD_REBOOT = 0x02
CMD_QUERY = 0x03
RSP_ACK = 0x80
RSP_RESULT = 0x81

#: Algorithm codes for the QUERY command.
ALGORITHM_CODES = {0: TwoTBins, 1: ExponentialIncrease, 2: ProbabilisticAbns}


@dataclass(frozen=True)
class QueryResponse:
    """Decoded RESULT response.

    Attributes:
        decision: The threshold verdict.
        queries: On-air bin queries the session used.
    """

    decision: bool
    queries: int


class SerialTestbedController:
    """The laptop: drives a testbed exclusively through serial frames.

    Every verb is round-tripped through :func:`encode_frame` and a
    :class:`FrameDecoder` on both directions, so the byte protocol --
    not just the Python API -- is what the tests exercise.

    Args:
        testbed: The emulated testbed to control.
    """

    def __init__(self, testbed: Testbed) -> None:
        self._testbed = testbed
        self._responses: List[bytes] = []
        self._mote_decoders: Dict[int, FrameDecoder] = {}
        self._laptop_decoder = FrameDecoder(self._responses.append)

    # -- mote side -------------------------------------------------------

    def _dispatch(self, mote_id: int, payload: bytes) -> None:
        """Execute one decoded command on a mote; emit the response."""
        if not payload:
            return
        cmd = payload[0]
        if cmd == CMD_CONFIGURE:
            predicate_id, positive = payload[1], bool(payload[2])
            if mote_id < self._testbed.num_participants:
                self._testbed.configure_one(
                    mote_id, positive, predicate_id=predicate_id
                )
            self._reply(bytes([RSP_ACK, cmd]))
        elif cmd == CMD_REBOOT:
            self._testbed.reboot_all()
            self._reply(bytes([RSP_ACK, cmd]))
        elif cmd == CMD_QUERY:
            if mote_id != self._testbed.num_participants:
                raise ValueError(
                    "only the initiator mote exposes the query verb"
                )
            threshold = payload[1]
            algo_code = payload[2]
            predicate_id = payload[3]
            try:
                factory = ALGORITHM_CODES[algo_code]
            except KeyError:
                raise ValueError(f"unknown algorithm code {algo_code}") from None
            run = self._testbed.run_threshold_query(
                factory(),
                threshold,
                predicate_id=predicate_id,
                bin_rng=np.random.default_rng(
                    self._testbed.config.seed + 7_777
                ),
            )
            self._reply(
                bytes(
                    [
                        RSP_RESULT,
                        1 if run.result.decision else 0,
                        run.result.queries & 0xFF,
                        (run.result.queries >> 8) & 0xFF,
                    ]
                )
            )
        else:
            raise ValueError(f"unknown command byte 0x{cmd:02x}")

    def _reply(self, payload: bytes) -> None:
        # Mote -> laptop direction: encode, then decode on the laptop.
        self._laptop_decoder.feed(encode_frame(payload))

    def _send(self, mote_id: int, payload: bytes) -> None:
        # Laptop -> mote direction: encode, then decode on the mote.
        decoder = self._mote_decoders.get(mote_id)
        if decoder is None:
            decoder = FrameDecoder(
                lambda p, mote_id=mote_id: self._dispatch(mote_id, p)
            )
            self._mote_decoders[mote_id] = decoder
        decoder.feed(encode_frame(payload))

    def _pop_response(self) -> bytes:
        if not self._responses:
            raise RuntimeError("no serial response received")
        return self._responses.pop(0)

    # -- laptop verbs ----------------------------------------------------

    def configure(
        self, mote_id: int, positive: bool, *, predicate_id: int = 0
    ) -> None:
        """Configure one participant's predicate answer over the wire.

        Raises:
            RuntimeError: If the mote does not acknowledge.
        """
        self._send(
            mote_id,
            bytes([CMD_CONFIGURE, predicate_id, 1 if positive else 0]),
        )
        rsp = self._pop_response()
        if rsp[:2] != bytes([RSP_ACK, CMD_CONFIGURE]):
            raise RuntimeError(f"configure not acknowledged: {rsp.hex()}")

    def configure_positives(
        self, positives, *, predicate_id: int = 0
    ) -> None:
        """Configure every participant (positives set, negatives cleared)."""
        wanted = set(int(p) for p in positives)
        for mote_id in range(self._testbed.num_participants):
            self.configure(
                mote_id, mote_id in wanted, predicate_id=predicate_id
            )

    def reboot(self) -> None:
        """Reboot all motes over the wire (the between-runs hygiene)."""
        self._send(self._testbed.num_participants, bytes([CMD_REBOOT]))
        rsp = self._pop_response()
        if rsp[:2] != bytes([RSP_ACK, CMD_REBOOT]):
            raise RuntimeError(f"reboot not acknowledged: {rsp.hex()}")

    def query(
        self,
        threshold: int,
        *,
        algorithm_code: int = 0,
        predicate_id: int = 0,
    ) -> QueryResponse:
        """Stimulate a threshold query on the initiator over the wire.

        Args:
            threshold: The threshold ``t`` (0..255 on this wire format).
            algorithm_code: Key into :data:`ALGORITHM_CODES`.
            predicate_id: Which predicate to query.

        Returns:
            The decoded :class:`QueryResponse`.

        Raises:
            ValueError: For thresholds outside the 1-byte wire range.
            RuntimeError: On a malformed response.
        """
        if not 0 <= threshold <= 255:
            raise ValueError(f"threshold must fit one byte, got {threshold}")
        self._send(
            self._testbed.num_participants,
            bytes([CMD_QUERY, threshold, algorithm_code, predicate_id]),
        )
        rsp = self._pop_response()
        if len(rsp) != 4 or rsp[0] != RSP_RESULT:
            raise RuntimeError(f"malformed query response: {rsp.hex()}")
        return QueryResponse(
            decision=bool(rsp[1]),
            queries=rsp[2] | (rsp[3] << 8),
        )
