"""The serial control plane of the testbed (Sec IV-D).

"All motes are directly connected to a central controlling unit (in our
case the laptop) via serial port interface.  The initiator mote exposes
*configure*, *query* and *reboot* functions via serial interface to the
laptop, while the participant provides only *configure* and *reboot*
procedures."

This module implements that control plane at the byte level:

* **Framing** -- SLIP-style: frames end with ``END`` (0xC0); ``END`` and
  ``ESC`` bytes inside the payload are escaped (``ESC ESC_END`` /
  ``ESC ESC_ESC``), so arbitrary binary payloads survive the wire.
* **Integrity** -- a 1-byte additive checksum trails every payload;
  corrupt frames are dropped and counted.
* **Reliability** -- every command carries a 1-byte sequence number; a
  receiver that drops a corrupt frame answers **NAK**, and the laptop
  retransmits (bounded budget).  Duplicate sequence numbers are served
  from the receiver's cached response without re-execution, so a lost
  *response* never re-runs a non-idempotent QUERY.  Link health is
  surfaced as :class:`SerialLinkStats`.
* **Commands** -- CONFIGURE (predicate id + positive flag), REBOOT, and
  QUERY (threshold + algorithm code, initiator only); responses are ACK
  and RESULT (decision + query count).
* :class:`SerialTestbedController` -- the laptop side: drives a
  :class:`repro.motes.testbed.Testbed` purely through encoded frames, so
  the whole experiment lifecycle is exercised over the wire format.
  Byte corruption is injectable through a
  :class:`repro.faults.plan.FaultPlan` carrying
  :class:`~repro.faults.injectors.SerialByteCorruption`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.abns import ProbabilisticAbns
from repro.core.exponential import ExponentialIncrease
from repro.core.two_t_bins import TwoTBins
from repro.faults.plan import FaultPlan
from repro.motes.testbed import Testbed

# ---------------------------------------------------------------------------
# Framing (SLIP-style)
# ---------------------------------------------------------------------------

END = 0xC0
ESC = 0xDB
ESC_END = 0xDC
ESC_ESC = 0xDD


def _checksum(payload: bytes) -> int:
    return sum(payload) & 0xFF


def encode_frame(payload: bytes) -> bytes:
    """Encode one payload into an escaped, checksummed frame.

    Args:
        payload: Raw command/response bytes (non-empty; no command or
            response on this wire is ever empty).

    Returns:
        The on-wire byte string (always ends with ``END``).

    Raises:
        ValueError: For an empty payload.
    """
    if not payload:
        raise ValueError("serial payloads must be non-empty")
    body = payload + bytes([_checksum(payload)])
    out = bytearray()
    for b in body:
        if b == END:
            out += bytes([ESC, ESC_END])
        elif b == ESC:
            out += bytes([ESC, ESC_ESC])
        else:
            out.append(b)
    out.append(END)
    return bytes(out)


class FrameDecoder:
    """Incremental SLIP decoder with checksum verification.

    Bytes may arrive in arbitrary fragments; complete, valid payloads are
    handed to the callback and corrupt frames are counted and dropped.

    Args:
        on_frame: Called with each valid decoded payload.
        on_drop: Optional callback fired once per dropped frame -- the
            hook the NAK handshake hangs off (the receiver answers
            ``RSP_NAK`` so the sender retransmits).
    """

    def __init__(
        self,
        on_frame: Callable[[bytes], None],
        on_drop: Optional[Callable[[], None]] = None,
    ) -> None:
        self._on_frame = on_frame
        self._on_drop = on_drop
        self._buffer = bytearray()
        self._escaping = False
        self._dropped = 0

    @property
    def dropped_frames(self) -> int:
        """Frames discarded due to checksum or escape violations."""
        return self._dropped

    def _drop(self) -> None:
        self._dropped += 1
        if self._on_drop is not None:
            self._on_drop()

    def feed(self, data: bytes) -> None:
        """Consume a chunk of wire bytes (any fragmentation)."""
        for b in data:
            if self._escaping:
                self._escaping = False
                if b == ESC_END:
                    self._buffer.append(END)
                elif b == ESC_ESC:
                    self._buffer.append(ESC)
                else:
                    # Invalid escape: poison the frame so the checksum
                    # fails and it is counted as dropped at frame end.
                    self._buffer.append(0xFF)
                continue
            if b == ESC:
                self._escaping = True
                continue
            if b == END:
                self._finish_frame()
                continue
            self._buffer.append(b)

    def _finish_frame(self) -> None:
        body = bytes(self._buffer)
        self._buffer.clear()
        self._escaping = False
        if len(body) < 2:
            if body:
                self._drop()
            return
        payload, check = body[:-1], body[-1]
        if _checksum(payload) != check:
            self._drop()
            return
        self._on_frame(payload)


# ---------------------------------------------------------------------------
# Command set
# ---------------------------------------------------------------------------

CMD_CONFIGURE = 0x01
CMD_REBOOT = 0x02
CMD_QUERY = 0x03
RSP_ACK = 0x80
RSP_RESULT = 0x81
RSP_NAK = 0x82

#: Placeholder sequence byte on NAK responses (the receiver could not
#: recover the corrupt frame's sequence number).
NAK_SEQ = 0xFF

#: Algorithm codes for the QUERY command.
ALGORITHM_CODES = {0: TwoTBins, 1: ExponentialIncrease, 2: ProbabilisticAbns}


@dataclass(frozen=True)
class QueryResponse:
    """Decoded RESULT response.

    Attributes:
        decision: The threshold verdict.
        queries: On-air bin queries the session used.
    """

    decision: bool
    queries: int


@dataclass(frozen=True)
class SerialLinkStats:
    """Health counters for the serial link (surfaced per controller).

    Attributes:
        command_retransmissions: Commands the laptop re-sent after a NAK
            or a missing response.
        naks_received: NAK frames the laptop got back from motes.
        duplicates_suppressed: Retransmitted commands a mote recognised
            by sequence number and answered from its response cache
            (i.e. lost *responses* recovered without re-execution).
        laptop_dropped_frames: Response frames the laptop's decoder
            discarded as corrupt.
        mote_dropped_frames: Command frames mote decoders discarded as
            corrupt (summed over all motes).
    """

    command_retransmissions: int = 0
    naks_received: int = 0
    duplicates_suppressed: int = 0
    laptop_dropped_frames: int = 0
    mote_dropped_frames: int = 0


class SerialTestbedController:
    """The laptop: drives a testbed exclusively through serial frames.

    Every verb is round-tripped through :func:`encode_frame` and a
    :class:`FrameDecoder` on both directions, so the byte protocol --
    not just the Python API -- is what the tests exercise.

    Commands carry a 1-byte sequence number.  A receiver that drops a
    corrupt command answers ``RSP_NAK``; the laptop retransmits up to
    ``max_retransmits`` times.  Motes cache their last response per
    sequence number, so a retransmit caused by a lost *response* is
    answered from the cache without re-running the command (QUERY is not
    idempotent).

    Args:
        testbed: The emulated testbed to control.
        fault_plan: Optional fault plan; its
            :class:`~repro.faults.injectors.SerialByteCorruption`
            injectors corrupt wire bytes in both directions.  ``None``
            means a clean wire.
        max_retransmits: Retransmission budget per command before the
            verb fails with :class:`RuntimeError`.
    """

    def __init__(
        self,
        testbed: Testbed,
        *,
        fault_plan: Optional[FaultPlan] = None,
        max_retransmits: int = 3,
    ) -> None:
        if max_retransmits < 0:
            raise ValueError("max_retransmits must be >= 0")
        self._testbed = testbed
        self._plan = fault_plan if fault_plan is not None else FaultPlan.none()
        self._max_retransmits = int(max_retransmits)
        self._responses: List[bytes] = []
        self._mote_decoders: Dict[int, FrameDecoder] = {}
        self._laptop_decoder = FrameDecoder(self._responses.append)
        self._next_seq: Dict[int, int] = {}
        self._response_cache: Dict[int, tuple] = {}
        self._retransmits = 0
        self._naks = 0
        self._duplicates = 0

    @property
    def link_stats(self) -> SerialLinkStats:
        """Current link-health counters (see :class:`SerialLinkStats`)."""
        return SerialLinkStats(
            command_retransmissions=self._retransmits,
            naks_received=self._naks,
            duplicates_suppressed=self._duplicates,
            laptop_dropped_frames=self._laptop_decoder.dropped_frames,
            mote_dropped_frames=sum(
                d.dropped_frames for d in self._mote_decoders.values()
            ),
        )

    # -- mote side -------------------------------------------------------

    def _dispatch(self, mote_id: int, payload: bytes) -> None:
        """Execute one decoded command on a mote; emit the response."""
        if len(payload) < 2:
            return
        seq, cmd = payload[0], payload[1]
        cached = self._response_cache.get(mote_id)
        if cached is not None and cached[0] == seq:
            # Retransmit of an already-executed command: the response
            # was lost, not the command.  Serve the cache.
            self._duplicates += 1
            self._reply(cached[1])
            return
        body = payload[2:]
        if cmd == CMD_CONFIGURE:
            predicate_id, positive = body[0], bool(body[1])
            if mote_id < self._testbed.num_participants:
                self._testbed.configure_one(
                    mote_id, positive, predicate_id=predicate_id
                )
            response = bytes([seq, RSP_ACK, cmd])
        elif cmd == CMD_REBOOT:
            self._testbed.reboot_all()
            response = bytes([seq, RSP_ACK, cmd])
        elif cmd == CMD_QUERY:
            if mote_id != self._testbed.num_participants:
                raise ValueError(
                    "only the initiator mote exposes the query verb"
                )
            threshold = body[0]
            algo_code = body[1]
            predicate_id = body[2]
            try:
                factory = ALGORITHM_CODES[algo_code]
            except KeyError:
                raise ValueError(f"unknown algorithm code {algo_code}") from None
            run = self._testbed.run_threshold_query(
                factory(),
                threshold,
                predicate_id=predicate_id,
                bin_rng=self._testbed.rngs.stream("serial.bins"),
            )
            response = bytes(
                [
                    seq,
                    RSP_RESULT,
                    1 if run.result.decision else 0,
                    run.result.queries & 0xFF,
                    (run.result.queries >> 8) & 0xFF,
                ]
            )
        else:
            raise ValueError(f"unknown command byte 0x{cmd:02x}")
        self._response_cache[mote_id] = (seq, response)
        self._reply(response)

    def _reply(self, payload: bytes) -> None:
        # Mote -> laptop direction: encode, then decode on the laptop.
        self._laptop_decoder.feed(self._plan.corrupt_wire(encode_frame(payload)))

    def _nak(self) -> None:
        # A mote decoder dropped a corrupt command frame: answer NAK so
        # the laptop retransmits.  (The NAK traverses the same lossy
        # wire; if it is lost too, the laptop's no-response path covers
        # it.)
        self._reply(bytes([NAK_SEQ, RSP_NAK]))

    def _send(self, mote_id: int, payload: bytes) -> bytes:
        """Deliver one command reliably; return its response payload.

        The returned payload has the sequence byte stripped (it starts
        with the ``RSP_*`` type byte).

        Raises:
            RuntimeError: If the retransmission budget is exhausted.
        """
        decoder = self._mote_decoders.get(mote_id)
        if decoder is None:
            decoder = FrameDecoder(
                lambda p, mote_id=mote_id: self._dispatch(mote_id, p),
                on_drop=self._nak,
            )
            self._mote_decoders[mote_id] = decoder
        seq = self._next_seq.get(mote_id, 0)
        self._next_seq[mote_id] = (seq + 1) & 0xFF
        wire = encode_frame(bytes([seq]) + payload)
        for attempt in range(1 + self._max_retransmits):
            if attempt:
                self._retransmits += 1
            before = len(self._responses)
            decoder.feed(self._plan.corrupt_wire(wire))
            if len(self._responses) == before:
                # Command or response lost outright (corrupt frame with
                # the NAK lost too, or a corrupted END merging frames).
                continue
            rsp = self._responses.pop()
            if len(rsp) >= 2 and rsp[1] == RSP_NAK:
                self._naks += 1
                continue
            if rsp[0] != seq:
                # A corrupted frame that slipped past the checksum, or a
                # stale cached response: treat as lost.
                continue
            return rsp[1:]
        raise RuntimeError(
            f"serial command 0x{payload[0]:02x} to mote {mote_id} "
            f"undeliverable after {self._max_retransmits} retransmissions"
        )

    # -- laptop verbs ----------------------------------------------------

    def configure(
        self, mote_id: int, positive: bool, *, predicate_id: int = 0
    ) -> None:
        """Configure one participant's predicate answer over the wire.

        Raises:
            RuntimeError: If the mote does not acknowledge.
        """
        rsp = self._send(
            mote_id,
            bytes([CMD_CONFIGURE, predicate_id, 1 if positive else 0]),
        )
        if rsp[:2] != bytes([RSP_ACK, CMD_CONFIGURE]):
            raise RuntimeError(f"configure not acknowledged: {rsp.hex()}")

    def configure_positives(
        self, positives, *, predicate_id: int = 0
    ) -> None:
        """Configure every participant (positives set, negatives cleared)."""
        wanted = set(int(p) for p in positives)
        for mote_id in range(self._testbed.num_participants):
            self.configure(
                mote_id, mote_id in wanted, predicate_id=predicate_id
            )

    def reboot(self) -> None:
        """Reboot all motes over the wire (the between-runs hygiene)."""
        rsp = self._send(self._testbed.num_participants, bytes([CMD_REBOOT]))
        if rsp[:2] != bytes([RSP_ACK, CMD_REBOOT]):
            raise RuntimeError(f"reboot not acknowledged: {rsp.hex()}")

    def query(
        self,
        threshold: int,
        *,
        algorithm_code: int = 0,
        predicate_id: int = 0,
    ) -> QueryResponse:
        """Stimulate a threshold query on the initiator over the wire.

        Args:
            threshold: The threshold ``t`` (0..255 on this wire format).
            algorithm_code: Key into :data:`ALGORITHM_CODES`.
            predicate_id: Which predicate to query.

        Returns:
            The decoded :class:`QueryResponse`.

        Raises:
            ValueError: For thresholds outside the 1-byte wire range.
            RuntimeError: On a malformed response.
        """
        if not 0 <= threshold <= 255:
            raise ValueError(f"threshold must fit one byte, got {threshold}")
        rsp = self._send(
            self._testbed.num_participants,
            bytes([CMD_QUERY, threshold, algorithm_code, predicate_id]),
        )
        if len(rsp) != 4 or rsp[0] != RSP_RESULT:
            raise RuntimeError(f"malformed query response: {rsp.hex()}")
        return QueryResponse(
            decision=bool(rsp[1]),
            queries=rsp[2] | (rsp[3] << 8),
        )
