"""The initiator application: packet-level bin queries.

Wraps a backcast or pollcast driver and converts its outcome into the
abstract :class:`repro.group_testing.model.BinObservation` so tcast
algorithms run unchanged on the packet-level substrate.  The observation
is 1+ semantics: the initiator's radio either latched the (superposed)
HACK / sensed vote energy, or it did not.
"""

from __future__ import annotations

from typing import Literal, Optional, Sequence

from repro.group_testing.model import BinObservation, ObservationKind
from repro.primitives.backcast import BackcastInitiator
from repro.primitives.pollcast import PollcastInitiator
from repro.primitives.votecast import VotecastInitiator
from repro.radio.cc2420 import Cc2420Radio
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

PrimitiveName = Literal["backcast", "pollcast", "votecast"]


class InitiatorApp:
    """Initiator-side application (the paper's ``query`` verb).

    Args:
        sim: The discrete-event simulator.
        radio: The initiator's radio.
        primitive: Which RCD primitive to query bins with.
        tracer: Optional tracer shared with the substrate.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Cc2420Radio,
        *,
        primitive: PrimitiveName = "backcast",
        tracer: Optional[Tracer] = None,
    ) -> None:
        if primitive not in ("backcast", "pollcast", "votecast"):
            raise ValueError(f"unknown primitive {primitive!r}")
        self._sim = sim
        self._radio = radio
        self._primitive_name: PrimitiveName = primitive
        self._backcast = BackcastInitiator(sim, radio, tracer=tracer)
        self._pollcast = PollcastInitiator(sim, radio, tracer=tracer)
        self._votecast = (
            VotecastInitiator(sim, radio, tracer=tracer)
            if primitive == "votecast"
            else None
        )
        self._queries = 0
        self._query_time_us = 0.0
        self._round_lookup: dict[frozenset[int], int] = {}

    def boot(self) -> None:
        """Reset session counters (mote reboot)."""
        self._queries = 0
        self._query_time_us = 0.0
        self._round_lookup = {}

    @property
    def primitive(self) -> PrimitiveName:
        """The RCD primitive in use."""
        return self._primitive_name

    @property
    def queries_issued(self) -> int:
        """Bin queries performed since the last boot."""
        return self._queries

    @property
    def query_time_us(self) -> float:
        """Cumulative air-protocol time spent in queries since boot."""
        return self._query_time_us

    def begin_round(
        self, bins: Sequence[Sequence[int]], *, predicate_id: int = 0
    ) -> None:
        """Announce a whole round's bin assignment (backcast only).

        Subsequent :meth:`query_bin` calls whose member set matches one of
        the announced bins are served by a bare per-bin poll instead of a
        full announce-plus-poll exchange -- the paper's round-oriented
        protocol.  Pollcast carries the member list in every poll and has
        no use for the hook.
        """
        if self._primitive_name != "backcast":
            return
        before = self._sim.now
        self._backcast.announce_round(
            [list(b) for b in bins], predicate_id=predicate_id
        )
        self._query_time_us += self._sim.now - before
        self._round_lookup = {
            frozenset(b): i for i, b in enumerate(self._backcast.round_bins)
        }

    def query_bin(
        self,
        members: Sequence[int],
        *,
        predicate_id: int = 0,
    ) -> BinObservation:
        """Query one bin and map the outcome to 1+ semantics.

        Args:
            members: Participant ids in the bin.
            predicate_id: Predicate identifier.

        Returns:
            ``ACTIVITY``/``SILENT`` under backcast and pollcast (1+
            semantics); ``CAPTURE``/``ACTIVITY``(>=2)/``SILENT`` under
            votecast (2+ semantics).
        """
        self._queries += 1
        if self._primitive_name == "votecast":
            assert self._votecast is not None
            voutcome = self._votecast.query(members, predicate_id=predicate_id)
            self._query_time_us += voutcome.duration_us
            return voutcome.observation
        if self._primitive_name == "backcast":
            bin_index = self._round_lookup.get(frozenset(int(m) for m in members))
            if bin_index is not None:
                outcome = self._backcast.poll_bin(bin_index)
            else:
                outcome = self._backcast.query(
                    members, predicate_id=predicate_id
                )
            self._query_time_us += outcome.duration_us
            nonempty = outcome.nonempty
        else:
            poutcome = self._pollcast.query(members, predicate_id=predicate_id)
            self._query_time_us += poutcome.duration_us
            nonempty = poutcome.nonempty
        if nonempty:
            return BinObservation(kind=ObservationKind.ACTIVITY, min_positives=1)
        return BinObservation(kind=ObservationKind.SILENT, min_positives=0)
