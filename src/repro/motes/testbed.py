"""The laptop-side testbed controller (Sec IV-D's experimental setup).

Replicates the paper's harness: an initiator mote plus ``N`` participant
motes (12 in the paper), all driven through serial-interface verbs --
``configure``, ``query``, ``reboot`` -- by a central controller.  Each run
configures the positive set, stimulates the initiator to execute a tcast
session over backcast (or pollcast), collects the verdict, and reboots
every mote before the next run.

:class:`TestbedQueryAdapter` bridges the packet-level initiator to the
abstract :class:`repro.group_testing.model.QueryModel` protocol, so the
*same* algorithm implementations (2tBins etc.) run unchanged against the
emulated radios -- the key fidelity claim of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.base import ThresholdAlgorithm
from repro.core.reliable import ReliableThreshold, RetryPolicy
from repro.core.result import ThresholdResult
from repro.faults.plan import FaultPlan
from repro.group_testing.model import BinObservation
from repro.motes.initiator import InitiatorApp, PrimitiveName
from repro.motes.mote import Mote
from repro.motes.participant import ParticipantApp
from repro.obs import get_registry
from repro.primitives.common import ChannelWedged
from repro.radio.capture import CaptureModel
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.radio.irregularity import HackMissModel, IdealRadioModel
from repro.radio.timing import DEFAULT_TIMING, PhyTiming
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


#: Import-time instruments for the reliable control plane (inert until
#: metrics are enabled; no randomness is drawn here).
_OBS = get_registry()
_T_TIMEOUTS = _OBS.counter("reliable.timeouts")
_T_REBOOTS = _OBS.counter("reliable.reboots")
_T_WEDGES = _OBS.counter("reliable.wedges")


class QueryDeadlineExceeded(RuntimeError):
    """A testbed session blew through its control-plane deadline.

    Raised by :class:`TestbedQueryAdapter` when a query is attempted past
    the session's ``deadline_us``.  :meth:`Testbed.run_reliable_query`
    treats it -- like :class:`repro.primitives.common.ChannelWedged` --
    as a wedged session and recovers by rebooting and backing off.
    """


@dataclass(frozen=True)
class TestbedConfig:
    """Construction parameters for a testbed.

    Attributes:
        num_participants: Participant mote count (the paper uses 12).
        seed: Root seed for all randomness in the emulation.
        primitive: RCD primitive for bin queries.
        hack_miss: Radio-irregularity model (``None`` = ideal radios).
        capture_model: Collision capture model (``None`` = default 1/k).
        timing: PHY timing constants.
        trace: Enable structured tracing (slower; for tests/debugging).
        fault_plan: Optional :class:`repro.faults.plan.FaultPlan` whose
            testbed injectors (HACK-miss bursts, mote crashes, stuck
            transmitters) are armed at construction.  ``None`` and
            ``FaultPlan.none()`` are equivalent and leave every code
            path untouched.
    """

    # Not a pytest test class despite the name.
    __test__ = False

    num_participants: int = 12
    seed: int = 0
    primitive: PrimitiveName = "backcast"
    hack_miss: Optional[HackMissModel | IdealRadioModel] = None
    capture_model: Optional[CaptureModel] = None
    timing: PhyTiming = field(default_factory=lambda: DEFAULT_TIMING)
    trace: bool = False
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.num_participants < 1:
            raise ValueError(
                f"need >= 1 participant, got {self.num_participants}"
            )


@dataclass(frozen=True)
class TestbedRun:
    """Outcome of one testbed tcast run.

    Attributes:
        result: The algorithm's :class:`ThresholdResult` (queries = bin
            queries issued on air).
        truth: Ground-truth answer to ``x >= t``.
        false_negative: Algorithm said *false* while the truth is *true*
            (the error mode radio irregularities can cause).
        false_positive: Algorithm said *true* while the truth is *false*
            (must never happen over backcast).
        elapsed_us: Simulated air-protocol time the session took.
        hack_misses: Ground-truth HACK-latch failures during the run.
        initiator_energy_uj: Energy the initiator's radio spent during the
            run.
    """

    # Not a pytest test class despite the name.
    __test__ = False

    result: ThresholdResult
    truth: bool
    false_negative: bool
    false_positive: bool
    elapsed_us: float
    hack_misses: int
    initiator_energy_uj: float


class TestbedQueryAdapter:
    """Adapts the packet-level initiator to the ``QueryModel`` protocol.

    Args:
        testbed: The owning testbed.
        predicate_id: Which predicate this session queries (motes hold an
            independent positive/negative answer per predicate, so one
            deployment can serve several concurrent questions -- e.g. the
            paper's intruder *classification* use case).
        deadline_us: Optional absolute simulated time after which further
            queries raise :class:`QueryDeadlineExceeded` (the reliable
            control plane's per-attempt timeout).
    """

    # Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        testbed: "Testbed",
        *,
        predicate_id: int = 0,
        deadline_us: Optional[float] = None,
    ) -> None:
        self._testbed = testbed
        self._predicate_id = predicate_id
        self._deadline_us = deadline_us
        self._queries = 0

    @property
    def queries_used(self) -> int:
        """Bin queries issued through this adapter."""
        return self._queries

    @property
    def population_size(self) -> int:
        """Number of participant motes."""
        return self._testbed.num_participants

    def begin_round(self, bins: Sequence[Sequence[int]]) -> None:
        """Broadcast a round's bin assignment (free of query cost: the
        announce is part of the round's setup, mirroring the abstract
        model where re-binning is bookkeeping, not a query)."""
        self._testbed.initiator_app.begin_round(
            bins, predicate_id=self._predicate_id
        )

    def query(self, members: Sequence[int]) -> BinObservation:
        """Execute one on-air bin query via the initiator mote.

        Raises:
            QueryDeadlineExceeded: If the session's deadline has passed.
        """
        if (
            self._deadline_us is not None
            and self._testbed.sim.now > self._deadline_us
        ):
            raise QueryDeadlineExceeded(
                f"session deadline {self._deadline_us:.0f}us passed "
                f"(now {self._testbed.sim.now:.0f}us)"
            )
        self._queries += 1
        return self._testbed.initiator_app.query_bin(
            list(members), predicate_id=self._predicate_id
        )


class Testbed:
    """The emulated testbed: channel, initiator, participants, controller.

    Args:
        config: Construction parameters.

    Example:
        >>> tb = Testbed(TestbedConfig(num_participants=12, seed=1))
        >>> tb.configure_positives([0, 3, 7])
        >>> from repro.core import TwoTBins
        >>> run = tb.run_threshold_query(TwoTBins(), threshold=2)
        >>> run.result.decision and run.truth
        True
    """

    # Not a pytest test class despite the name.
    __test__ = False

    def __init__(self, config: TestbedConfig) -> None:
        self._config = config
        self._rngs = RngRegistry(config.seed)
        self._sim = Simulator()
        self._tracer = Tracer(
            enabled=config.trace, clock=lambda: self._sim.now, name="testbed"
        )
        plan = config.fault_plan
        hack_miss = config.hack_miss
        if plan is not None:
            # Zero-cost when the plan holds no HACK bursts: the wrapper
            # returns `config.hack_miss` unchanged.
            hack_miss = plan.wrap_hack_miss(hack_miss, lambda: self._sim.now)
        self._channel = Channel(
            self._sim,
            self._rngs.stream("channel"),
            timing=config.timing,
            capture_model=config.capture_model,
            hack_miss=hack_miss,
            tracer=self._tracer,
        )

        n = config.num_participants
        init_radio = Cc2420Radio(
            self._sim, self._channel, address=n, tracer=self._tracer
        )
        self._initiator_app = InitiatorApp(
            self._sim,
            init_radio,
            primitive=config.primitive,
            tracer=self._tracer,
        )
        self._initiator = Mote(self._sim, init_radio, self._initiator_app)

        self._participants: List[Mote] = []
        self._apps: List[ParticipantApp] = []
        for i in range(n):
            radio = Cc2420Radio(
                self._sim, self._channel, address=i, tracer=self._tracer
            )
            # Thread the testbed's seeded registry into each participant
            # so packet-level runs replay from the single root seed.
            app = ParticipantApp(
                self._sim,
                radio,
                rng=self._rngs.stream(f"participant.{i}.backoff"),
            )
            self._participants.append(Mote(self._sim, radio, app))
            self._apps.append(app)
        self._positives_by_predicate: dict[int, frozenset[int]] = {}
        if plan is not None and plan.enabled:
            plan.arm_testbed(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def config(self) -> TestbedConfig:
        """The construction parameters."""
        return self._config

    @property
    def num_participants(self) -> int:
        """Participant mote count."""
        return self._config.num_participants

    @property
    def sim(self) -> Simulator:
        """The underlying simulator (for inspection)."""
        return self._sim

    @property
    def rngs(self) -> RngRegistry:
        """The testbed's named random-stream registry (root-seeded)."""
        return self._rngs

    @property
    def participants(self) -> tuple[Mote, ...]:
        """The participant motes, indexed by mote id."""
        return tuple(self._participants)

    @property
    def channel(self) -> Channel:
        """The shared medium (for ground-truth diagnostics)."""
        return self._channel

    @property
    def tracer(self) -> Tracer:
        """The structured tracer."""
        return self._tracer

    @property
    def initiator_app(self) -> InitiatorApp:
        """The initiator application."""
        return self._initiator_app

    @property
    def initiator_radio(self) -> Cc2420Radio:
        """The initiator mote's radio (energy ledger, diagnostics)."""
        return self._initiator.radio

    @property
    def positives(self) -> frozenset[int]:
        """Positive mote ids of the default predicate (0)."""
        return self._positives_by_predicate.get(0, frozenset())

    def positives_for(self, predicate_id: int) -> frozenset[int]:
        """Positive mote ids configured for one predicate."""
        return self._positives_by_predicate.get(predicate_id, frozenset())

    # ------------------------------------------------------------------
    # Serial-interface verbs (the laptop's role)
    # ------------------------------------------------------------------

    def configure_positives(
        self, positives: Iterable[int], *, predicate_id: int = 0
    ) -> None:
        """Configure which participants hold a predicate.

        Each predicate id holds an independent answer set, so several
        questions can be configured side by side (the classification
        use case of Sec II-C).

        Raises:
            ValueError: For ids outside ``0..N-1``.
        """
        pos = frozenset(int(p) for p in positives)
        bad = [p for p in pos if not 0 <= p < self.num_participants]
        if bad:
            raise ValueError(
                f"positive ids {sorted(bad)} outside [0, {self.num_participants})"
            )
        for app in self._apps:
            app.configure(False, predicate_id=predicate_id)
        for p in pos:
            self._apps[p].configure(True, predicate_id=predicate_id)
        self._positives_by_predicate[predicate_id] = pos

    def configure_one(
        self, mote_id: int, positive: bool, *, predicate_id: int = 0
    ) -> None:
        """Configure a single participant's predicate answer.

        Unlike :meth:`configure_positives` this does not reset the other
        participants -- it is the per-mote verb the serial control plane
        speaks.

        Raises:
            ValueError: For ids outside ``0..N-1``.
        """
        if not 0 <= mote_id < self.num_participants:
            raise ValueError(
                f"mote id {mote_id} outside [0, {self.num_participants})"
            )
        self._apps[mote_id].configure(positive, predicate_id=predicate_id)
        current = set(self._positives_by_predicate.get(predicate_id, frozenset()))
        if positive:
            current.add(mote_id)
        else:
            current.discard(mote_id)
        self._positives_by_predicate[predicate_id] = frozenset(current)

    def reboot_all(self) -> None:
        """Reboot every mote (between-runs hygiene, as in the paper)."""
        self._initiator.reboot()
        for mote in self._participants:
            mote.reboot()

    def query_adapter(
        self,
        *,
        predicate_id: int = 0,
        deadline_us: Optional[float] = None,
    ) -> TestbedQueryAdapter:
        """A fresh ``QueryModel`` adapter for one session."""
        return TestbedQueryAdapter(
            self, predicate_id=predicate_id, deadline_us=deadline_us
        )

    def run_csma_collection(
        self,
        threshold: int,
        *,
        quiet_us: float = 20_000.0,
        predicate_id: int = 0,
    ):
        """Run a packet-level CSMA feedback-collection session.

        The initiator broadcasts a poll and positive participants contend
        with real 802.15.4 CSMA/CA on the emulated radios (see
        :mod:`repro.mac.csma_packet`).  The collector claims the
        initiator radio's ``receive_callback``, so interleaving this with
        votecast sessions on the same testbed is not supported; use a
        fresh testbed per protocol.

        Args:
            threshold: Required distinct replies.
            quiet_us: No-new-reply timeout.
            predicate_id: Which configured predicate to poll.

        Returns:
            The :class:`repro.mac.csma_packet.CsmaCollectionOutcome`.
        """
        from repro.mac.csma_packet import CsmaCollector

        collector = CsmaCollector(
            self._sim,
            self._initiator.radio,
            quiet_us=quiet_us,
            tracer=self._tracer,
        )
        return collector.collect(threshold, predicate_id=predicate_id)

    def run_tdma_collection(
        self,
        threshold: int,
        *,
        schedule: Optional[Sequence[int]] = None,
        predicate_id: int = 0,
    ):
        """Run a packet-level sequential-ordering (TDMA) session.

        Args:
            threshold: The threshold ``t``.
            schedule: Reply-slot order (default: id order over all
                participants).
            predicate_id: Which configured predicate to poll.

        Returns:
            The :class:`repro.mac.tdma_packet.TdmaCollectionOutcome`
            (both verdicts certified).
        """
        from repro.mac.tdma_packet import TdmaCollector

        collector = TdmaCollector(
            self._sim, self._initiator.radio, tracer=self._tracer
        )
        order = (
            list(range(self.num_participants))
            if schedule is None
            else list(schedule)
        )
        return collector.collect(threshold, order, predicate_id=predicate_id)

    def run_threshold_query(
        self,
        algorithm: ThresholdAlgorithm,
        threshold: int,
        *,
        bin_rng: Optional[np.random.Generator] = None,
        predicate_id: int = 0,
        deadline_us: Optional[float] = None,
    ) -> TestbedRun:
        """Run one complete tcast session on the emulated testbed.

        Args:
            algorithm: Any tcast algorithm (it sees only the adapter).
            threshold: The threshold ``t``.
            bin_rng: Randomness for the algorithm's bin assignment;
                defaults to the testbed's ``"bins"`` stream.
            predicate_id: Which configured predicate to query.
            deadline_us: Optional absolute simulated-time deadline for
                the session (queries past it raise
                :class:`QueryDeadlineExceeded`).

        Returns:
            A :class:`TestbedRun` with the verdict and diagnostics.
        """
        rng = bin_rng if bin_rng is not None else self._rngs.stream("bins")
        adapter = self.query_adapter(
            predicate_id=predicate_id, deadline_us=deadline_us
        )
        start_us = self._sim.now
        misses_before = self._channel.hack_misses
        self._initiator.radio.energy.finalize(self._sim.now)
        energy_before = self._initiator.radio.energy.total_uj

        result = algorithm.decide(adapter, threshold, rng)

        self._initiator.radio.energy.finalize(self._sim.now)
        truth = len(self.positives_for(predicate_id)) >= threshold
        return TestbedRun(
            result=result,
            truth=truth,
            false_negative=(not result.decision) and truth,
            false_positive=result.decision and (not truth),
            elapsed_us=self._sim.now - start_us,
            hack_misses=self._channel.hack_misses - misses_before,
            initiator_energy_uj=self._initiator.radio.energy.total_uj
            - energy_before,
        )

    def run_reliable_query(
        self,
        algorithm: ThresholdAlgorithm,
        threshold: int,
        *,
        policy: Optional[RetryPolicy] = None,
        bin_rng: Optional[np.random.Generator] = None,
        predicate_id: int = 0,
        max_attempts: int = 3,
        attempt_timeout_us: Optional[float] = None,
        backoff_us: float = 20_000.0,
    ) -> TestbedRun:
        """Run a tcast session under the reliable control plane.

        Wraps ``algorithm`` in a
        :class:`~repro.core.reliable.ReliableThreshold` (silent verdicts
        re-confirmed per ``policy``) and guards each attempt with a
        bounded timeout: a wedged session -- the channel never clearing
        (:class:`~repro.primitives.common.ChannelWedged`, e.g. a stuck
        transmitter) or the per-attempt deadline passing
        (:class:`QueryDeadlineExceeded`) -- triggers the paper's
        between-runs hygiene, a full :meth:`reboot_all`, plus an
        exponential backoff in simulated time before the retry.

        Args:
            algorithm: The (unwrapped) tcast algorithm.
            threshold: The threshold ``t``.
            policy: Silence-confirmation retry policy (``None`` =
                :class:`~repro.core.reliable.NoRetry`).
            bin_rng: Bin-assignment randomness; defaults to the
                testbed's ``"bins"`` stream.
            predicate_id: Which configured predicate to query.
            max_attempts: Session attempts before giving up (``>= 1``).
            attempt_timeout_us: Per-attempt simulated-time budget
                (``None`` = unbounded; wedge detection then relies on
                ``ChannelWedged``).
            backoff_us: Base backoff; attempt ``i`` waits
                ``backoff_us * 2**i`` after a wedge.

        Returns:
            The successful attempt's :class:`TestbedRun`; its result's
            :class:`~repro.core.result.ReliabilityInfo` additionally
            counts the timeouts and reboots spent getting there.

        Raises:
            ValueError: If ``max_attempts < 1``.
            ChannelWedged: If the final attempt still cannot clear the
                medium.
            QueryDeadlineExceeded: If the final attempt still blows its
                deadline.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        reliable = ReliableThreshold(algorithm, policy)
        timeouts = 0
        reboots = 0
        for attempt in range(max_attempts):
            deadline = (
                self._sim.now + attempt_timeout_us
                if attempt_timeout_us is not None
                else None
            )
            try:
                run = self.run_threshold_query(
                    reliable,
                    threshold,
                    bin_rng=bin_rng,
                    predicate_id=predicate_id,
                    deadline_us=deadline,
                )
            except (ChannelWedged, QueryDeadlineExceeded) as wedge:
                if isinstance(wedge, QueryDeadlineExceeded):
                    timeouts += 1
                    _T_TIMEOUTS.inc()
                else:
                    _T_WEDGES.inc()
                if attempt + 1 >= max_attempts:
                    raise
                self.reboot_all()
                reboots += 1
                _T_REBOOTS.inc()
                self._sim.run(until=self._sim.now + backoff_us * 2**attempt)
                continue
            info = run.result.reliability
            assert info is not None  # ReliableThreshold always attaches it
            info = replace(info, timeouts=timeouts, reboots=reboots)
            return replace(run, result=replace(run.result, reliability=info))
        raise AssertionError("unreachable: loop returns or raises")
