"""Mote-level emulation of the paper's TelosB/TinyOS testbed.

* :mod:`repro.motes.mote` -- the generic mote: a radio plus an
  application, with reboot support.
* :mod:`repro.motes.participant` -- the participant application
  (configure / announce handling / vote transmission).
* :mod:`repro.motes.initiator` -- the initiator application driving
  backcast or pollcast bin queries.
* :mod:`repro.motes.testbed` -- the laptop-side controller: builds the
  network, configures motes over the (emulated) serial interface, runs
  tcast sessions, reboots between runs, and adapts the packet-level
  initiator to the abstract :class:`repro.group_testing.model.QueryModel`
  interface so the *same* algorithm code runs on both substrates.
"""

from repro.motes.initiator import InitiatorApp
from repro.motes.mote import Mote
from repro.motes.participant import ParticipantApp
from repro.motes.testbed import Testbed, TestbedConfig, TestbedQueryAdapter, TestbedRun

__all__ = [
    "InitiatorApp",
    "Mote",
    "ParticipantApp",
    "Testbed",
    "TestbedConfig",
    "TestbedQueryAdapter",
    "TestbedRun",
]
