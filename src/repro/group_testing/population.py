"""Hidden ground truth for a threshold-querying session.

A :class:`Population` is the set of participant nodes together with the
(hidden) subset of positives.  Query models consult it; algorithms must
not -- tests enforce that algorithms only see :class:`BinObservation`
values.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Population:
    """Participant nodes with a hidden positive subset.

    Node identifiers are integers ``0..size-1`` (matching mote ids in the
    packet-level substrate).

    Attributes:
        size: Total number of participant nodes (the paper's ``N``).
        positives: Frozen set of positive node ids.
    """

    size: int
    positives: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"population size must be >= 0, got {self.size}")
        if not isinstance(self.positives, frozenset):
            object.__setattr__(self, "positives", frozenset(self.positives))
        bad = [v for v in self.positives if not 0 <= v < self.size]
        if bad:
            raise ValueError(
                f"positive ids {sorted(bad)} outside [0, {self.size})"
            )

    @property
    def x(self) -> int:
        """Number of positive nodes (the paper's ``x``)."""
        return len(self.positives)

    @property
    def node_ids(self) -> range:
        """All participant node ids."""
        return range(self.size)

    def is_positive(self, node: int) -> bool:
        """Whether ``node`` holds the predicate."""
        return node in self.positives

    def count_positives(self, members: Iterable[int]) -> int:
        """Number of positive nodes among ``members``."""
        pos = self.positives
        return sum(1 for m in members if m in pos)

    @property
    def positive_mask(self) -> np.ndarray:
        """Read-only boolean mask over node ids (``mask[i]`` = positive).

        Computed lazily on first access and cached; the dataclass is
        frozen, so the mask can never go stale.
        """
        mask = self.__dict__.get("_positive_mask")
        if mask is None:
            mask = np.zeros(self.size, dtype=bool)
            if self.positives:
                mask[np.fromiter(self.positives, dtype=np.int64)] = True
            mask.setflags(write=False)
            object.__setattr__(self, "_positive_mask", mask)
        return mask

    def scan_bins(
        self,
        bins: Sequence[Sequence[int]],
        *,
        want_positives: bool = False,
    ) -> Tuple[np.ndarray, Optional[List[np.ndarray]]]:
        """Vectorized per-bin positive counts over a whole batch of bins.

        One numpy pass over the concatenated membership replaces the
        per-bin Python membership loops -- the hot path of every sweep
        trial (see :meth:`repro.group_testing.model._BaseModel.begin_round`).

        Args:
            bins: Ragged batch of member-id sequences (may include empty
                bins).
            want_positives: Also return, per bin, the positive member ids
                in membership order (needed by the 2+ capture draw).

        Returns:
            ``(counts, positives)`` where ``counts[i]`` is the positive
            count of ``bins[i]`` and ``positives`` is either ``None`` or a
            list of per-bin ``int64`` arrays.
        """
        n_bins = len(bins)
        if n_bins == 0:
            return np.zeros(0, dtype=np.int64), [] if want_positives else None
        lengths = np.fromiter(
            (len(b) for b in bins), dtype=np.int64, count=n_bins
        )
        total = int(lengths.sum())
        if total == 0:
            counts = np.zeros(n_bins, dtype=np.int64)
            pos: Optional[List[np.ndarray]] = None
            if want_positives:
                pos = [np.empty(0, dtype=np.int64) for _ in range(n_bins)]
            return counts, pos
        flat = np.fromiter(
            itertools.chain.from_iterable(bins), dtype=np.int64, count=total
        )
        hits = self.positive_mask[flat]
        ends = np.cumsum(lengths)
        hit_cum = np.concatenate(([0], np.cumsum(hits, dtype=np.int64)))
        counts = hit_cum[ends] - hit_cum[ends - lengths]
        if not want_positives:
            return counts, None
        positives = np.split(flat[hits], np.cumsum(counts)[:-1])
        return counts, positives

    def truth(self, threshold: int) -> bool:
        """Ground-truth answer to the threshold query ``x >= t``."""
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        return self.x >= threshold

    @classmethod
    def from_count(
        cls,
        size: int,
        x: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "Population":
        """Population with ``x`` uniformly random positive nodes.

        Args:
            size: Total number of nodes.
            x: Number of positives, ``0 <= x <= size``.
            rng: Source of randomness; when ``None``, positives are the
                first ``x`` ids (deterministic; fine for the abstract
                models, whose binning is itself random).
        """
        if not 0 <= x <= size:
            raise ValueError(f"x must be in [0, {size}], got {x}")
        if rng is None:
            chosen: Sequence[int] = range(x)
        else:
            chosen = rng.choice(size, size=x, replace=False) if x else []
        return cls(size=size, positives=frozenset(int(v) for v in chosen))

    @classmethod
    def from_probability(
        cls,
        size: int,
        prob: float,
        rng: np.random.Generator,
    ) -> "Population":
        """Population where each node is independently positive w.p. ``prob``."""
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0,1], got {prob}")
        draws = rng.random(size) < prob
        return cls(size=size, positives=frozenset(int(i) for i in np.flatnonzero(draws)))
