"""Hidden ground truth for a threshold-querying session.

A :class:`Population` is the set of participant nodes together with the
(hidden) subset of positives.  Query models consult it; algorithms must
not -- tests enforce that algorithms only see :class:`BinObservation`
values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Population:
    """Participant nodes with a hidden positive subset.

    Node identifiers are integers ``0..size-1`` (matching mote ids in the
    packet-level substrate).

    Attributes:
        size: Total number of participant nodes (the paper's ``N``).
        positives: Frozen set of positive node ids.
    """

    size: int
    positives: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"population size must be >= 0, got {self.size}")
        if not isinstance(self.positives, frozenset):
            object.__setattr__(self, "positives", frozenset(self.positives))
        bad = [v for v in self.positives if not 0 <= v < self.size]
        if bad:
            raise ValueError(
                f"positive ids {sorted(bad)} outside [0, {self.size})"
            )

    @property
    def x(self) -> int:
        """Number of positive nodes (the paper's ``x``)."""
        return len(self.positives)

    @property
    def node_ids(self) -> range:
        """All participant node ids."""
        return range(self.size)

    def is_positive(self, node: int) -> bool:
        """Whether ``node`` holds the predicate."""
        return node in self.positives

    def count_positives(self, members: Iterable[int]) -> int:
        """Number of positive nodes among ``members``."""
        pos = self.positives
        return sum(1 for m in members if m in pos)

    def truth(self, threshold: int) -> bool:
        """Ground-truth answer to the threshold query ``x >= t``."""
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        return self.x >= threshold

    @classmethod
    def from_count(
        cls,
        size: int,
        x: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "Population":
        """Population with ``x`` uniformly random positive nodes.

        Args:
            size: Total number of nodes.
            x: Number of positives, ``0 <= x <= size``.
            rng: Source of randomness; when ``None``, positives are the
                first ``x`` ids (deterministic; fine for the abstract
                models, whose binning is itself random).
        """
        if not 0 <= x <= size:
            raise ValueError(f"x must be in [0, {size}], got {x}")
        if rng is None:
            chosen: Sequence[int] = range(x)
        else:
            chosen = rng.choice(size, size=x, replace=False) if x else []
        return cls(size=size, positives=frozenset(int(v) for v in chosen))

    @classmethod
    def from_probability(
        cls,
        size: int,
        prob: float,
        rng: np.random.Generator,
    ) -> "Population":
        """Population where each node is independently positive w.p. ``prob``."""
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0,1], got {prob}")
        draws = rng.random(size) < prob
        return cls(size=size, positives=frozenset(int(i) for i in np.flatnonzero(draws)))
